"""Orion's back end: schedule + IR → a staged Terra function.

Paper §6.2: "The user calls orion.compile to compile the IR into a Terra
function.  We then use Terra's staging annotations to generate the code
for the inner loop."

Scheduling model (Halide-inspired, as in the paper):

* ``inline`` — the stage's expression is substituted into its consumers
  (recompute per use, zero storage);
* ``materialize`` — the stage gets a full buffer and its own scanline
  loop;
* ``linebuffer`` — the stage is fused into its consumers' loop and keeps
  only a rolling window of rows in a scratchpad.

All buffers share one padded-row layout: width ``W = P + N + P + V`` where
``P`` is the pipeline's maximum |dx| footprint and ``V`` the vector width;
the padding is kept zero, which implements the zero boundary condition
(paper: "use a zero boundary condition") with no bounds checks in the
inner loop.  Out-of-range *rows* read from a shared zero row, selected by
row-pointer computation outside the x loop.

Vectorization (``vectorize=4/8``) emits a vector main loop over Terra
vector types plus a scalar tail — the paper's "Orion can vectorize any
schedule using Terra's vector instructions".
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .. import includec, terra, trace
from ..core import types as T
from ..errors import TerraError
from . import lang

_std = includec("stdlib.h")
_str = includec("string.h")

_fn_counter = [0]


class _StageInfo:
    def __init__(self, stage: lang.Stage):
        self.stage = stage
        self.policy = lang.MATERIALIZE
        self.reads: list[tuple["_StageInfo", int, int]] = []  # after inlining
        self.consumers: list[_StageInfo] = []
        self.lead = 0
        self.rows = 0          # buffer height R
        self.ex = 0            # x extent: computed over [-ex, N+ex)
        self.ey = 0            # y extent: computed over [-ey, N+ey)
        self.pad_x = 0         # columns consumers read beyond the domain
        self.group = None      # _Group
        self.slot = None       # persistent buffer slot (None: input/output)
        self.buf = f"buf_{_sanitize(stage.name)}_{stage.id}"
        self.inlined_expr: Optional[lang.Expr] = None

    @property
    def name(self) -> str:
        return self.stage.name


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in name)


class _Group:
    def __init__(self):
        self.stages: list[_StageInfo] = []
        self.max_lead = 0

    def y_bounds(self, N: int) -> tuple[int, int]:
        ymin = min(-s.ey - s.lead for s in self.stages)
        ymax = max(N + s.ey - s.lead for s in self.stages)
        return ymin, ymax


def _collect_stages(outputs: Sequence[lang.Stage]) -> list[lang.Stage]:
    """All stages reachable from the outputs, topologically sorted
    (producers before consumers)."""
    order: list[lang.Stage] = []
    seen: set[int] = set()

    def visit_expr(e: lang.Expr):
        if isinstance(e, lang.Read):
            visit_stage(e.stage)
        elif isinstance(e, lang.BinOp):
            visit_expr(e.lhs)
            visit_expr(e.rhs)

    def visit_stage(s: lang.Stage):
        if s.id in seen:
            return
        seen.add(s.id)
        if s.expr is not None:
            visit_expr(s.expr)
        order.append(s)

    for out in outputs:
        visit_stage(out)
    return order


def _inline_expr(e: lang.Expr, dx: int, dy: int,
                 policies: dict[int, str]) -> lang.Expr:
    """Shift ``e`` by (dx,dy), substituting inline stages recursively."""
    if isinstance(e, (lang.Const, lang.Param)):
        return e
    if isinstance(e, lang.BinOp):
        return lang.BinOp(e.op, _inline_expr(e.lhs, dx, dy, policies),
                          _inline_expr(e.rhs, dx, dy, policies))
    assert isinstance(e, lang.Read)
    stage = e.stage
    ndx, ndy = e.dx + dx, e.dy + dy
    if not stage.is_input and policies.get(stage.id) == lang.INLINE:
        return _inline_expr(stage.expr, ndx, ndy, policies)
    return lang.Read(stage, ndx, ndy)


class CompiledStencil:
    """The result of :func:`compile_pipeline`: a Terra function plus the
    buffer geometry needed to call it from Python."""

    def __init__(self, fn, inputs: list[str], outputs: list[str],
                 N: int, P: int, W: int, source: str,
                 params: list[str] | None = None,
                 parallel_plan: dict | None = None):
        self.fn = fn
        self.input_names = inputs
        self.output_names = outputs
        self.param_names = list(params or [])
        self.N = N
        self.P = P
        self.W = W
        self.source = source
        #: set for parallel schedules: {"nthreads": NT, "groups":
        #: [(index, ymin, ymax, warmup_rows), ...]} — the per-group strip
        #: dispatch executed by __call__
        self.parallel_plan = parallel_plan

    # -- padded-buffer helpers ------------------------------------------------
    def pad(self, array: np.ndarray) -> np.ndarray:
        N, P, W = self.N, self.P, self.W
        if array.shape != (N, N):
            raise TerraError(f"expected a {N}x{N} image, got {array.shape}")
        buf = np.zeros((N, W), dtype=np.float32)
        buf[:, P:P + N] = array
        return buf

    def unpad(self, buf: np.ndarray) -> np.ndarray:
        return buf[:, self.P:self.P + self.N].copy()

    def alloc_out(self) -> np.ndarray:
        return np.zeros((self.N, self.W), dtype=np.float32)

    def run(self, *inputs: np.ndarray, **params: float) -> np.ndarray:
        """Convenience: pad inputs, run, return the unpadded output.
        Runtime scalar parameters are keyword arguments."""
        if len(inputs) != len(self.input_names):
            raise TerraError(
                f"pipeline takes {len(self.input_names)} inputs "
                f"({self.input_names}), got {len(inputs)}")
        missing = [p for p in self.param_names if p not in params]
        if missing:
            raise TerraError(f"missing parameter values: {missing}")
        unknown = [p for p in params if p not in self.param_names]
        if unknown:
            raise TerraError(f"unknown parameters: {unknown}")
        padded = [self.pad(np.asarray(a, dtype=np.float32)) for a in inputs]
        outs = [self.alloc_out() for _ in self.output_names]
        self(*outs, *padded, *[params[p] for p in self.param_names])
        if len(outs) == 1:
            return self.unpad(outs[0])
        return tuple(self.unpad(o) for o in outs)

    def __call__(self, *padded_buffers):
        """Raw call with pre-padded buffers, outputs first (for
        benchmarking loops).  Parallel schedules dispatch per-worker
        strips here; serial schedules call the Terra function directly."""
        if self.parallel_plan is None:
            return self.fn(*padded_buffers)
        return self._run_parallel(padded_buffers)

    _BIG = 1 << 30

    def _run_parallel(self, buffers) -> None:
        from ..parallel import in_worker, raise_aggregated, run_tasks, \
            split_range
        from ..trace.metrics import registry
        plan = self.parallel_plan
        nt = plan["nthreads"]
        BIG = self._BIG
        # bind the buffers once: every strip call is then one plain
        # ctypes foreign call with four fresh scalars
        run = self.fn.compile("c").tail_caller(4, *buffers)
        if in_worker():
            # nested dispatch: run the whole pipeline serially inline
            run(-1, 0, -BIG, BIG)
            return
        # alloc warm-up: every group's range clamps empty, so only the
        # lazy buffer mallocs run — single-threaded, hence race-free
        run(-1, 0, BIG, -BIG)
        groups = plan["groups"]
        per_group = [split_range(ymin, ymax, nt)
                     for _k, ymin, ymax, _w in groups]
        nworkers = max((len(s) for s in per_group), default=0)
        if nworkers <= 1:
            run(-1, 0, -BIG, BIG)  # degenerate ranges: stay serial
            return
        # SPMD shape: ONE pool dispatch per pipeline call; worker ``wid``
        # walks the groups computing its own strip of each, with a
        # barrier between groups (consumers of a group's materialized
        # rows only start once every strip has written them).  A worker
        # that traps keeps hitting the barriers — its siblings must
        # never block on a missing participant — and re-raises at the
        # end, so every non-trapping strip completes (the same partial-
        # writes-visible shape as a serial trap mid-loop).
        import threading
        barrier = threading.Barrier(nworkers)
        tracing = trace._runtime_active

        def worker(wid):
            def task():
                err = None
                for (k, _ymin, _ymax, _w), strips in zip(groups, per_group):
                    try:
                        if wid < len(strips):
                            s0, s1 = strips[wid]
                            if tracing:
                                with trace.span("parallel.chunk:orion",
                                                cat="exec", group=k,
                                                lo=s0, hi=s1):
                                    run(k, wid, s0, s1)
                            else:
                                run(k, wid, s0, s1)
                    except BaseException as exc:
                        err = err or exc
                    finally:
                        barrier.wait()
                if err is not None:
                    raise err
            return task

        with trace.span("orion.parallel", cat="orion", nthreads=nt,
                        groups=len(groups)):
            reg = registry()
            reg.add("parallel.dispatches")
            reg.add("parallel.chunks", sum(len(s) for s in per_group))
            errors = run_tasks([worker(w) for w in range(nworkers)],
                               nthreads=nworkers)
            raise_aggregated("orion", errors, reg)


def _resolve_parallel(parallel) -> int:
    """The effective worker count a ``parallel=`` argument asks for.

    Accepts a :class:`~repro.orion.lang.Parallel` directive, a bare int
    (worker count, 0 = auto), or True (auto).  ``REPRO_TERRA_THREADS``
    overrides whatever was asked (see
    :func:`repro.parallel.default_nthreads`); a result <= 1 selects the
    exact serial code path — byte-identical generated C."""
    if parallel is None or parallel is False:
        return 0
    from ..parallel import default_nthreads
    if isinstance(parallel, lang.Parallel):
        return default_nthreads(parallel.nthreads)
    if parallel is True:
        return default_nthreads(0)
    return default_nthreads(int(parallel))


def _merge_tile_schedule(tile_schedule, vectorize, parallel):
    """Normalize loop-level directives onto one vocabulary.

    Orion's loop directives are sugar for :mod:`repro.schedule` objects:
    ``Vectorize("x", V)`` is the scanline vector width (``vectorize=V``)
    and ``Parallel("y", NT)`` the worker-strip split (``parallel=NT``).
    Returns ``(vectorize, parallel, tile_schedule)`` with the schedule
    synthesized from legacy arguments when none was passed — so every
    compile records its loop directives as one inspectable Schedule
    (``CompiledStencil.tile_schedule``)."""
    from ..schedule import Parallel, Schedule, ScheduleError, Vectorize
    if tile_schedule is None:
        directives = []
        if vectorize:
            directives.append(Vectorize("x", int(vectorize)))
        nt = _resolve_parallel(parallel)
        if nt > 1:
            directives.append(Parallel("y", nt))
        return vectorize, parallel, Schedule(directives)
    if not isinstance(tile_schedule, Schedule):
        raise ScheduleError(
            f"tile_schedule must be a repro.schedule.Schedule, "
            f"got {tile_schedule!r}")
    if vectorize or parallel is not None:
        raise ScheduleError(
            f"{tile_schedule.key()}: pass loop directives either as "
            f"tile_schedule or as legacy vectorize=/parallel= — not both")
    for d in tile_schedule:
        if isinstance(d, Vectorize):
            if d.axis != "x":
                raise ScheduleError(
                    f"{d}: Orion vectorizes the scanline axis 'x'")
            vectorize = d.width
        elif isinstance(d, Parallel):
            if d.axis != "y":
                raise ScheduleError(
                    f"{d}: Orion parallelizes the row axis 'y'")
            parallel = d.nthreads or True
        else:
            raise ScheduleError(
                f"{d}: Orion loop schedules support Vectorize('x', V) "
                f"and Parallel('y', NT); stage storage policies go in "
                f"the policy schedule= dict")
    return vectorize, parallel, tile_schedule


def compile_pipeline(output, N: int, vectorize: int | bool = False,
                     schedule: Optional[dict] = None,
                     default_policy: str = lang.MATERIALIZE,
                     parallel=None,
                     tile_schedule=None,
                     ) -> CompiledStencil:
    """Compile an Orion pipeline to a Terra function for N×N images.

    ``output`` may be a single expression/stage or a list of them (a
    multi-output pipeline: one fused function filling several buffers).
    ``schedule`` maps stages (or stage names) to *storage* policies;
    unlisted stages use their declared ``policy=`` or ``default_policy``.
    ``parallel`` (a :func:`repro.orion.lang.parallel` directive, an int
    worker count, or True) splits the scanline loop into per-worker
    strips dispatched through :mod:`repro.parallel`.

    ``tile_schedule`` is the first-class spelling of the *loop*
    directives: a :class:`repro.schedule.Schedule` of
    ``Vectorize("x", V)`` / ``Parallel("y", NT)``, equivalent to (and
    mutually exclusive with) the legacy ``vectorize=`` / ``parallel=``
    arguments and producing byte-identical C.  The normalized schedule
    is recorded on the result as ``stencil.tile_schedule``.
    """
    vectorize, parallel, tile_schedule = _merge_tile_schedule(
        tile_schedule, vectorize, parallel)
    nt = _resolve_parallel(parallel)
    with trace.span("orion.compile", cat="orion", N=N,
                    vectorize=int(vectorize) if vectorize else 0,
                    nthreads=nt) as sp:
        stencil = _compile_pipeline(output, N, vectorize, schedule,
                                    default_policy, nt)
        stencil.tile_schedule = tile_schedule
        sp.set(stages=len(stencil.input_names) + len(stencil.output_names))
        return stencil


def _compile_pipeline(output, N, vectorize, schedule, default_policy,
                      NT=0):
    outputs = output if isinstance(output, (list, tuple)) else [output]
    out_stages = [lang.as_stage(o, f"out{i}" if len(outputs) > 1 else "out")
                  for i, o in enumerate(outputs)]
    out_ids = {s.id for s in out_stages}
    stages = _collect_stages(out_stages)
    V = int(vectorize) if vectorize else 0
    if V and V not in (2, 4, 8, 16):
        raise TerraError(f"vector width must be 2/4/8/16, got {V}")

    # -- resolve policies -------------------------------------------------------
    schedule = dict(schedule or {})
    by_name = {s.name: s for s in stages}
    policies: dict[int, str] = {}
    for key, policy in schedule.items():
        st = by_name.get(key) if isinstance(key, str) else key
        if st is None or st.id not in {s.id for s in stages}:
            raise TerraError(f"schedule entry {key!r} is not in the pipeline")
        if policy not in lang.POLICIES:
            raise TerraError(f"unknown policy {policy!r}")
        policies[st.id] = policy
    for s in stages:
        if s.id not in policies:
            policies[s.id] = s.default_policy or default_policy
        if s.is_input:
            policies[s.id] = lang.MATERIALIZE
        elif s.bounded and policies[s.id] == lang.INLINE:
            # a boundary condition cannot be recomputed inline; the
            # closest storage-free schedule is line buffering, but to keep
            # 'inline everything' schedules valid we fall back to storage
            policies[s.id] = lang.MATERIALIZE
    for s in out_stages:
        policies[s.id] = lang.MATERIALIZE  # outputs are materialized

    # -- build stage infos with inlined expressions ------------------------------
    infos: dict[int, _StageInfo] = {}
    compute_order: list[_StageInfo] = []
    for s in stages:
        if not s.is_input and policies[s.id] == lang.INLINE:
            continue
        info = _StageInfo(s)
        info.policy = policies[s.id]
        infos[s.id] = info
        if not s.is_input:
            info.inlined_expr = _inline_expr(s.expr, 0, 0, policies)
            compute_order.append(info)

    def expr_reads(e: lang.Expr, acc: list):
        if isinstance(e, lang.Read):
            acc.append(e)
        elif isinstance(e, lang.BinOp):
            expr_reads(e.lhs, acc)
            expr_reads(e.rhs, acc)

    for info in compute_order:
        reads: list[lang.Read] = []
        expr_reads(info.inlined_expr, reads)
        for r in reads:
            producer = infos[r.stage.id]
            info.reads.append((producer, r.dx, r.dy))
            if info not in producer.consumers:
                producer.consumers.append(info)

    # -- region expansion (Halide semantics): every stage is computed over
    # the region its consumers read, so the schedule cannot change results
    # at the boundary.  The zero boundary condition applies to *inputs*.
    for info in reversed(compute_order):
        for producer, dx, dy in info.reads:
            # every producer must have zero-padded columns wide enough for
            # its consumers' reads...
            producer.pad_x = max(producer.pad_x, info.ex + abs(dx))
            if producer.stage.is_input or producer.stage.bounded \
                    or producer.stage.id in out_ids:
                continue  # ...but a zero boundary never expands the domain
            producer.ex = max(producer.ex, info.ex + abs(dx))
            producer.ey = max(producer.ey, info.ey + abs(dy))
    P = 1  # minimum padding so vector tails stay in bounds
    for info in infos.values():
        P = max(P, info.ex, info.pad_x)

    # -- grouping: linebuffered stages fuse into their consumers -----------------
    parent: dict[int, int] = {id(i): id(i) for i in infos.values()}
    by_pid = {id(i): i for i in infos.values()}

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a, b):
        parent[find(a)] = find(b)

    for info in compute_order:
        if info.policy == lang.LINEBUFFER:
            for consumer in info.consumers:
                union(id(info), id(consumer))
            if not info.consumers:
                raise TerraError(
                    f"cannot linebuffer {info.name}: it has no consumers")

    groups: dict[int, _Group] = {}
    group_order: list[_Group] = []
    for info in compute_order:
        root = find(id(info))
        group = groups.get(root)
        if group is None:
            group = _Group()
            groups[root] = group
            group_order.append(group)
        group.stages.append(info)
        info.group = group

    # -- leads and buffer heights ---------------------------------------------
    for group in group_order:
        for info in reversed(group.stages):  # consumers first
            lead = 0
            for consumer in info.consumers:
                if consumer.group is group:
                    maxdy = max((dy for p, dx, dy in consumer.reads
                                 if p is info), default=0)
                    lead = max(lead, consumer.lead + max(0, maxdy))
            info.lead = lead
            group.max_lead = max(group.max_lead, lead)
    for info in list(infos.values()):
        if info.policy == lang.LINEBUFFER:
            height = 1
            for consumer in info.consumers:
                for p, dx, dy in consumer.reads:
                    if p is info:
                        height = max(height, info.lead - consumer.lead - dy + 1)
            info.rows = height
        elif info.stage.is_input or info.stage.id in out_ids:
            info.rows = N
        else:
            info.rows = N + 2 * info.ey  # the expanded computed region

    W = P + N + P + max(V, 1)

    # -- buffer slot assignment (liveness-based reuse) ---------------------------
    # Intermediate stage buffers persist across calls (lazily allocated
    # globals) and are shared between stages whose lifetimes do not
    # overlap — a Jacobi chain of any length needs only two buffers, just
    # like a hand-written solver.
    _assign_slots(infos, group_order, out_ids, W, NT)

    if NT > 1:
        _check_parallelizable(group_order)

    # -- code generation ----------------------------------------------------------
    src, env, input_names, params = _generate(
        infos, compute_order, group_order, out_stages, stages, N, P, W, V,
        NT)
    fn = terra(src, env=env, filename=f"<orion:{out_stages[0].name}>")
    # submit the native build to the buildd pool now (capturing any active
    # extra_cflags), so compilation overlaps the caller's setup work; the
    # first call of the stencil joins the pending build.
    fn.compile_async()
    plan = None
    if NT > 1:
        plan = {"nthreads": NT,
                "groups": [(k, *group.y_bounds(N), _warmup_rows(group))
                           for k, group in enumerate(group_order)]}
    return CompiledStencil(fn, input_names,
                           [s.name for s in out_stages], N, P, W, src,
                           params, parallel_plan=plan)


def _warmup_rows(group: _Group) -> int:
    """Rows a worker strip re-runs before its own region so every
    intra-group line buffer is warm when the strip proper starts.

    A consumed linebuffered row depends on producer rows at most
    ``rows - 1`` loop indices back (that is how the window height is
    computed), so chains through the group's line buffers span at most
    the sum of their heights — re-running that many indices, computing
    *only* linebuffered stages (worker-private windows), rebuilds the
    exact state the serial loop would have at the strip boundary."""
    return sum(s.rows for s in group.stages if s.policy == lang.LINEBUFFER)


def _check_parallelizable(group_order) -> None:
    """Strip dispatch recomputes only linebuffered stages during warm-up
    (shared materialized rows must have exactly one writer — the strip
    that owns them).  That is sound whenever every intra-group read of a
    linebuffered stage comes *from* linebuffered producers, inputs, or
    prior groups — true of every schedule the repo stages.  Reject the
    remaining shape instead of computing garbage."""
    for group in group_order:
        in_group = {id(s) for s in group.stages}
        for info in group.stages:
            if info.policy != lang.LINEBUFFER:
                continue
            for producer, dx, dy in info.reads:
                if id(producer) in in_group \
                        and producer.policy != lang.LINEBUFFER \
                        and not producer.stage.is_input:
                    raise TerraError(
                        f"parallel: linebuffered stage {info.name!r} reads "
                        f"materialized stage {producer.name!r} fused into "
                        f"the same group; this shape cannot be strip-"
                        f"parallelized — materialize {info.name!r} or drop "
                        f"the parallel directive")


def _assign_slots(infos, group_order, out_ids, W: int, NT: int = 0) -> None:
    group_index = {id(g): i for i, g in enumerate(group_order)}
    # birth = own group index; death = last consumer's group index
    events: list[tuple[int, int, _StageInfo]] = []
    for info in infos.values():
        if info.stage.is_input or info.stage.id in out_ids:
            info.slot = None
            continue
        birth = group_index[id(info.group)]
        death = birth
        for consumer in info.consumers:
            death = max(death, group_index[id(consumer.group)])
        events.append((birth, death, info))
    slots: list[dict] = []  # {"size": bytes, "free_at": group index}
    for birth, death, info in sorted(events, key=lambda e: (e[0], e[1])):
        if NT > 1 and info.policy == lang.LINEBUFFER:
            # under strip parallelism each worker rolls its own window:
            # the slot holds NT windows side by side (base + wid*stride)
            # and is never shared with other stages
            stride = info.rows * W
            chosen = {"size": NT * stride * 4, "free_at": len(group_order),
                      "name": f"slot{len(slots)}", "stride": stride}
            slots.append(chosen)
            info.slot = chosen
            continue
        size = info.rows * W * 4
        chosen = None
        for slot in slots:
            if "stride" in slot:
                continue  # private per-worker line buffer, not shareable
            if slot["free_at"] <= birth and slot["size"] >= size:
                chosen = slot
                break
        if chosen is None:
            chosen = {"size": size, "free_at": -1,
                      "name": f"slot{len(slots)}"}
            slots.append(chosen)
        chosen["free_at"] = death + 1
        chosen["size"] = max(chosen["size"], size)
        info.slot = chosen


def _generate(infos, compute_order, group_order, out_stages, stages,
              N, P, W, V, NT=0):
    from .. import fmax, fmin
    float4 = T.vector(T.float32, V) if V else None
    env = {"std": _std, "cstr": _str, "fmin": fmin, "fmax": fmax}
    if float4 is not None:
        env["vecT"] = float4

    inputs = [s for s in stages if s.is_input]
    input_names = [s.name for s in inputs]
    param_names: list[str] = []

    def find_params(e):
        if isinstance(e, lang.Param):
            if e.name not in param_names:
                param_names.append(e.name)
        elif isinstance(e, lang.BinOp):
            find_params(e.lhs)
            find_params(e.rhs)

    for info in compute_order:
        find_params(info.inlined_expr)
    out_ids = {s.id for s in out_stages}
    # strip-dispatch control params (parallel schedules only): gsel
    # selects one group (-1 = all), [ylo, yhi) is this worker's strip of
    # loop indices, wid picks its private line-buffer windows
    par_params = [] if NT <= 1 else [
        "gsel : int32", "wid : int32", "ylo : int64", "yhi : int64"]
    params = ", ".join(
        par_params
        + [f"out_{_sanitize(s.name)} : &float" for s in out_stages]
        + [f"in_{_sanitize(s.name)} : &float" for s in inputs]
        + [f"prm_{_sanitize(p)} : float" for p in param_names])

    lines: list[str] = [f"terra orionfn{_next_id()}({params}) : {{}}"]
    w = lines.append

    # buffer setup: persistent slots, lazily allocated once ------------------
    from ..core.function import GlobalVar
    from ..core.types import float32, pointer as _ptr
    slots: dict[str, dict] = {}
    for info in infos.values():
        if info.slot is not None:
            slots[info.slot["name"]] = info.slot
    zrow_g = GlobalVar(_ptr(float32), None, "orion_zrow")
    env["zrow_g"] = zrow_g
    w("  if zrow_g == nil then")
    w(f"    zrow_g = [&float](std.malloc({W} * 4))")
    w(f"    cstr.memset(zrow_g, 0, {W} * 4)")
    w("  end")
    # the zero row is indexed like data rows (columns may be negative
    # within the padded extent), so it gets the same +P column offset
    w(f"  var zrow = zrow_g + {P}")
    for name, slot in slots.items():
        g = GlobalVar(_ptr(float32), None, f"orion_{name}")
        env[f"{name}_g"] = g
        slot["global"] = g
        w(f"  if {name}_g == nil then")
        w(f"    {name}_g = [&float](std.malloc({slot['size']}))")
        w(f"    cstr.memset({name}_g, 0, {slot['size']})")
        w("  end")
    for info in infos.values():
        if info.stage.is_input:
            w(f"  var {info.buf} = in_{_sanitize(info.name)}")
        elif info.stage.id in out_ids:
            w(f"  var {info.buf} = out_{_sanitize(info.name)}")
        elif "stride" in info.slot:
            # per-worker private line-buffer window
            w(f"  var {info.buf} = {info.slot['name']}_g"
              f" + wid * {info.slot['stride']}")
        else:
            w(f"  var {info.buf} = {info.slot['name']}_g")

    # group loops ------------------------------------------------------------------
    for k, group in enumerate(group_order):
        ymin, ymax = group.y_bounds(N)
        if NT > 1:
            # one strip of this group: loop indices [ylo, yhi) clamped to
            # the group's own range, plus a warm-up region of D indices
            # before ylo that recomputes only linebuffered stages (into
            # this worker's private windows) so the buffers hold exactly
            # the serial loop's state when the strip proper begins
            D = _warmup_rows(group)
            w(f"  if gsel < 0 or gsel == {k} then")
            w(f"    var y0 : int64 = {ymin}")
            w(f"    var y1 : int64 = {ymax}")
            w("    if yhi < y1 then y1 = yhi end")
            w(f"    var yw : int64 = ylo - {D}")
            w("    if yw > y0 then y0 = yw end")
            w("    for y = y0, y1 do")
            for info in group.stages:
                _emit_stage(w, info, N, P, W, V,
                            guard_warmup=(D > 0 and
                                          info.policy != lang.LINEBUFFER))
            w("    end")
            w("  end")
        else:
            w(f"  for y = {ymin}, {ymax} do")
            for info in group.stages:
                _emit_stage(w, info, N, P, W, V)
            w("  end")
    w("end")
    return "\n".join(lines), env, input_names, param_names


_ids = [0]


def _next_id() -> int:
    _ids[0] += 1
    return _ids[0]


def _row_index(info: _StageInfo, row_var: str, N: int) -> str:
    """The physical row index for logical row ``row_var`` of a stage."""
    if info.stage.is_input or info.stage is None:
        return row_var
    if info.policy == lang.LINEBUFFER:
        return f"(({row_var} + {info.ey}) % {info.rows})"
    if info.ey:
        return f"({row_var} + {info.ey})"
    return row_var


def _valid_rows(info: _StageInfo, N: int) -> tuple[int, int]:
    """The logical rows a producer actually holds: inputs and bounded
    stages exist on [0,N) (zero-extended outside), unbounded computed
    stages on their expanded region."""
    if info.stage.is_input or info.stage.bounded:
        return 0, N
    return -info.ey, N + info.ey


def _emit_stage(w, info: _StageInfo, N: int, P: int, W: int, V: int,
                guard_warmup: bool = False) -> None:
    lead = info.lead
    lo, hi = -info.ey, N + info.ey
    xlo, xhi = -info.ex, N + info.ex
    w("    do")
    w(f"      var r = y + {lead}")
    cond = f"r >= {lo} and r < {hi}"
    if guard_warmup:
        # warm-up indices (y < ylo) belong to the neighbouring strip:
        # shared rows must keep exactly one writer
        cond += " and y >= ylo"
    w(f"      if {cond} then")
    # row pointers for every (producer, dy) this stage reads
    rowptrs: dict[tuple[int, int], str] = {}
    for producer, dx, dy in info.reads:
        key = (producer.stage.id, dy)
        if key in rowptrs:
            continue
        rp = f"rp_{producer.buf}_{'m' if dy < 0 else ''}{abs(dy)}"
        rowptrs[key] = rp
        plo, phi = _valid_rows(producer, N)
        w(f"        var {rp} : &float = zrow")
        w(f"        var rr_{rp} = r + {dy}")
        w(f"        if rr_{rp} >= {plo} and rr_{rp} < {phi} then")
        w(f"          {rp} = {producer.buf} + "
          f"{_row_index(producer, f'rr_{rp}', N)} * {W} + {P}")
        w("        end")
    w(f"        var wrow = {info.buf} + {_row_index(info, 'r', N)} "
      f"* {W} + {P}")
    scalar = _expr_code(info.inlined_expr, rowptrs, vector=False)
    if V:
        vec = _expr_code(info.inlined_expr, rowptrs, vector=True)
        w(f"        var x = {xlo}")
        w(f"        while x + {V} <= {xhi} do")
        w(f"          @[&vecT](&wrow[x]) = {vec}")
        w(f"          x = x + {V}")
        w("        end")
        w(f"        while x < {xhi} do")
        w(f"          wrow[x] = {scalar}")
        w("          x = x + 1")
        w("        end")
    else:
        w(f"        for x = {xlo}, {xhi} do")
        w(f"          wrow[x] = {scalar}")
        w("        end")
    # a bounded stage's buffer slot may hold another stage's expanded
    # columns; its consumers expect zeros beyond the domain, so re-zero
    # the pad columns they read
    if info.stage.bounded and info.pad_x:
        w(f"        for x = {-info.pad_x}, 0 do wrow[x] = 0.0f end")
        w(f"        for x = {N}, {N + info.pad_x} do wrow[x] = 0.0f end")
    w("      end")
    w("    end")


def _expr_code(e: lang.Expr, rowptrs: dict, vector: bool) -> str:
    if isinstance(e, lang.Param):
        name = f"prm_{_sanitize(e.name)}"
        return f"[vecT]({name})" if vector else name
    if isinstance(e, lang.Const):
        text = repr(e.value)
        lit = f"{text}f" if ("e" in text or "." in text) else f"{text}.0f"
        if vector:
            return f"[vecT]({lit})"
        return lit
    if isinstance(e, lang.Read):
        rp = rowptrs[(e.stage.id, e.dy)]
        if vector:
            return f"(@[&vecT](&{rp}[x + {e.dx}]))"
        return f"{rp}[x + {e.dx}]"
    assert isinstance(e, lang.BinOp)
    lhs = _expr_code(e.lhs, rowptrs, vector)
    rhs = _expr_code(e.rhs, rowptrs, vector)
    if e.op == "min":
        return f"[fmin]({lhs}, {rhs})"
    if e.op == "max":
        return f"[fmax]({lhs}, {rhs})"
    return f"({lhs} {e.op} {rhs})"


