"""Orion's front end — image-wide operators via operator overloading.

Paper §6.2: "Rather than specify loop nests directly, Orion programs are
written using image-wide operators.  For instance, f(-1,0) + f(0,1) adds
the image f translated by -1 in x to f translated by 1 in y.  The offsets
must be constants, which guarantees the function is a stencil."

and §6.2 (implementation): "we use operator overloading on Lua tables to
build Orion expressions.  These operators build an intermediate
representation (IR) suitable for optimization."

The IR is a DAG of :class:`Expr` nodes.  *Stages* (inputs and expressions
the user names or shifts) are the schedulable units: each can be
``materialize``d, ``inline``d, or ``linebuffer``ed (see
:mod:`repro.orion.schedule`).
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..errors import TerraError

_ids = itertools.count(1)

MATERIALIZE = "materialize"
INLINE = "inline"
LINEBUFFER = "linebuffer"
POLICIES = (MATERIALIZE, INLINE, LINEBUFFER)


class Expr:
    """An image-valued expression over a common grid."""

    def __call__(self, dx: int, dy: int) -> "Expr":
        """Translate: ``f(-1, 0)`` reads f shifted by (-1, 0).

        Offsets must be Python integer constants — this is what makes
        every Orion program a stencil (paper §6.2)."""
        if not (isinstance(dx, int) and isinstance(dy, int)):
            raise TerraError("stencil offsets must be integer constants")
        return Read(as_stage(self), dx, dy)

    # -- arithmetic ----------------------------------------------------------
    def _bin(self, op, other, reflected=False):
        other = wrap(other)
        lhs, rhs = (other, self) if reflected else (self, other)
        return BinOp(op, lhs, rhs)

    def __add__(self, o):
        return self._bin("+", o)

    def __radd__(self, o):
        return self._bin("+", o, True)

    def __sub__(self, o):
        return self._bin("-", o)

    def __rsub__(self, o):
        return self._bin("-", o, True)

    def __mul__(self, o):
        return self._bin("*", o)

    def __rmul__(self, o):
        return self._bin("*", o, True)

    def __truediv__(self, o):
        return self._bin("/", o)

    def __rtruediv__(self, o):
        return self._bin("/", o, True)

    def __neg__(self):
        return BinOp("-", Const(0.0), self)


class Const(Expr):
    def __init__(self, value: float):
        self.value = float(value)

    def __repr__(self):
        return f"Const({self.value})"


class Param(Expr):
    """A runtime scalar parameter: supplied when the compiled pipeline is
    called, rather than baked in at staging time.  (Baking constants is
    the auto-tuner default; params support problem-specific values without
    recompiling.)"""

    def __init__(self, name: str):
        self.name = name

    def __call__(self, dx: int, dy: int) -> "Expr":
        raise TerraError("parameters are scalars; they cannot be shifted")

    def __repr__(self):
        return f"Param({self.name})"


class Read(Expr):
    """A shifted read of a stage."""

    def __init__(self, stage: "Stage", dx: int, dy: int):
        self.stage = stage
        self.dx = dx
        self.dy = dy

    def __call__(self, dx: int, dy: int) -> "Expr":
        # shifting a shifted read composes offsets without a new stage
        return Read(self.stage, self.dx + dx, self.dy + dy)

    def __repr__(self):
        return f"{self.stage.name}({self.dx},{self.dy})"


class BinOp(Expr):
    def __init__(self, op: str, lhs: Expr, rhs: Expr):
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def __repr__(self):
        return f"({self.lhs} {self.op} {self.rhs})"


class Stage:
    """A schedulable point in the pipeline: an input image or a named
    expression.  ``policy`` is assigned by the schedule at compile time.

    ``bounded`` stages carry a zero boundary condition: they are defined
    exactly on the N×N domain and read as zero outside it (like the
    paper's fluid solver iterates).  Unbounded stages (the default) follow
    Halide semantics — computed wherever consumers need values, so the
    schedule can never change results."""

    def __init__(self, expr: Optional[Expr], name: Optional[str] = None,
                 bounded: bool = False):
        self.id = next(_ids)
        self.expr = expr          # None for inputs
        self.name = name or f"stage{self.id}"
        self.default_policy: Optional[str] = None
        self.bounded = bounded

    @property
    def is_input(self) -> bool:
        return self.expr is None

    def __call__(self, dx: int, dy: int) -> Expr:
        if not (isinstance(dx, int) and isinstance(dy, int)):
            raise TerraError("stencil offsets must be integer constants")
        return Read(self, dx, dy)

    # a bare stage used in arithmetic reads at offset (0,0)
    def _as_read(self) -> Expr:
        return Read(self, 0, 0)

    def __add__(self, o):
        return self._as_read() + o

    def __radd__(self, o):
        return o + self._as_read() if isinstance(o, Expr) else \
            wrap(o) + self._as_read()

    def __sub__(self, o):
        return self._as_read() - o

    def __rsub__(self, o):
        return wrap(o) - self._as_read()

    def __mul__(self, o):
        return self._as_read() * o

    def __rmul__(self, o):
        return wrap(o) * self._as_read()

    def __truediv__(self, o):
        return self._as_read() / o

    def __rtruediv__(self, o):
        return wrap(o) / self._as_read()

    def __neg__(self):
        return -self._as_read()

    def __repr__(self):
        kind = "input" if self.is_input else "stage"
        return f"<{kind} {self.name}>"


def wrap(value) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, Stage):
        return Read(value, 0, 0)
    if isinstance(value, (int, float)):
        return Const(float(value))
    raise TerraError(f"cannot use {value!r} in an Orion expression")


def as_stage(expr, name: Optional[str] = None) -> Stage:
    """Make an expression schedulable (idempotent for stages/pure reads)."""
    if isinstance(expr, Stage):
        return expr
    if isinstance(expr, Read) and expr.dx == 0 and expr.dy == 0 and \
            name is None:
        return expr.stage
    return Stage(wrap(expr), name)


def image(name: str) -> Stage:
    """Declare a symbolic input image (float32, NxN at compile time)."""
    return Stage(None, name)


def param(name: str) -> Param:
    """Declare a runtime scalar parameter (float32)."""
    return Param(name)


def stage(expr, name: Optional[str] = None, policy: Optional[str] = None,
          bounded: bool = False) -> Stage:
    """Name an intermediate so it can be scheduled explicitly."""
    st = as_stage(expr, name)
    if policy is not None:
        if policy not in POLICIES:
            raise TerraError(f"unknown schedule policy {policy!r}")
        st.default_policy = policy
    if bounded:
        st.bounded = True
    return st


class Parallel:
    """The ``parallel(axis, nthreads=0)`` schedule directive.

    Composable with ``vectorize`` and ``linebuffer``: the compiled
    pipeline's scanline (y) loop is split into per-worker strips
    dispatched on the :mod:`repro.parallel` pool, group by group (each
    fused group is a barrier, preserving producer→consumer order).

    ``nthreads=0`` means "decide at compile time": the
    ``REPRO_TERRA_THREADS`` environment variable if set, else the
    machine's core count.  An effective count of 1 compiles the exact
    serial code path — byte-identical generated C."""

    def __init__(self, axis: str = "y", nthreads: int = 0):
        if axis != "y":
            raise TerraError(
                f"parallel axis must be 'y' (the scanline axis); got "
                f"{axis!r} — x is the vectorize axis")
        self.axis = axis
        self.nthreads = int(nthreads)

    def __repr__(self):
        return f"parallel({self.axis!r}, nthreads={self.nthreads})"


def parallel(axis: str = "y", nthreads: int = 0) -> Parallel:
    """Split the pipeline's y loop across worker threads (see
    :class:`Parallel`)."""
    return Parallel(axis, nthreads)


def min_(a, b) -> Expr:
    return BinOp("min", wrap(a), wrap(b))


def max_(a, b) -> Expr:
    return BinOp("max", wrap(a), wrap(b))


def clamp(x, lo, hi) -> Expr:
    return min_(max_(x, lo), hi)
