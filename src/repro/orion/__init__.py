"""Orion — the stencil DSL of paper §6.2.

Public surface: ``image``, ``param``, ``stage``, ``min_``/``max_``/
``clamp``, the schedule policies, and ``compile_pipeline``.
"""

from .lang import (INLINE, LINEBUFFER, MATERIALIZE, POLICIES, Expr, Param,
                   Parallel, Stage, clamp, image, max_, min_, parallel,
                   param, stage)
from .compile import CompiledStencil, compile_pipeline

__all__ = ["image", "param", "stage", "clamp", "min_", "max_", "parallel",
           "compile_pipeline", "CompiledStencil", "Expr", "Stage", "Param",
           "Parallel",
           "MATERIALIZE", "INLINE", "LINEBUFFER", "POLICIES"]
