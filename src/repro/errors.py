"""Error hierarchy for the Terra reproduction.

The paper (Section 4.1, "Eager specialization with lazy typechecking")
enumerates the distinct places a combined Lua-Terra program can go wrong:

* while *specializing*: an undefined variable, an escape that evaluates to
  a value that is not a Terra term, or a type expression that evaluates to
  a value that is not a Terra type;
* while *typechecking*: an ordinary type error;
* while *linking*: a reference to a declared-but-undefined function;
* at *runtime*: traps such as out-of-bounds accesses (interpreter only).

Each of those stages gets its own exception class so callers (and tests)
can distinguish them.
"""

from __future__ import annotations


class TerraError(Exception):
    """Base class for every error raised by this package."""

    def __init__(self, message: str, location: "SourceLocation | None" = None):
        self.location = location
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)


class TerraSyntaxError(TerraError):
    """The Terra source text could not be tokenized or parsed."""


class SpecializeError(TerraError):
    """Eager specialization failed (Section 4.1).

    Raised for undefined variables, escapes yielding non-Terra values, and
    type expressions yielding non-types.
    """


class TypeCheckError(TerraError):
    """Lazy typechecking of a Terra function failed."""


class LinkError(TerraError):
    """A called function's connected component contains an undefined
    declaration (paper Figure 4 requires every reachable function to be
    defined before execution)."""


class CompileError(TerraError):
    """The backend failed to translate or build the typed IR."""


class IRVerifyError(CompileError):
    """The typed-IR verifier found a broken invariant (a compiler bug:
    either the typechecker produced a malformed tree or an optimization
    pass corrupted one).  See :mod:`repro.passes.verify`."""


class TrapError(TerraError):
    """A runtime trap in interpreted Terra code (bad pointer, OOB, ...)."""


class FFIError(TerraError):
    """A Python value could not be converted to/from a Terra value."""


class SourceLocation:
    """A point in Terra source text, carried on AST nodes and errors."""

    __slots__ = ("filename", "line", "column")

    def __init__(self, filename: str, line: int, column: int):
        self.filename = filename
        self.line = line
        self.column = column

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"

    def __repr__(self) -> str:
        return f"SourceLocation({self.filename!r}, {self.line}, {self.column})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SourceLocation)
            and self.filename == other.filename
            and self.line == other.line
            and self.column == other.column
        )

    def __hash__(self) -> int:
        return hash((self.filename, self.line, self.column))
