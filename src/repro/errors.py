"""Error hierarchy for the Terra reproduction.

The paper (Section 4.1, "Eager specialization with lazy typechecking")
enumerates the distinct places a combined Lua-Terra program can go wrong:

* while *specializing*: an undefined variable, an escape that evaluates to
  a value that is not a Terra term, or a type expression that evaluates to
  a value that is not a Terra type;
* while *typechecking*: an ordinary type error;
* while *linking*: a reference to a declared-but-undefined function;
* at *runtime*: traps such as out-of-bounds accesses (interpreter only).

Each of those stages gets its own exception class so callers (and tests)
can distinguish them.
"""

from __future__ import annotations


class TerraError(Exception):
    """Base class for every error raised by this package."""

    def __init__(self, message: str, location: "SourceLocation | None" = None):
        self.location = location
        self.raw_message = message  # pre-formatting, for re-raising with a location
        if location is not None:
            message = f"{location}: {message}"
            caret = location.caret_block()
            if caret is not None:
                message = f"{message}\n{caret}"
        super().__init__(message)


class TerraSyntaxError(TerraError):
    """The Terra source text could not be tokenized or parsed."""


class SpecializeError(TerraError):
    """Eager specialization failed (Section 4.1).

    Raised for undefined variables, escapes yielding non-Terra values, and
    type expressions yielding non-types.
    """


class TypeCheckError(TerraError):
    """Lazy typechecking of a Terra function failed."""


class FrontendContractError(TerraError):
    """A frontend handed ``TerraFunction.define`` a definition that
    violates the frontend↔IR contract (``docs/FRONTENDS.md``) — e.g. a
    non-Symbol binder, a non-Type annotation, or an untyped-AST node
    left in the specialized tree.  Always a frontend bug, never a user
    error; enforced by :func:`repro.core.sast.validate_definition`."""


class LinkError(TerraError):
    """A called function's connected component contains an undefined
    declaration (paper Figure 4 requires every reachable function to be
    defined before execution)."""


class CompileError(TerraError):
    """The backend failed to translate or build the typed IR."""


class ScheduleError(CompileError):
    """A :mod:`repro.schedule` directive cannot be applied to the kernel
    it was attached to — an unknown/ambiguous axis, an illegal
    combination (``Vectorize`` on a non-innermost or non-unit-stride
    axis, ``Parallel`` on a loop that is not the final top-level loop),
    or a ``Pack`` reaching the generic lowering pass.  The message names
    the offending directive; raised at schedule construction or at
    compile time (when the typed IR is first available), never after
    wrong code has been emitted."""


class IRVerifyError(CompileError):
    """The typed-IR verifier found a broken invariant (a compiler bug:
    either the typechecker produced a malformed tree or an optimization
    pass corrupted one).  See :mod:`repro.passes.verify`."""


class TrapError(TerraError):
    """A runtime trap in interpreted Terra code (bad pointer, OOB, ...)."""


class FFIError(TerraError):
    """A Python value could not be converted to/from a Terra value."""


class SourceLocation:
    """A point in Terra source text, carried on AST nodes and errors.

    ``line_text`` — the raw source line containing the location — is
    optional context used only for error rendering (the ``^`` caret
    block); both frontends fill it in, and it is deliberately excluded
    from equality and hashing so that locations with and without the
    snippet still compare equal.
    """

    __slots__ = ("filename", "line", "column", "line_text")

    def __init__(self, filename: str, line: int, column: int,
                 line_text: "str | None" = None):
        self.filename = filename
        self.line = line
        self.column = column
        self.line_text = line_text

    def caret_block(self) -> "str | None":
        """A two-line ``source / ^`` rendering, or None without a snippet."""
        if not self.line_text:
            return None
        text = self.line_text.rstrip("\n")
        if not text.strip():
            return None
        caret = " " * (max(self.column, 1) - 1) + "^"
        return f"  {text}\n  {caret}"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"

    def __repr__(self) -> str:
        return f"SourceLocation({self.filename!r}, {self.line}, {self.column})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SourceLocation)
            and self.filename == other.filename
            and self.line == other.line
            and self.column == other.column
        )

    def __hash__(self) -> int:
        return hash((self.filename, self.line, self.column))
