"""A miniature C declaration parser for ``includec``.

The paper uses Clang to import arbitrary C headers.  Without a C front-end
dependency, this module parses the *declaration subset* that headers
actually need for interop: function prototypes over scalar types,
pointers, and (opaque) struct types:

    double hypot(double x, double y);
    struct ctx;  /* opaque */
    struct ctx *ctx_new(void);
    int printf(const char *fmt, ...);

Supported type syntax: ``void  char  short  int  long  long long  float
double`` with ``signed/unsigned``, ``const`` (ignored), ``struct NAME``
(opaque), ``*`` pointers, and ``...`` varargs.  ``#include <known.h>``
lines pull in the built-in header tables; other preprocessor lines and
comments are skipped.
"""

from __future__ import annotations

import re

from ..core import types as T
from ..errors import TerraSyntaxError
from . import libc

_TOKEN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*|\.\.\.|[*(),;]")

_BASE_TYPES = {
    ("void",): None,
    ("char",): T.int8,
    ("signed", "char"): T.int8,
    ("unsigned", "char"): T.uint8,
    ("short",): T.int16,
    ("short", "int"): T.int16,
    ("unsigned", "short"): T.uint16,
    ("unsigned", "short", "int"): T.uint16,
    ("int",): T.int32,
    ("signed",): T.int32,
    ("signed", "int"): T.int32,
    ("unsigned",): T.uint32,
    ("unsigned", "int"): T.uint32,
    ("long",): T.int64,
    ("long", "int"): T.int64,
    ("unsigned", "long"): T.uint64,
    ("unsigned", "long", "int"): T.uint64,
    ("long", "long"): T.int64,
    ("long", "long", "int"): T.int64,
    ("unsigned", "long", "long"): T.uint64,
    ("unsigned", "long", "long", "int"): T.uint64,
    ("float",): T.float32,
    ("double",): T.float64,
    ("_Bool",): T.bool_,
    ("size_t",): T.uint64,
    ("ssize_t",): T.int64,
    ("int8_t",): T.int8, ("int16_t",): T.int16,
    ("int32_t",): T.int32, ("int64_t",): T.int64,
    ("uint8_t",): T.uint8, ("uint16_t",): T.uint16,
    ("uint32_t",): T.uint32, ("uint64_t",): T.uint64,
}

_TYPE_WORDS = {w for key in _BASE_TYPES for w in key} | {
    "const", "struct", "volatile", "restrict", "extern", "static", "inline"}


def _strip_comments(source: str) -> str:
    source = re.sub(r"/\*.*?\*/", " ", source, flags=re.S)
    return re.sub(r"//[^\n]*", " ", source)


class CDeclParser:
    def __init__(self, source: str):
        self.source = source
        self.opaque: dict[str, T.OpaqueType] = {}

    def parse(self) -> dict:
        """Returns a namespace dict: function name -> external function,
        struct name -> opaque type."""
        table: dict = {}
        for line in _strip_comments(self.source).split("\n"):
            line = line.strip()
            if not line.startswith("#"):
                continue
            m = re.match(r"#\s*include\s*[<\"]([^>\"]+)[>\"]", line)
            if m:
                header = libc.header_table(m.group(1))
                if header is None:
                    raise TerraSyntaxError(
                        f"includec: unknown header {m.group(1)!r} (known: "
                        f"{', '.join(libc.known_headers())})")
                table.update(header)
        body = re.sub(r"(?m)^\s*#[^\n]*$", "", _strip_comments(self.source))
        for decl in body.split(";"):
            decl = decl.strip()
            if not decl:
                continue
            self._parse_decl(decl, table)
        return table

    def _parse_decl(self, decl: str, table: dict) -> None:
        tokens = _TOKEN_RE.findall(decl)
        if not tokens:
            return
        # opaque struct declaration: struct NAME
        if tokens[0] == "struct" and len(tokens) == 2:
            table[tokens[1]] = self._opaque(tokens[1])
            return
        pos = [0]

        def peek():
            return tokens[pos[0]] if pos[0] < len(tokens) else None

        def advance():
            tok = peek()
            pos[0] += 1
            return tok

        rettype, name = self._parse_type_and_name(tokens, pos)
        if name is None or peek() != "(":
            raise TerraSyntaxError(
                f"includec: cannot parse declaration: {decl!r}")
        advance()  # '('
        params: list[T.Type] = []
        varargs = False
        if peek() == ")":
            advance()
        else:
            while True:
                if peek() == "...":
                    advance()
                    varargs = True
                elif peek() == "void" and tokens[pos[0] + 1] == ")":
                    advance()
                else:
                    ptype, _pname = self._parse_type_and_name(tokens, pos)
                    if ptype is None:
                        raise TerraSyntaxError(
                            f"includec: parameter of {name!r} has void type")
                    params.append(ptype)
                tok = advance()
                if tok == ")":
                    break
                if tok != ",":
                    raise TerraSyntaxError(
                        f"includec: expected ',' or ')' in {decl!r}")
        table[name] = libc.external(
            name, params, rettype if rettype is not None else T.unit, varargs)

    def _parse_type_and_name(self, tokens, pos):
        words = []
        name = None
        base: "T.Type | None" = None
        while pos[0] < len(tokens):
            tok = tokens[pos[0]]
            if tok in ("const", "volatile", "restrict", "extern", "static",
                       "inline"):
                pos[0] += 1
                continue
            if tok == "struct":
                pos[0] += 1
                sname = tokens[pos[0]]
                pos[0] += 1
                base = self._opaque(sname)
                break
            if tok in _TYPE_WORDS or (tok,) in _BASE_TYPES:
                words.append(tok)
                pos[0] += 1
                continue
            break
        if base is None:
            key = tuple(words)
            if key not in _BASE_TYPES:
                raise TerraSyntaxError(
                    f"includec: unknown type {' '.join(words)!r}")
            base = _BASE_TYPES[key]
        ty: "T.Type | None" = base
        while pos[0] < len(tokens) and tokens[pos[0]] == "*":
            pos[0] += 1
            ty = T.pointer(ty if ty is not None else T.OpaqueType("void"))
        if pos[0] < len(tokens) and re.fullmatch(r"[A-Za-z_]\w*",
                                                 tokens[pos[0]]):
            name = tokens[pos[0]]
            pos[0] += 1
        return ty, name

    def _opaque(self, name: str) -> T.OpaqueType:
        ty = self.opaque.get(name)
        if ty is None:
            ty = T.OpaqueType(name)
            self.opaque[name] = ty
        return ty
