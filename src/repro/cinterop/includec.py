"""``includec`` — import C declarations into a namespace table.

The paper (§2): "The Lua function includec imports the C functions from
stdlib.h.  It creates a Lua table ... then fills the table with Terra
functions that invoke the corresponding C functions."  Here the table is a
dict-like namespace; Terra code reaches entries through the nested-table
sugar (``std.malloc``).

``includec("stdlib.h")`` imports a known header; arbitrary declaration
text (optionally with ``#include`` lines of known headers) is parsed by
the miniature C front-end in :mod:`repro.cinterop.cparse`.
"""

from __future__ import annotations

from .cparse import CDeclParser
from . import libc


class CNamespace(dict):
    """The table returned by includec — attribute and item access.

    Attribute lookup prefers imported declarations over dict methods, so
    ``stdlib.get``-style names resolve to the C functions."""

    is_terra_namespace = True

    def __getattribute__(self, name: str):
        if not name.startswith("_") and dict.__contains__(self, name):
            return dict.__getitem__(self, name)
        return super().__getattribute__(name)

    def __getattr__(self, name: str):
        raise AttributeError(name)


def includec(header: str) -> CNamespace:
    table = libc.header_table(header.strip())
    if table is not None:
        return CNamespace(table)
    return CNamespace(CDeclParser(header).parse())
