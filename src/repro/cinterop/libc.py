"""Built-in C library declarations.

Gives ``includec("stdlib.h")`` etc. their contents: each known header maps
to a set of external Terra functions.  Under the C backend these bind to
the real libc at link time; under the interpreter they dispatch to
:mod:`repro.backend.interp.builtins`.

External function objects are cached so every ``includec`` call (and both
backends) shares the same identity — linking works regardless of which
backend compiles first.
"""

from __future__ import annotations

from ..core import types as T
from ..core.function import TerraFunction

_void = T.unit
_i8p = T.rawstring
_vp = T.pointer(T.OpaqueType("void"))
_FILE = T.pointer(T.OpaqueType("FILE"))

#: header -> {name: (param_types, return_type, varargs)}
_HEADERS: dict[str, dict[str, tuple]] = {
    "stdlib.h": {
        "malloc": ([T.uint64], T.pointer(T.OpaqueType("void"))),
        "calloc": ([T.uint64, T.uint64], T.pointer(T.OpaqueType("void"))),
        "realloc": ([T.pointer(T.OpaqueType("void")), T.uint64],
                    T.pointer(T.OpaqueType("void"))),
        "free": ([T.pointer(T.OpaqueType("void"))], _void),
        "abort": ([], _void),
        "exit": ([T.int32], _void),
        "rand": ([], T.int32),
        "srand": ([T.uint32], _void),
        "atoi": ([_i8p], T.int32),
    },
    "string.h": {
        "memset": ([_vp, T.int32, T.uint64], _vp),
        "memcpy": ([_vp, _vp, T.uint64], _vp),
        "memmove": ([_vp, _vp, T.uint64], _vp),
        "memcmp": ([_vp, _vp, T.uint64], T.int32),
        "strlen": ([_i8p], T.uint64),
        "strcmp": ([_i8p, _i8p], T.int32),
        "strcpy": ([_i8p, _i8p], _i8p),
    },
    "stdio.h": {
        "printf": ([_i8p], T.int32, True),
        "snprintf": ([_i8p, T.uint64, _i8p], T.int32, True),
        "puts": ([_i8p], T.int32),
        "putchar": ([T.int32], T.int32),
        "fopen": ([_i8p, _i8p], _FILE),
        "fclose": ([_FILE], T.int32),
        "fread": ([_vp, T.uint64, T.uint64, _FILE], T.uint64),
        "fwrite": ([_vp, T.uint64, T.uint64, _FILE], T.uint64),
        "fseek": ([_FILE, T.int64, T.int32], T.int32),
        "ftell": ([_FILE], T.int64),
        "fgetc": ([_FILE], T.int32),
        "fputc": ([T.int32, _FILE], T.int32),
    },
    "math.h": {},
    "time.h": {
        "clock": ([], T.int64),
    },
}

for _name in ("sqrt", "fabs", "exp", "log", "sin", "cos", "tan",
              "floor", "ceil", "asin", "acos", "atan"):
    _HEADERS["math.h"][_name] = ([T.float64], T.float64)
    _HEADERS["math.h"][_name + "f"] = ([T.float32], T.float32)
for _name in ("pow", "fmod", "atan2", "fmin", "fmax"):
    _HEADERS["math.h"][_name] = ([T.float64, T.float64], T.float64)
    _HEADERS["math.h"][_name + "f"] = ([T.float32, T.float32], T.float32)

_EXTERNALS: dict[str, TerraFunction] = {}


def external(name: str, params, rettype, varargs: bool = False) -> TerraFunction:
    """Get-or-create the canonical external TerraFunction for ``name``."""
    fn = _EXTERNALS.get(name)
    if fn is None:
        returns = [] if rettype is _void or (
            isinstance(rettype, T.TupleType) and rettype.isunit()) else [rettype]
        ftype = T.FunctionType(list(params), returns, varargs)
        fn = TerraFunction.external(name, ftype)
        _EXTERNALS[name] = fn
    return fn


def known_headers() -> list[str]:
    return sorted(_HEADERS)


def header_table(header: str):
    """All externals declared by one known header, as a namespace dict."""
    decls = _HEADERS.get(header)
    if decls is None:
        return None
    table = {}
    for name, sig in decls.items():
        params, rettype = sig[0], sig[1]
        varargs = bool(sig[2]) if len(sig) > 2 else False
        table[name] = external(name, params, rettype, varargs)
    return table
