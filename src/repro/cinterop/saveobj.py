"""``saveobj`` — ahead-of-time output of Terra functions.

The paper (§2): "we can save the Terra function to a .o file which can be
linked to a normal C executable" — the property that makes generated
kernels usable *without* the meta-language runtime (§6.1: "since Terra
code can run without Lua, the resulting multiply routine can be written
out as a library and used in other programs").

The output format follows the file extension:

* ``.c``  — the C translation unit (with exported wrappers),
* ``.o``  — a relocatable object file (gcc -c),
* ``.so`` — a shared library (gcc -shared),
* ``.h``  — a C header with prototypes for the exported names.
"""

from __future__ import annotations

import os

from ..backend.base import get_backend
from ..backend.c.emit import CEmitter
from ..buildd import get_service
from ..core.linker import pipelined_component
from ..errors import CompileError


def emit_exported_source(functions: dict) -> str:
    """One translation unit defining all given functions, with an exported
    wrapper per requested name."""
    backend = get_backend("c")
    component: list = []
    seen = set()
    for fn in functions.values():
        for member in pipelined_component(fn, backend):
            if member.uid not in seen:
                seen.add(member.uid)
                component.append(member)
    emitter = CEmitter(component, backend, freestanding=True)
    source = emitter.emit_unit()
    wrappers = ["/* exported names */"]
    for export_name, fn in functions.items():
        typed = fn.typed
        params = ", ".join(
            emitter._field_decl(ty, f"a{i}")
            for i, ty in enumerate(typed.type.parameters)) or "void"
        argnames = ", ".join(f"a{i}"
                             for i in range(len(typed.type.parameters)))
        ret = emitter.ctype(typed.type.returntype)
        call = f"{emitter.fn_name(fn)}({argnames})"
        body = f"return {call};" if ret != "void" else f"{call};"
        wrappers.append(f"{ret} {export_name}({params}) {{ {body} }}")
    return source + "\n" + "\n".join(wrappers) + "\n"


def emit_header(functions: dict) -> str:
    backend = get_backend("c")
    component: list = []
    seen = set()
    for fn in functions.values():
        for member in pipelined_component(fn, backend):
            if member.uid not in seen:
                seen.add(member.uid)
                component.append(member)
    emitter = CEmitter(component, backend, freestanding=True)
    emitter.emit_unit()  # populate type tables
    lines = ["#include <stdint.h>", ""]
    for export_name, fn in functions.items():
        typed = fn.typed
        params = ", ".join(emitter.ctype(ty)
                           for ty in typed.type.parameters) or "void"
        ret = emitter.ctype(typed.type.returntype)
        lines.append(f"{ret} {export_name}({params});")
    return "\n".join(lines) + "\n"


def saveobj(path: str, functions: dict) -> None:
    for name, fn in functions.items():
        if not getattr(fn, "is_terra_function", False):
            raise CompileError(f"saveobj: {name!r} is not a Terra function")
    ext = os.path.splitext(path)[1]
    if ext == ".h":
        with open(path, "w") as f:
            f.write(emit_header(functions))
        return
    source = emit_exported_source(functions)
    if ext == ".c":
        with open(path, "w") as f:
            f.write(source)
        return
    c_path = path + ".gen.c"
    with open(c_path, "w") as f:
        f.write(source)
    if ext == ".o":
        flags = ["-O3", "-march=native", "-fPIC", "-w", "-c", c_path]
    elif ext == ".so":
        flags = ["-O3", "-march=native", "-fPIC", "-w", "-shared", c_path,
                 "-lm"]
    else:
        os.unlink(c_path)
        raise CompileError(
            f"saveobj: unsupported extension {ext!r} (use .c, .h, .o, .so)")
    try:
        # routed through the buildd service: runs on the compile pool and
        # is recorded in the telemetry, but the output path is the user's,
        # so it is not content-cached.
        get_service().compile_to(path, source, flags)
    except CompileError as exc:
        raise CompileError(f"saveobj: {exc}") from None
    finally:
        os.unlink(c_path)
