"""The matrix-multiply auto-tuner — paper §6.1.

    "In Lua, we wrote an auto-tuner that searches over reasonable values
    for the parameters (NB, V, RA, RB), JIT-compiles the code, runs it on
    a user-provided test case, and chooses the best-performing
    configuration.  Our implementation is around 200 lines of code."

``tune`` enumerates candidate (NB, RM, RN, V) configurations subject to
register-pressure and divisibility constraints, JIT-compiles each staged
kernel, times it on a test multiply, and returns the best configuration —
all in one process, which is the paper's headline engineering win over
ATLAS's Makefile/preprocessor/cross-compilation pipeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .. import double
from .. import trace
from ..core import types as T
from .matmul import make_gemm_from_schedule


@dataclass
class Candidate:
    NB: int
    RM: int
    RN: int
    V: int
    use_prefetch: bool = True

    def __str__(self) -> str:
        pf = "+pf" if self.use_prefetch else "-pf"
        return f"NB={self.NB} RM={self.RM} RN={self.RN} V={self.V} {pf}"

    def schedule(self, packed: bool = True):
        """This candidate as a :class:`repro.schedule.Schedule` — the
        tuner's search space in the first-class schedule vocabulary
        (see :func:`repro.autotune.make_gemm_from_schedule` for the
        directive mapping).  ``candidate.schedule()`` round-trips:
        staging it produces byte-identical C to the legacy maker."""
        from ..schedule import Pack, Schedule, Tile, Unroll, Vectorize
        directives = [Tile(("i", "j"), (self.NB, self.NB)),
                      Vectorize("j", self.V)]
        if self.RM > 1:
            directives.append(Unroll("i", self.RM))
        if self.RN > 1:
            directives.append(Unroll("jj", self.RN))
        if packed:
            directives += [Pack("a", "panel"), Pack("b", "panel")]
        return Schedule(directives)


@dataclass
class TuneResult:
    best: Candidate
    gflops: float
    gemm: object
    trials: list[tuple[Candidate, float]] = field(default_factory=list)


def candidates(elem: T.Type = double,
               NBs: Sequence[int] = (32, 48, 64, 96),
               RMs: Sequence[int] = (1, 2, 4, 6),
               RNs: Sequence[int] = (1, 2, 3),
               Vs: Optional[Sequence[int]] = None,
               prefetch_options: Sequence[bool] = (True,),
               max_vector_registers: int = 16) -> list[Candidate]:
    """Enumerate reasonable configurations (paper: "searches over
    reasonable values for the parameters")."""
    if Vs is None:
        Vs = (2, 4) if elem is double else (4, 8)
    out: list[Candidate] = []
    for NB in NBs:
        for V in Vs:
            for RM in RMs:
                if NB % RM:
                    continue
                for RN in RNs:
                    if NB % (RN * V):
                        continue
                    # the c-block plus a-broadcast and b-row values must
                    # roughly fit the machine's vector registers
                    if RM * RN + RM + RN > max_vector_registers:
                        continue
                    for pf in prefetch_options:
                        out.append(Candidate(NB, RM, RN, V, pf))
    return out


def time_gemm(gemm, N: int, elem: T.Type = double, repeats: int = 3,
              rng: Optional[np.random.RandomState] = None) -> float:
    """Median GFLOPS of ``gemm`` on an NxN multiply."""
    dtype = np.float64 if elem is double else np.float32
    rng = rng or np.random.RandomState(7)
    A = np.ascontiguousarray(rng.rand(N, N).astype(dtype))
    B = np.ascontiguousarray(rng.rand(N, N).astype(dtype))
    C = np.zeros((N, N), dtype=dtype)
    gemm(C, A, B, N)  # warm-up & JIT
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        gemm(C, A, B, N)
        times.append(time.perf_counter() - t0)
    dt = sorted(times)[len(times) // 2]
    return 2.0 * N ** 3 / dt / 1e9


def tune(test_size: int = 512, elem: T.Type = double,
         candidate_list: Optional[Sequence[Candidate]] = None,
         repeats: int = 3, verify: bool = True,
         verbose: bool = False, packed: bool = True,
         parallel_compile: bool = True) -> TuneResult:
    """Search the configuration space and return the best staged GEMM.

    ``packed=True`` (default) uses the ATLAS-style panel-packing driver
    around the staged kernel; ``packed=False`` multiplies in place.

    With ``parallel_compile=True`` (default) every candidate kernel is
    submitted to the :mod:`repro.buildd` compile pool *up front*, so gcc
    runs for later candidates overlap the timing runs of earlier ones
    (and, with ``REPRO_BUILDD_JOBS>1``, each other).  A warm artifact
    cache skips the compiles entirely — check
    ``repro.buildd.stats()["hit_rate"]`` after a sweep."""
    cands = list(candidate_list if candidate_list is not None
                 else candidates(elem))
    dtype = np.float64 if elem is double else np.float32
    rng = np.random.RandomState(3)
    trials: list[tuple[Candidate, float]] = []
    best: Optional[Candidate] = None
    best_gflops = -1.0
    best_gemm = None
    # every candidate is feasible at any test size: both GEMM makers
    # handle N % NB != 0 through their edge loops (an earlier version
    # silently dropped every candidate whose NB did not divide the test
    # size, which for e.g. test_size=500 was *all* of them)
    # stage every candidate first; with parallel_compile each staged kernel
    # is already building on the pool while the next one is staged (the
    # paper's "JIT-compiles the code" step, made concurrent)
    staged: list[tuple[Candidate, object]] = []
    with trace.span("tune", cat="tune", candidates=len(cands),
                    test_size=test_size) as tune_sp:
        for cand in cands:
            with trace.span("tune.stage", cat="tune", candidate=str(cand)):
                gemm = make_gemm_from_schedule(
                    cand.schedule(packed), elem, cand.use_prefetch,
                    async_compile=parallel_compile)
            staged.append((cand, gemm))
        for cand, gemm in staged:
            with trace.span("tune.measure", cat="tune",
                            candidate=str(cand)) as sp:
                if verify:
                    # deliberately not a multiple of NB, so verification
                    # exercises the edge/k-tail paths too
                    n = cand.NB * 2 + 5
                    A = rng.rand(n, n).astype(dtype)
                    B = rng.rand(n, n).astype(dtype)
                    C = np.zeros((n, n), dtype=dtype)
                    gemm(C, A, B, n)
                    tol = 1e-8 if elem is double else 1e-2
                    if not np.allclose(C, A @ B, atol=tol * n):
                        raise AssertionError(
                            f"misgenerated kernel for {cand}")
                gflops = time_gemm(gemm, test_size, elem, repeats)
                sp.set(gflops=round(gflops, 3))
            trials.append((cand, gflops))
            if verbose:
                print(f"  {cand}: {gflops:.2f} GFLOPS")
            if gflops > best_gflops:
                best, best_gflops, best_gemm = cand, gflops, gemm
        if best is not None:
            tune_sp.set(best=str(best), gflops=round(best_gflops, 3))
    if best is None:
        raise ValueError("empty candidate list")
    return TuneResult(best, best_gflops, best_gemm, trials)
