"""The staged L1 matrix-multiply micro-kernel — paper Figure 5.

A line-by-line transliteration of the paper's ``genkernel(NB, RM, RN, V,
alpha)``: it generates a Terra function computing a multiply over
NB×NB blocks that fit in L1 cache,

    ``C = alpha*C + A*B``

with *register blocking* (an RM × RN·V block of C held in vector
registers — the ``symmat`` symbol matrices), *vectorization* (Terra
``vector(double,V)`` types), and *prefetching* (the ``prefetch``
intrinsic), exactly the three staged optimizations §6.1 describes.

The kernel is parameterized over the element type as well (``double`` for
DGEMM, ``float`` for SGEMM — Figure 6 shows both).
"""

from __future__ import annotations

from .. import (constant, double, int64, pointer, prefetch, quote_, symbol,
                symmat, terra, vector)
from ..core import types as T


def genkernel(NB: int, RM: int, RN: int, V: int, alpha: float,
              elem: T.Type = double, use_prefetch: bool = True):
    """Generate the L1-sized kernel (paper Fig. 5).

    Requires ``NB % RM == 0`` and ``NB % (RN*V) == 0``.  Returns a Terra
    function ``(A, B, C : &elem, lda, ldb, ldc : int64) -> {}``.
    """
    assert NB % RM == 0 and NB % (RN * V) == 0, (NB, RM, RN, V)
    vector_type = vector(elem, V)
    vector_pointer = pointer(vector_type)
    eptr = pointer(elem)
    A, B, C = symbol(eptr, "A"), symbol(eptr, "B"), symbol(eptr, "C")
    mm, nn = symbol(int64, "mm"), symbol(int64, "nn")
    lda = symbol(int64, "lda")
    ldb = symbol(int64, "ldb")
    ldc = symbol(int64, "ldc")
    a, b = symmat("a", RM), symmat("b", RN)
    c, caddr = symmat("c", RM, RN), symmat("caddr", RM, RN)
    k = symbol(int64, "k")

    alpha_const = constant(elem, float(alpha))
    zero = constant(elem, 0.0)
    loadc, storec = [], []
    for m in range(RM):
        for n in range(RN):
            if alpha == 0.0:
                # C's previous contents may be uninitialized (0*NaN = NaN),
                # so the alpha=0 kernel skips the load entirely
                loadc.append(quote_("""
                    var [caddr[m][n]] = [C] + [m]*[ldc] + [n*V]
                    var [c[m][n]] = [vector_type]([zero])
                """))
            else:
                loadc.append(quote_("""
                    var [caddr[m][n]] = [C] + [m]*[ldc] + [n*V]
                    var [c[m][n]] = [alpha_const] * @[vector_pointer]([caddr[m][n]])
                """))
            storec.append(quote_("""
                @[vector_pointer]([caddr[m][n]]) = [c[m][n]]
            """))

    calcc = []
    for n in range(RN):
        calcc.append(quote_("""
            var [b[n]] = @[vector_pointer](&[B][[n*V]])
        """))
    for m in range(RM):
        calcc.append(quote_("""
            var [a[m]] = [vector_type]([A][[m]*[lda]])
        """))
    for m in range(RM):
        for n in range(RN):
            calcc.append(quote_("""
                [c[m][n]] = [c[m][n]] + [a[m]] * [b[n]]
            """))

    pf = []
    if use_prefetch:
        pf.append(quote_("[prefetch]([B] + 4*[ldb], 0, 3, 1)"))

    return terra("""
    terra([A] : &elem, [B] : &elem, [C] : &elem,
          [lda] : int64, [ldb] : int64, [ldc] : int64) : {}
      for [mm] = 0, NB, RM do
        for [nn] = 0, NB, [RN*V] do
          [loadc]
          for [k] = 0, NB do
            [pf]
            [calcc]
            [B], [A] = [B] + [ldb], [A] + 1
          end
          [storec]
          [A], [B], [C] = [A] - NB, [B] - [ldb]*NB + [RN*V], [C] + [RN*V]
        end
        [A], [B], [C] = [A] + [lda]*RM, [B] - NB, [C] + RM*[ldc] - NB
      end
    end
    """, env=dict(A=A, B=B, C=C, lda=lda, ldb=ldb, ldc=ldc, mm=mm, nn=nn,
                  k=k, a=a, b=b, c=c, caddr=caddr, NB=NB, RM=RM, RN=RN, V=V,
                  loadc=loadc, storec=storec, calcc=calcc, pf=pf,
                  vector_type=vector_type, vector_pointer=vector_pointer,
                  prefetch=prefetch, elem=elem, alpha_const=alpha_const))
