"""The full blocked matrix multiply built on the Figure-5 kernel.

Paper §6.1: "ATLAS breaks down a matrix multiply into smaller operations
where the matrices fit into L1 cache.  An optimized kernel for L1-sized
multiplies is used for each operation. ... We found that a simple
two-level blocking scheme worked well."

``make_gemm`` stages the outer two-level blocking around two instances of
the L1 kernel (an ``alpha=0`` variant for the first k-panel, which also
initializes C, and an ``alpha=1`` accumulating variant), computing
``C = A*B`` for square row-major matrices whose size is a multiple of NB.
"""

from __future__ import annotations

from .. import double, terra
from ..core import types as T
from .genkernel import genkernel


def _start_compile(gemm, fma: bool, async_compile: bool) -> None:
    """Kick off the kernel's native build: blocking by default, or
    submitted to the buildd pool (``async_compile=True``) so many
    candidate kernels compile concurrently — the first call joins the
    pending build.  FMA contraction flags are captured at submission."""
    from ..backend.c.runtime import extra_cflags
    if fma:
        with extra_cflags("-ffp-contract=fast"):
            if async_compile:
                gemm.compile_async("c")
            else:
                gemm.compile("c")
    elif async_compile:
        gemm.compile_async("c")


def make_gemm(NB: int, RM: int, RN: int, V: int, elem: T.Type = double,
              use_prefetch: bool = True, fma: bool = True,
              async_compile: bool = False):
    """Build ``gemm(C, A, B, N)`` for any N.

    The blocked interior covers the largest multiple of NB; the k tail
    and the bottom/right edges run as naive loops (the same remainder
    structure as :func:`make_gemm_packed` — an earlier version assumed
    NB | N and read and wrote past the matrices otherwise).

    ``fma=True`` compiles the kernel with fused multiply-add contraction
    (what a hand-tuned BLAS uses on FMA hardware); pass False for strict
    per-operation IEEE results.  ``async_compile=True`` returns while gcc
    still runs on the :mod:`repro.buildd` pool (the auto-tuner uses this
    to overlap candidate compilation with timing runs).
    """
    l1_first = genkernel(NB, RM, RN, V, 0.0, elem, use_prefetch)
    l1_accum = genkernel(NB, RM, RN, V, 1.0, elem, use_prefetch)
    gemm = terra("""
    terra gemm(C : &elem, A : &elem, B : &elem, N : int64) : {}
      var N0 = (N / NB) * NB     -- the blocked interior; edges go naive
      for mb = 0, N0, NB do
        for nb = 0, N0, NB do
          l1_first(A + mb*N, B + nb, C + mb*N + nb, N, N, N)
          for kb = NB, N0, NB do
            l1_accum(A + mb*N + kb, B + kb*N + nb, C + mb*N + nb, N, N, N)
          end
        end
      end
      if N0 == N then return end
      -- k tail for the blocked interior
      for i = 0, N0 do
        for k = N0, N do
          var aik = A[i * N + k]
          for j = 0, N0 do
            C[i * N + j] = C[i * N + j] + aik * B[k * N + j]
          end
        end
      end
      -- bottom edge rows (full k)
      for i = N0, N do
        for j = 0, N do
          var sum = [zeroconst]
          for k = 0, N do sum = sum + A[i * N + k] * B[k * N + j] end
          C[i * N + j] = sum
        end
      end
      -- right edge columns above the bottom edge (full k)
      for i = 0, N0 do
        for j = N0, N do
          var sum = [zeroconst]
          for k = 0, N do sum = sum + A[i * N + k] * B[k * N + j] end
          C[i * N + j] = sum
        end
      end
    end
    """, env=dict(elem=elem, NB=NB, l1_first=l1_first, l1_accum=l1_accum,
                  zeroconst=_zero(elem)))
    _start_compile(gemm, fma, async_compile)
    return gemm


def make_gemm_packed(NB: int, RM: int, RN: int, V: int,
                     elem: T.Type = double, use_prefetch: bool = True,
                     fma: bool = True, async_compile: bool = False):
    """Blocked GEMM with ATLAS-style panel packing.

    Each L1 block of A and B is copied into a contiguous scratch buffer
    before the micro-kernel runs, so the kernel's inner loops see unit
    stride and no cache-set conflicts — the same data-copy strategy ATLAS
    uses around its generated kernels.  Usually several GFLOPS faster than
    :func:`make_gemm` at large N.
    """
    from .. import includec
    std = includec("stdlib.h")
    l1_first = genkernel(NB, RM, RN, V, 0.0, elem, use_prefetch)
    l1_accum = genkernel(NB, RM, RN, V, 1.0, elem, use_prefetch)
    gemm = terra("""
    terra gemm(C : &elem, A : &elem, B : &elem, N : int64) : {}
      var N0 = (N / NB) * NB     -- the blocked interior; edges go naive
      var bufA = [&elem](std.malloc(NB * NB * sizeof(elem)))
      var bufB = [&elem](std.malloc(NB * NB * sizeof(elem)))
      for nb = 0, N0, NB do
        for kb = 0, N0, NB do
          -- pack B[kb : kb+NB, nb : nb+NB] contiguously
          for i = 0, NB do
            var src = B + (kb + i) * N + nb
            var dst = bufB + i * NB
            for j = 0, NB do dst[j] = src[j] end
          end
          for mb = 0, N0, NB do
            -- pack A[mb : mb+NB, kb : kb+NB]
            for i = 0, NB do
              var src = A + (mb + i) * N + kb
              var dst = bufA + i * NB
              for j = 0, NB do dst[j] = src[j] end
            end
            if kb == 0 then
              l1_first(bufA, bufB, C + mb * N + nb, NB, NB, N)
            else
              l1_accum(bufA, bufB, C + mb * N + nb, NB, NB, N)
            end
          end
        end
      end
      std.free(bufA)
      std.free(bufB)
      if N0 == N then return end
      -- k tail for the blocked interior
      for i = 0, N0 do
        for k = N0, N do
          var aik = A[i * N + k]
          for j = 0, N0 do
            C[i * N + j] = C[i * N + j] + aik * B[k * N + j]
          end
        end
      end
      -- bottom edge rows (full k)
      for i = N0, N do
        for j = 0, N do
          var sum = [zeroconst]
          for k = 0, N do sum = sum + A[i * N + k] * B[k * N + j] end
          C[i * N + j] = sum
        end
      end
      -- right edge columns above the bottom edge (full k)
      for i = 0, N0 do
        for j = N0, N do
          var sum = [zeroconst]
          for k = 0, N do sum = sum + A[i * N + k] * B[k * N + j] end
          C[i * N + j] = sum
        end
      end
    end
    """, env=dict(elem=elem, NB=NB, l1_first=l1_first, l1_accum=l1_accum,
                  std=std, zeroconst=_zero(elem)))
    _start_compile(gemm, fma, async_compile)
    return gemm


def make_gemm_packed_parallel(NB: int, RM: int, RN: int, V: int,
                              elem: T.Type = double,
                              use_prefetch: bool = True, fma: bool = True,
                              nthreads: int = 0):
    """Packed GEMM whose row-panel loop runs across worker threads.

    The kernel is restructured so ``mb`` (the C row-panel index) is the
    *outer* loop: each panel of C has exactly one writer, so panels
    dispatch independently, and each chunk call packs into its own
    freshly-malloc'd scratch (per-worker buffers for free).  Per element
    of C the k-accumulation order is unchanged, so the result is
    bit-identical to the serial packed GEMM.  Edge tails (N not a
    multiple of NB) run serially after the panels.

    Returns a Python driver ``gemm(C, A, B, N)``; the staged pieces are
    exposed as ``gemm.panels`` / ``gemm.edges`` for inspection.
    """
    from .. import includec
    from ..parallel import default_nthreads, parallel_for
    std = includec("stdlib.h")
    l1_first = genkernel(NB, RM, RN, V, 0.0, elem, use_prefetch)
    l1_accum = genkernel(NB, RM, RN, V, 1.0, elem, use_prefetch)
    panels = terra("""
    terra gemm_panels(C : &elem, A : &elem, B : &elem, N : int64) : {}
      var N0 = (N / NB) * NB     -- the blocked interior; edges go naive
      for mb = 0, N0, NB do
        var bufA = [&elem](std.malloc(NB * NB * sizeof(elem)))
        var bufB = [&elem](std.malloc(NB * NB * sizeof(elem)))
        for nb = 0, N0, NB do
          for kb = 0, N0, NB do
            -- pack B[kb : kb+NB, nb : nb+NB] contiguously
            for i = 0, NB do
              var src = B + (kb + i) * N + nb
              var dst = bufB + i * NB
              for j = 0, NB do dst[j] = src[j] end
            end
            -- pack A[mb : mb+NB, kb : kb+NB]
            for i = 0, NB do
              var src = A + (mb + i) * N + kb
              var dst = bufA + i * NB
              for j = 0, NB do dst[j] = src[j] end
            end
            if kb == 0 then
              l1_first(bufA, bufB, C + mb * N + nb, NB, NB, N)
            else
              l1_accum(bufA, bufB, C + mb * N + nb, NB, NB, N)
            end
          end
        end
        std.free(bufA)
        std.free(bufB)
      end
    end
    """, env=dict(elem=elem, NB=NB, l1_first=l1_first, l1_accum=l1_accum,
                  std=std)).mark_chunked()
    edges = terra("""
    terra gemm_edges(C : &elem, A : &elem, B : &elem, N : int64) : {}
      var N0 = (N / NB) * NB
      if N0 == N then return end
      -- k tail for the blocked interior
      for i = 0, N0 do
        for k = N0, N do
          var aik = A[i * N + k]
          for j = 0, N0 do
            C[i * N + j] = C[i * N + j] + aik * B[k * N + j]
          end
        end
      end
      -- bottom edge rows (full k)
      for i = N0, N do
        for j = 0, N do
          var sum = [zeroconst]
          for k = 0, N do sum = sum + A[i * N + k] * B[k * N + j] end
          C[i * N + j] = sum
        end
      end
      -- right edge columns above the bottom edge (full k)
      for i = 0, N0 do
        for j = N0, N do
          var sum = [zeroconst]
          for k = 0, N do sum = sum + A[i * N + k] * B[k * N + j] end
          C[i * N + j] = sum
        end
      end
    end
    """, env=dict(elem=elem, NB=NB, zeroconst=_zero(elem)))
    _start_compile(panels, fma, False)
    _start_compile(edges, fma, False)

    def gemm(C, A, B, N):
        N0 = (N // NB) * NB
        parallel_for(panels, 0, N0, C, A, B, N,
                     nthreads=default_nthreads(nthreads), grain=NB)
        if N0 != N:
            edges(C, A, B, N)

    gemm.panels = panels
    gemm.edges = edges
    gemm.NB = NB
    return gemm


def make_gemm_from_schedule(schedule, elem: T.Type = double,
                            use_prefetch: bool = True, fma: bool = True,
                            async_compile: bool = False):
    """Build a staged GEMM from a :class:`repro.schedule.Schedule`.

    The schedule *describes* the candidate; the kernel is still staged
    by the proven makers above, so a schedule and its (NB, RM, RN, V)
    tuple produce byte-identical C.  Directive mapping:

    ==========================  ===========================================
    ``Tile(("i","j"),(NB,NB))`` the square L1 cache block (required)
    ``Vectorize("j", V)``       vector width of the micro-kernel (required)
    ``Unroll("i", RM)``         register-block rows (default 1)
    ``Unroll("jj", RN)``        register-block *column vectors* (default 1;
                                ``jj`` is the vector-column axis inside a
                                j-tile — distinct from the lane axis ``j``)
    ``Pack("a"/"b","panel")``   ATLAS-style panel packing (both or neither)
    ``Parallel("i_o", NT)``     row-panel thread dispatch (implies packing;
                                ``i_o`` is the outer chunk loop the Tile
                                creates — the generic lowering's name for it)
    ==========================  ===========================================

    Anything else — or a directive violating the micro-kernel's
    divisibility constraints — raises :class:`ScheduleError` naming it.
    """
    from ..schedule import (Pack, Parallel, Schedule, ScheduleError, Tile,
                            Unroll, Vectorize)
    if not isinstance(schedule, Schedule):
        raise ScheduleError(
            f"make_gemm_from_schedule needs a Schedule, got {schedule!r}")
    tiles = schedule.of_kind(Tile)
    if len(tiles) != 1 or tiles[0].axes != ("i", "j"):
        raise ScheduleError(
            f"{schedule.key()}: GEMM schedules need exactly one "
            f"Tile(('i', 'j'), (NB, NB))")
    tile = tiles[0]
    if tile.sizes[0] != tile.sizes[1]:
        raise ScheduleError(f"{tile}: the L1 block must be square")
    NB = tile.sizes[0]
    vecs = schedule.of_kind(Vectorize)
    if len(vecs) != 1 or vecs[0].axis != "j" or vecs[0].width < 2:
        raise ScheduleError(
            f"{schedule.key()}: GEMM schedules need exactly one "
            f"Vectorize('j', V) with an explicit width")
    V = vecs[0].width
    RM = RN = 1
    for u in schedule.of_kind(Unroll):
        if u.axis == "i":
            RM = u.factor
        elif u.axis == "jj":
            RN = u.factor
        else:
            raise ScheduleError(
                f"{u}: GEMM register blocking unrolls 'i' (rows) or "
                f"'jj' (column vectors)")
    pack_ops = {p.operand for p in schedule.packs}
    if pack_ops and pack_ops != {"a", "b"}:
        raise ScheduleError(
            f"{schedule.packs[0]}: GEMM packs panels of both 'a' and "
            f"'b' or neither")
    for p in schedule.packs:
        if p.layout != "panel":
            raise ScheduleError(f"{p}: GEMM packing is per panel")
    par = schedule.parallel
    if par is not None and par.axis != "i_o":
        raise ScheduleError(
            f"{par}: GEMM parallelizes the row-panel axis 'i_o' (the "
            f"outer chunk loop of the Tile)")
    for d in schedule:
        if not isinstance(d, (Tile, Vectorize, Unroll, Pack, Parallel)):
            raise ScheduleError(
                f"{d}: no GEMM staging for this directive")
    if NB % RM:
        raise ScheduleError(
            f"Unroll('i', {RM}): register rows must divide the "
            f"{NB}-row L1 block")
    if NB % (RN * V):
        raise ScheduleError(
            f"Unroll('jj', {RN}): RN*V = {RN * V} must divide the "
            f"{NB}-column L1 block")
    if par is not None:
        return make_gemm_packed_parallel(NB, RM, RN, V, elem,
                                         use_prefetch, fma,
                                         nthreads=par.nthreads)
    maker = make_gemm_packed if pack_ops else make_gemm
    return maker(NB, RM, RN, V, elem, use_prefetch, fma, async_compile)


def blocked_matmul(NB: int, elem: T.Type = double):
    """The plain cache-blocked (but unvectorized, non-register-blocked)
    baseline — the "Blocked" series of paper Figure 6.  Block edges are
    clamped, so any N works (not just multiples of NB)."""
    return terra("""
    terra blocked(C : &elem, A : &elem, B : &elem, N : int64) : {}
      for i = 0, N*N do C[i] = [elem0] end
      for mb = 0, N, NB do
        var mlim = mb + NB
        if mlim > N then mlim = N end
        for kb = 0, N, NB do
          var klim = kb + NB
          if klim > N then klim = N end
          for nb = 0, N, NB do
            var nlim = nb + NB
            if nlim > N then nlim = N end
            for i = mb, mlim do
              for k = kb, klim do
                var aik = A[i*N + k]
                for j = nb, nlim do
                  C[i*N + j] = C[i*N + j] + aik * B[k*N + j]
                end
              end
            end
          end
        end
      end
    end
    """, env=dict(elem=elem, NB=NB, elem0=_zero(elem)))


def naive_matmul(elem: T.Type = double):
    """The naive triple loop — paper §6.1: "a naive DGEMM can run over 65
    times slower than the best-tuned algorithm"."""
    return terra("""
    terra naive(C : &elem, A : &elem, B : &elem, N : int64) : {}
      for i = 0, N do
        for j = 0, N do
          var sum = [elem0]
          for k = 0, N do
            sum = sum + A[i*N + k] * B[k*N + j]
          end
          C[i*N + j] = sum
        end
      end
    end
    """, env=dict(elem=elem, elem0=_zero(elem)))


def _zero(elem: T.Type):
    from .. import constant
    return constant(elem, 0.0)
