"""Tile-schedule ablation: every workload family, naive vs every
schedule point, on the C backend.

The three families are chosen so the *naive* staging is the natural
loop nest a programmer writes first — and one gcc cannot rescue at
``-O3 -march=native`` (scalar float reductions, strided int8 loads,
loop-carried stride-R accumulation) — while the schedule restages the
same arithmetic (bit-identically; see tests/schedule/test_workloads.py)
into blocked/unrolled/vectorized form.  The acceptance bar from ISSUE
10: the best schedule beats naive by >=1.5x on at least two of the
three families.  Numbers persist to ``BENCH_schedule.json``.
"""

import time

import numpy as np
import pytest

from repro.apps import attention, dequant, scan
from repro.bench.record import recording

from conftest import full_scale

TRIES = 5

ATT_N, ATT_D = (384, 64) if full_scale() else (192, 64)
DQ_N, DQ_M, DQ_K = (256, 512, 256) if full_scale() else (128, 384, 192)
SC_N, SC_R = (16384, 64) if full_scale() else (8192, 64)


def best_time(call):
    call()  # warm: JIT + page in
    ts = []
    for _ in range(TRIES):
        t0 = time.perf_counter()
        call()
        ts.append(time.perf_counter() - t0)
    return min(ts)


# -- family drivers ---------------------------------------------------------------
# Each returns (call, out) for one (schedule) variant: `call` runs the
# kernel once on fixed inputs, `out` is the output buffer it fills.

def attention_variant(schedule):
    rng = np.random.RandomState(1)
    q = rng.rand(ATT_N, ATT_D).astype(np.float32)
    k = rng.rand(ATT_N, ATT_D).astype(np.float32)
    v = rng.rand(ATT_N, ATT_D).astype(np.float32)
    o = np.zeros((ATT_N, ATT_D), dtype=np.float32)
    kern = attention.make_attention(D=ATT_D, schedule=schedule)
    return lambda: kern(ATT_N, q, k, v, o), o


def dequant_variant(schedule):
    rng = np.random.RandomState(2)
    a = rng.rand(DQ_N, DQ_K).astype(np.float32)
    b = rng.randint(-128, 128, size=(DQ_K, DQ_M)).astype(np.int8)
    c = np.zeros((DQ_N, DQ_M), dtype=np.float32)
    kern = dequant.make_dequant_gemm(schedule=schedule)

    def call():
        c[:] = 0.0  # scheduled variants accumulate into caller-zeroed C
        kern(DQ_N, DQ_M, DQ_K, a, b, 0.037, c)
    return call, c


def scan_variant(schedule):
    rng = np.random.RandomState(3)
    x = rng.rand(SC_N, SC_R).astype(np.float32)
    out = np.zeros((SC_N, SC_R), dtype=np.float32)
    kern = scan.make_scan(R=SC_R, schedule=schedule)
    return lambda: kern(SC_N, x, out), out


FAMILIES = {
    "attention": (attention_variant, attention.schedule_points),
    "dequant": (dequant_variant, dequant.schedule_points),
    "scan": (scan_variant, scan.schedule_points),
}

#: family -> {"naive_s", "best_s", "best_point", "speedup", points: {...}}
_RESULTS = {}


@pytest.mark.parametrize("fam", list(FAMILIES))
def test_family_ablation(fam):
    variant, points = FAMILIES[fam]
    call, naive_out = variant(None)
    naive_s = best_time(call)
    naive_ref = naive_out.copy()

    sweep = {}
    best_point, best_s = "naive", naive_s
    for point in points():
        call, out = variant(point)
        t = best_time(call)
        # every point computes the same thing (bit-identity is pinned in
        # tests/schedule; this guards the benchmark itself)
        assert np.array_equal(out, naive_ref), point.key()
        sweep[point.key()] = t
        if t < best_s:
            best_point, best_s = point.key(), t

    speedup = naive_s / best_s
    _RESULTS[fam] = dict(naive_s=naive_s, best_s=best_s,
                         best_point=best_point, speedup=speedup,
                         points=sweep)
    print(f"\nschedule {fam}: naive {naive_s*1e3:.2f}ms")
    for key, t in sorted(sweep.items(), key=lambda kv: kv[1]):
        print(f"  {naive_s/t:6.2f}x  {t*1e3:8.2f}ms  {key}")


def test_persist_and_acceptance():
    assert len(_RESULTS) == len(FAMILIES), "ablation tests did not run"
    with recording("schedule", att=(ATT_N, ATT_D),
                   dq=(DQ_N, DQ_M, DQ_K), sc=(SC_N, SC_R)) as run:
        for fam, r in _RESULTS.items():
            run.record(f"{fam}_naive_s", r["naive_s"])
            run.record(f"{fam}_best_s", r["best_s"])
            run.record(f"{fam}_best_point", r["best_point"])
            run.record(f"{fam}_speedup", round(r["speedup"], 3))
            for key, t in r["points"].items():
                run.record(f"{fam}::{key}", t)
    wins = [fam for fam, r in _RESULTS.items() if r["speedup"] >= 1.5]
    assert len(wins) >= 2, {f: r["speedup"] for f, r in _RESULTS.items()}
