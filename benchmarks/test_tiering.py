"""The tiered-execution acceptance numbers (persisted to BENCH_tier.json).

Three claims, measured on a reduction whose hot loop divides by a scalar
parameter — the shape profile-guided respecialization is built for
(splicing the observed divisor lets gcc turn the division into a
multiply-shift and drop the per-iteration trap check):

* a **warm** tiered call (guarded respecialized entry) is within 1.2x of
  the plain ahead-of-time C path;
* the **first** tiered call (tier-0 interpreter + profiling) is within
  2x of the pure-interpreter policy's first call — tiering does not
  meaningfully tax cold starts;
* the respecialized variant **beats the generic C entry** on the same
  arguments — specialization pays, it is not just "not slower".

Run with ``pytest benchmarks/test_tiering.py -p no:benchmark -q -s``.
"""

import time

import numpy as np
import pytest

from conftest import full_scale
from repro import terra
from repro.bench.harness import Table
from repro.bench.record import recording
from repro.buildd import cc_available
from repro.exec import TieredPolicy, policy_override
from repro.trace import profile

pytestmark = pytest.mark.skipif(not cc_available(), reason="no C compiler")

MODSUM = """
terra modsum(n : int64, d : int64, x : &int64) : int64
  var acc : int64 = 0
  for i = 0, n do
    acc = acc + x[i] % d
  end
  return acc
end
"""

#: the profiled-stable divisor the variant splices
D = 7
SMALL_N = 2_000                               # the cold-start measurement
BIG_N = 2_000_000 if full_scale() else 200_000


def best_of(fn, reps=7):
    fn()
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def _fresh():
    fn = terra(MODSUM)
    profile.clear_args(fn)
    return fn


def test_tiering_acceptance():
    small = np.arange(SMALL_N, dtype=np.int64)
    big = np.arange(BIG_N, dtype=np.int64)
    expected_small = int(np.sum(small % D))
    expected_big = int(np.sum(big % D))

    with recording("tier", small_n=SMALL_N, big_n=BIG_N, divisor=D) as run:
        # -- first-call cost: tiered tier-0 vs. the pure-interp policy --
        fn_interp = _fresh()
        with policy_override("interp"):
            t0 = time.perf_counter()
            assert fn_interp(SMALL_N, D, small) == expected_small
            first_interp = time.perf_counter() - t0

        fn = _fresh()
        policy = TieredPolicy(threshold=3, sync=True)
        with policy_override(policy):
            t0 = time.perf_counter()
            assert fn(SMALL_N, D, small) == expected_small
            first_tiered = time.perf_counter() - t0

            # -- cross the threshold: sync tier-up + respecialization --
            assert fn(BIG_N, D, big) == expected_big
            assert fn(BIG_N, D, big) == expected_big
            info = fn.dispatcher.tier_info()
            assert info["tier"] == 1
            assert info["respecialized"], \
                "stable divisor must produce a respecialized variant"
            st = fn.dispatcher.tier
            assert st.respec.consts == {1: D}   # d spliced, n varied

            # -- warm tiered call vs. the ahead-of-time C policy --
            warm_tiered = best_of(lambda: fn(BIG_N, D, big))
        fn_c = _fresh()
        with policy_override("c"):
            assert fn_c(BIG_N, D, big) == expected_big
            warm_aot = best_of(lambda: fn_c(BIG_N, D, big))

        # -- the respecialization payoff, handle vs. handle --
        generic_t = best_of(lambda: st.generic(BIG_N, D, big))
        specialized_t = best_of(lambda: st.respec.handle(BIG_N, D, big))
        assert st.respec.handle(BIG_N, D, big) == expected_big

        table = Table(f"tiered execution at n={BIG_N} (ms)",
                      ["series", "ms", "vs AOT C"])
        for label, secs in [("first call, pure interp", first_interp),
                            ("first call, tiered (tier 0)", first_tiered),
                            ("warm AOT C", warm_aot),
                            ("warm tiered (respecialized)", warm_tiered),
                            ("generic C entry", generic_t),
                            ("respecialized entry", specialized_t)]:
            table.add(label, secs * 1000, f"{secs / warm_aot:.2f}x")
        table.show()

        run.record("first_call_interp_ms", first_interp * 1000)
        run.record("first_call_tiered_ms", first_tiered * 1000)
        run.record("warm_aot_c_ms", warm_aot * 1000)
        run.record("warm_tiered_ms", warm_tiered * 1000)
        run.record("generic_entry_ms", generic_t * 1000)
        run.record("respecialized_entry_ms", specialized_t * 1000)
        run.record("respec_speedup", generic_t / specialized_t)
        run.record("deopts", fn.dispatcher.tier_info()["deopts"])

        # the acceptance gates (small absolute slack absorbs timer noise
        # on the sub-millisecond cold-start comparison)
        assert warm_tiered <= warm_aot * 1.2 + 0.001, \
            f"warm tiered {warm_tiered * 1e3:.3f}ms vs AOT C " \
            f"{warm_aot * 1e3:.3f}ms"
        assert first_tiered <= first_interp * 2.0 + 0.010, \
            f"first tiered call {first_tiered * 1e3:.1f}ms vs interp " \
            f"{first_interp * 1e3:.1f}ms"
        assert specialized_t < generic_t, \
            f"respecialized {specialized_t * 1e3:.3f}ms should beat " \
            f"generic {generic_t * 1e3:.3f}ms"
    print(f"\nresults written to {run.path()}")
