"""Observability must be free when off and cheap when on.

The contract (docs/OBSERVABILITY.md "Overhead"): with tracing and
profiling disabled — the default — an instrumented call site costs one
module-attribute check and a shared no-op span.  This file holds that to
numbers:

* the per-call FFI overhead of the disabled hook vs. calling the raw
  ``_invoke`` path directly stays in the noise;
* a compile (the heavily-instrumented path: specialize → typecheck →
  passes → emit → cache) with tracing disabled stays within a few
  percent of the same compile before the instrumentation existed —
  approximated here as disabled-vs-enabled distance, plus an absolute
  per-span cost bound.

Run with ``pytest benchmarks/test_trace_overhead.py -p no:benchmark -q
-s`` (plain timing).
"""

import time

import pytest

import repro
from repro import trace
from repro.buildd import cc_available
from repro.trace import profile

pytestmark = pytest.mark.skipif(not cc_available(), reason="no C compiler")


@pytest.fixture(autouse=True)
def observability_off():
    trace.disable()
    trace.clear()
    profile.disable()
    profile.clear()
    yield
    trace.disable()
    trace.clear()
    profile.disable()
    profile.clear()


@pytest.fixture(scope="module")
def compiled_add():
    fn = repro.terra('''
    terra bench_add(a : int, b : int) : int
      return a + b
    end
    ''')
    handle = fn.compile()
    assert handle(1, 2) == 3
    return handle


def _best_of(thunk, repeats=7, loops=20_000):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(loops):
            thunk()
        best = min(best, (time.perf_counter() - t0) / loops)
    return best


def test_disabled_call_hook_is_in_the_noise(compiled_add):
    """handle(...) with observability off vs. the raw _invoke path."""
    args = (3, 4)
    via_hook = _best_of(lambda: compiled_add(*args))
    raw = _best_of(lambda: compiled_add._invoke(args))
    overhead = via_hook - raw
    print(f"\nper-call: hooked {via_hook * 1e9:.0f} ns, "
          f"raw {raw * 1e9:.0f} ns, overhead {overhead * 1e9:.0f} ns")
    # one attribute check + one tuple splat; generous bound because CI
    # machines are noisy — the signal is "nanoseconds, not microseconds"
    assert overhead < max(2e-6, 0.75 * raw)


def test_enabled_span_cost_is_bounded():
    """When tracing IS on, a span costs ~microseconds (object + two
    clock reads + two locked appends), so even pass-heavy compiles see
    negligible span overhead relative to the work they measure."""
    trace.enable()
    n = 5_000
    t0 = time.perf_counter()
    for _ in range(n):
        with trace.span("bench", cat="bench"):
            pass
    per_span = (time.perf_counter() - t0) / n
    print(f"\nper-span (enabled): {per_span * 1e6:.2f} us")
    assert per_span < 100e-6
    assert len(trace.events()) == n


def test_disabled_compile_throughput_unchanged():
    """Staging+compiling a batch of distinct functions with tracing
    disabled must stay within a few percent of the enabled run minus its
    spans — i.e. the disabled path does no hidden work.

    We compare disabled vs. enabled wall-clock on identical fresh
    programs (unique constants defeat both the handle cache and the
    artifact cache's source dedup at the staging level; the gcc run
    itself is cache-warmed first so we measure the instrumented Python
    layers, not the compiler)."""

    def stage_and_check(tag, traced):
        fn = repro.terra(f'''
        terra tovh{tag}() : int
          return {tag}
        end
        ''')
        assert fn() == tag
        return fn

    # warm: makes gcc artifacts for both batches identical-cost (cached
    # emission differs per tag, so each compile still runs end to end)
    base = 910_000
    for i in range(3):
        stage_and_check(base + i, traced=False)

    n = 12
    t0 = time.perf_counter()
    for i in range(n):
        stage_and_check(base + 100 + i, traced=False)
    disabled = time.perf_counter() - t0

    trace.enable()
    t0 = time.perf_counter()
    for i in range(n):
        stage_and_check(base + 200 + i, traced=True)
    enabled = time.perf_counter() - t0
    trace.disable()

    print(f"\ncompile batch: disabled {disabled:.3f}s, "
          f"enabled {enabled:.3f}s "
          f"({len(trace.events())} spans recorded)")
    # the real assertion: disabled is not mysteriously slower than the
    # run that pays for span collection (2% contract, wide margin for
    # CI noise since each batch shells out to gcc n times)
    assert disabled < enabled * 1.5
