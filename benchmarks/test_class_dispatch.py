"""§6.3.1 — virtual-dispatch overhead of the javalike class system.

    "We measured the overhead of function invocation in our implementation
    using a micro-benchmark, and found it performed within 1% of analogous
    C++ code."

The baseline dispatches through an explicit C vtable (what C++ virtual
dispatch compiles to).  ``test_shape_within_tolerance`` asserts the Terra
class system's virtual call is within 25% of the C baseline (noise-proof
bound; the measured ratio is recorded in EXPERIMENTS.md).
"""

import time

import pytest

from repro.apps.dispatch import build_c_dispatch, build_terra_dispatch

ITERS = 2_000_000


@pytest.fixture(scope="module")
def terra_kernels():
    return build_terra_dispatch()


@pytest.fixture(scope="module")
def c_kernels():
    return build_c_dispatch()


def test_terra_virtual(benchmark, terra_kernels):
    obj = terra_kernels.make(1.0001, 0.5)
    terra_kernels.loop_virtual(obj, 1000)
    benchmark(lambda: terra_kernels.loop_virtual(obj, ITERS))
    terra_kernels.free(obj)


def test_c_virtual(benchmark, c_kernels):
    obj = c_kernels.c_make(1.0001, 0.5)
    c_kernels.c_loop_virtual(obj, 1000)
    benchmark(lambda: c_kernels.c_loop_virtual(obj, ITERS))
    c_kernels.c_release(obj)


def test_terra_direct(benchmark, terra_kernels):
    obj = terra_kernels.make(1.0001, 0.5)
    benchmark(lambda: terra_kernels.loop_direct(obj, ITERS))
    terra_kernels.free(obj)


def test_c_direct(benchmark, c_kernels):
    obj = c_kernels.c_make(1.0001, 0.5)
    benchmark(lambda: c_kernels.c_loop_direct(obj, ITERS))
    c_kernels.c_release(obj)


def test_results_identical(terra_kernels, c_kernels):
    obj = terra_kernels.make(1.0001, 0.5)
    cobj = c_kernels.c_make(1.0001, 0.5)
    r_terra = terra_kernels.loop_virtual(obj, 100000)
    r_c = c_kernels.c_loop_virtual(cobj, 100000)
    assert abs(r_terra - r_c) < 1e-3
    terra_kernels.free(obj)
    c_kernels.c_release(cobj)


def test_shape_within_tolerance(terra_kernels, c_kernels):
    obj = terra_kernels.make(1.0001, 0.5)
    cobj = c_kernels.c_make(1.0001, 0.5)

    def best(fn, o):
        fn(o, 1000)
        return min(_timed(fn, o) for _ in range(5))

    def _timed(fn, o):
        t0 = time.perf_counter()
        fn(o, ITERS)
        return time.perf_counter() - t0

    t_terra = best(terra_kernels.loop_virtual, obj)
    t_c = best(c_kernels.c_loop_virtual, cobj)
    assert t_terra / t_c < 1.25, (t_terra, t_c)
    terra_kernels.free(obj)
    c_kernels.c_release(cobj)


def test_fatptr_virtual(benchmark):
    """§6.3.1's fat-pointer alternative: same indirect call, wider handle,
    no per-object vtable field."""
    from repro.apps.dispatch import build_fatptr_dispatch
    kernels = build_fatptr_dispatch()
    obj = kernels.make(1.0001, 0.5)
    kernels.loop_virtual(obj, 1000)
    benchmark(lambda: kernels.loop_virtual(obj, ITERS))
    kernels.free(obj)


def test_fatptr_matches_embedded_vtable(terra_kernels):
    from repro.apps.dispatch import build_fatptr_dispatch
    fat = build_fatptr_dispatch()
    fobj = fat.make(1.0001, 0.5)
    tobj = terra_kernels.make(1.0001, 0.5)
    assert abs(fat.loop_virtual(fobj, 100000)
               - terra_kernels.loop_virtual(tobj, 100000)) < 1e-3
    fat.free(fobj)
    terra_kernels.free(tobj)
