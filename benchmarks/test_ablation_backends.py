"""Ablation: native compilation vs the reference interpreter.

Quantifies what the paper's whole design exists to provide — staged
*native* code.  The same typed IR runs through the gcc backend and the
checked interpreter; the gap (typically 3–4 orders of magnitude) is the
cost of high-level-language execution that Terra programs escape.
"""

import numpy as np
import pytest

from repro import get_backend, terra

N = 64  # kept small: the interpreter is the slow path by design


@pytest.fixture(scope="module")
def dot_fn():
    return terra("""
    terra dot(a : &double, b : &double, n : int) : double
      var s = 0.0
      for i = 0, n do
        s = s + a[i] * b[i]
      end
      return s
    end
    """)


@pytest.fixture(scope="module")
def data():
    rng = np.random.RandomState(0)
    return (np.ascontiguousarray(rng.rand(N)),
            np.ascontiguousarray(rng.rand(N)))


def test_dot_compiled(benchmark, dot_fn, data):
    a, b = data
    h = dot_fn.compile(get_backend("c"))
    result = benchmark(lambda: h(a, b, N))
    assert abs(h(a, b, N) - float(a @ b)) < 1e-9


def test_dot_interpreted(benchmark, dot_fn, data):
    a, b = data
    h = dot_fn.compile(get_backend("interp"))
    benchmark(lambda: h(a, b, N))
    assert abs(h(a, b, N) - float(a @ b)) < 1e-9


def test_backends_agree_here(dot_fn, data):
    a, b = data
    hc = dot_fn.compile(get_backend("c"))
    hi = dot_fn.compile(get_backend("interp"))
    assert hc(a, b, N) == hi(a, b, N)
