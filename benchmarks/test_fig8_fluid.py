"""Figure 8 (top) — fluid simulation speedups from Orion schedules.

Paper rows (1024x1024 float pixels):
    Reference C      1x
    Matching Orion   1x
    + Vectorization  1.9x
    + Line buffering 2.3x

Each benchmark times one solver step.  Two modes:

* default compiler flags — modern gcc auto-vectorizes the scalar code, so
  the explicit-vectorization delta shrinks (recorded in EXPERIMENTS.md);
* the ``emulate2013`` variants compile scalar code with
  ``-fno-tree-vectorize`` (the 2013 baseline behaviour), where the paper's
  monotone shape (matching ≈ 1x < +vec < +linebuffer) reappears.
"""

import numpy as np
import pytest

from repro.apps.fluid import (FluidParams, initial_conditions, make_c_fluid,
                              make_orion_fluid)
from repro.backend.c.runtime import extra_cflags

from conftest import full_scale

N = 1024 if full_scale() else 256
PARAMS = FluidParams(N)
NOVEC = ("-fno-tree-vectorize",)


@pytest.fixture(scope="module")
def init_state():
    return initial_conditions(N)


def _bench(benchmark, sim, init_state):
    sim.set_state(*init_state)
    sim.step()  # warm-up / JIT
    benchmark(sim.step)


def test_reference_c(benchmark, init_state):
    _bench(benchmark, make_c_fluid(PARAMS), init_state)


def test_orion_matching(benchmark, init_state):
    _bench(benchmark, make_orion_fluid(PARAMS), init_state)


def test_orion_vectorized(benchmark, init_state):
    _bench(benchmark, make_orion_fluid(PARAMS, vectorize=4), init_state)


def test_orion_vectorized_linebuffered(benchmark, init_state):
    _bench(benchmark, make_orion_fluid(PARAMS, vectorize=4, linebuffer=True),
           init_state)


def test_emulate2013_reference_c(benchmark, init_state):
    _bench(benchmark, make_c_fluid(PARAMS, flags=NOVEC), init_state)


def test_emulate2013_orion_matching(benchmark, init_state):
    with extra_cflags(*NOVEC):
        sim = make_orion_fluid(PARAMS)
        sim.set_state(*init_state)
        sim.step()
    benchmark(sim.step)


def test_emulate2013_orion_vectorized(benchmark, init_state):
    with extra_cflags(*NOVEC):
        sim = make_orion_fluid(PARAMS, vectorize=4)
        sim.set_state(*init_state)
        sim.step()
    benchmark(sim.step)


def test_emulate2013_orion_vec_linebuffered(benchmark, init_state):
    with extra_cflags(*NOVEC):
        sim = make_orion_fluid(PARAMS, vectorize=4, linebuffer=True)
        sim.set_state(*init_state)
        sim.step()
    benchmark(sim.step)


def test_correctness_all_schedules(init_state):
    """All schedules compute the same simulation as the C reference."""
    small = FluidParams(64)
    u, v, d = initial_conditions(64)
    ref = make_c_fluid(small)
    ref.set_state(u, v, d)
    for _ in range(2):
        ref.step()
    ru, rv, rd = ref.get_state()
    for vec, lb in [(0, False), (4, False), (4, True)]:
        sim = make_orion_fluid(small, vectorize=vec, linebuffer=lb)
        sim.set_state(u, v, d)
        for _ in range(2):
            sim.step()
        ou, ov, od = sim.get_state()
        assert np.allclose(ou, ru, atol=1e-4)
        assert np.allclose(od, rd, atol=1e-4)
        # the parallel twin of every schedule must be BIT-identical to
        # its serial version — chunking may never change results
        par = make_orion_fluid(small, vectorize=vec, linebuffer=lb,
                               parallel=3)
        par.set_state(u, v, d)
        for _ in range(2):
            par.step()
        pu, pv, pd = par.get_state()
        assert pu.tobytes() == ou.tobytes()
        assert pv.tobytes() == ov.tobytes()
        assert pd.tobytes() == od.tobytes()
