"""Figure 6 — matrix-multiply performance as a function of matrix size.

Paper series: naive, blocked, Terra (auto-tuned), ATLAS/MKL, peak.
Here: naive, blocked, Terra (tuned parameters), and the vendor-class BLAS
bundled with NumPy (the ATLAS/MKL stand-in; see DESIGN.md substitutions).

Expected shape (paper §6.1):
* naive is dramatically slower than everything ("over 65 times slower
  than the best-tuned algorithm" at large sizes),
* blocking helps but stays far from peak ("less than 7% of theoretical
  peak"),
* the staged Terra kernel approaches the vendor library ("within 20% of
  ATLAS", "over 60% of peak").

Figure 6(b)'s SGEMM story includes the unvectorized-kernel series (the
analog of ATLAS's SSE/AVX-transition performance bug: a tuned kernel that
fails to use the wide vector units).
"""

import numpy as np
import pytest

from repro import double, float_
from repro.autotune.matmul import (blocked_matmul, make_gemm,
                                   make_gemm_packed, naive_matmul)

from conftest import full_scale

# tuned parameters (found by repro.autotune.tuner on this machine class;
# benchmarks use fixed parameters so runs are comparable)
TUNED = dict(NB=128, RM=4, RN=2, V=4)
TUNED_SGEMM = dict(NB=64, RM=4, RN=2, V=8)

SIZES = [256, 512, 1024] if full_scale() else [256, 512]


def _matrices(N, dtype, rng=None):
    rng = rng or np.random.RandomState(0)
    A = np.ascontiguousarray(rng.rand(N, N).astype(dtype))
    B = np.ascontiguousarray(rng.rand(N, N).astype(dtype))
    C = np.zeros((N, N), dtype=dtype)
    return A, B, C


def _flops(N):
    return 2.0 * N ** 3


@pytest.mark.parametrize("N", SIZES)
def test_dgemm_terra_tuned(benchmark, N):
    gemm = make_gemm_packed(elem=double, **TUNED)
    A, B, C = _matrices(N, np.float64)
    gemm(C, A, B, N)
    assert np.allclose(C, A @ B)
    result = benchmark(lambda: gemm(C, A, B, N))
    benchmark.extra_info["gflops"] = _flops(N) / benchmark.stats["mean"] / 1e9


@pytest.mark.parametrize("N", SIZES)
def test_dgemm_vendor_blas(benchmark, N):
    A, B, C = _matrices(N, np.float64)
    benchmark(lambda: np.dot(A, B, out=C))
    benchmark.extra_info["gflops"] = _flops(N) / benchmark.stats["mean"] / 1e9


@pytest.mark.parametrize("N", SIZES)
def test_dgemm_blocked(benchmark, N):
    blocked = blocked_matmul(64)
    A, B, C = _matrices(N, np.float64)
    blocked(C, A, B, N)
    assert np.allclose(C, A @ B)
    benchmark(lambda: blocked(C, A, B, N))
    benchmark.extra_info["gflops"] = _flops(N) / benchmark.stats["mean"] / 1e9


@pytest.mark.parametrize("N", [256])
def test_dgemm_naive(benchmark, N):
    naive = naive_matmul()
    A, B, C = _matrices(N, np.float64)
    naive(C, A, B, N)
    assert np.allclose(C, A @ B)
    benchmark(lambda: naive(C, A, B, N))
    benchmark.extra_info["gflops"] = _flops(N) / benchmark.stats["mean"] / 1e9


@pytest.mark.parametrize("N", SIZES)
def test_sgemm_terra_tuned(benchmark, N):
    gemm = make_gemm_packed(elem=float_, **TUNED_SGEMM)
    A, B, C = _matrices(N, np.float32)
    gemm(C, A, B, N)
    assert np.allclose(C, A @ B, atol=1e-2 * N)
    benchmark(lambda: gemm(C, A, B, N))
    benchmark.extra_info["gflops"] = _flops(N) / benchmark.stats["mean"] / 1e9


@pytest.mark.parametrize("N", SIZES)
def test_sgemm_unvectorized_kernel(benchmark, N):
    """The ATLAS-SSE/AVX-penalty analog: same tuned structure but scalar
    'vectors' (V=1), leaving the wide units unused — Figure 6(b)'s
    'ATLAS (orig.)' series runs ~5x below the vectorized kernel."""
    gemm = make_gemm(NB=32, RM=4, RN=2, V=1, elem=float_)
    A, B, C = _matrices(N, np.float32)
    gemm(C, A, B, N)
    assert np.allclose(C, A @ B, atol=1e-2 * N)
    benchmark(lambda: gemm(C, A, B, N))
    benchmark.extra_info["gflops"] = _flops(N) / benchmark.stats["mean"] / 1e9


@pytest.mark.parametrize("N", SIZES)
def test_sgemm_vendor_blas(benchmark, N):
    A, B, C = _matrices(N, np.float32)
    benchmark(lambda: np.dot(A, B, out=C))
    benchmark.extra_info["gflops"] = _flops(N) / benchmark.stats["mean"] / 1e9


def test_e8_shape_naive_vs_tuned():
    """§6.1's '65x slower' claim: the tuned kernel beats the naive loop by
    a large factor (we assert >10x; measured factor recorded in
    EXPERIMENTS.md)."""
    import time
    N = 256
    gemm = make_gemm_packed(elem=double, **TUNED)
    naive = naive_matmul()
    A, B, C = _matrices(N, np.float64)

    def once(fn):
        fn(C, A, B, N)
        t0 = time.perf_counter()
        fn(C, A, B, N)
        return time.perf_counter() - t0

    t_tuned = min(once(gemm) for _ in range(3))
    t_naive = min(once(naive) for _ in range(2))
    assert t_naive / t_tuned > 10.0, (t_naive, t_tuned)
