"""§6.2's point-wise pipeline inlining claim.

    "we can choose to inline the four functions, reducing the accesses to
    main memory by a factor of 4 and resulting in a 3.8x speedup."

Benchmarks the same four-kernel pipeline with every intermediate
materialized (a library of separately-applied functions) vs fully inlined
(one fused pass), plus the line-buffered middle ground.
"""

import numpy as np
import pytest

from repro.apps.pointwise import build_pipeline, reference_numpy
from repro.orion import lang as L

from conftest import full_scale

N = 2048 if full_scale() else 1024


@pytest.fixture(scope="module")
def image():
    return np.random.RandomState(9).rand(N, N).astype(np.float32)


def _bench(benchmark, pipe, image):
    src = pipe.pad(image)
    out = pipe.alloc_out()
    pipe.fn(out, src)
    benchmark(lambda: pipe.fn(out, src))


def test_materialized(benchmark, image):
    _bench(benchmark, build_pipeline(N, policy=L.MATERIALIZE), image)


def test_inlined(benchmark, image):
    _bench(benchmark, build_pipeline(N, policy=L.INLINE), image)


def test_linebuffered(benchmark, image):
    _bench(benchmark, build_pipeline(N, policy=L.LINEBUFFER), image)


def test_inlined_vectorized(benchmark, image):
    _bench(benchmark, build_pipeline(N, policy=L.INLINE, vectorize=8), image)


def test_correctness(image):
    ref = reference_numpy(image)
    for policy in (L.MATERIALIZE, L.INLINE, L.LINEBUFFER):
        pipe = build_pipeline(N, policy=policy)
        assert np.allclose(pipe.run(image), ref, atol=1e-6), policy


def test_shape_inline_beats_materialize(image):
    """The headline: inlining the pipeline must beat materializing every
    stage (paper: 3.8x; we assert a >1.3x win and record the factor)."""
    import time
    mat = build_pipeline(N, policy=L.MATERIALIZE)
    inl = build_pipeline(N, policy=L.INLINE)

    def best(pipe, tries=5):
        src = pipe.pad(image)
        out = pipe.alloc_out()
        pipe.fn(out, src)
        ts = []
        for _ in range(tries):
            t0 = time.perf_counter()
            pipe.fn(out, src)
            ts.append(time.perf_counter() - t0)
        return min(ts)

    t_mat = best(mat)
    t_inl = best(inl)
    assert t_mat / t_inl > 1.3, (t_mat, t_inl)
