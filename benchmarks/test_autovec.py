"""The auto-vectorizer's headline: level-3 C vs scalar level-1 C.

The kernel is the shape gcc's own auto-vectorizer gives up on: four
input and four output pointers (the pairwise runtime alias checks
exceed its versioning budget, so the scalar unit stays scalar at
``-O3 -march=native``), while ``passes/vectorize.py`` proves
disjointness with one guard chain and emits explicit 64-byte vector
IR.  Repetitions run *inside* the kernel so the FFI call cost doesn't
drown the loop.  Every variant must stay bit-identical to the scalar
build, beat it by >=1.3x at float32, and the numbers are persisted to
``BENCH_autovec.json`` via ``repro.bench.record`` for CI artifact
diffing.
"""

import time

import numpy as np
import pytest

from repro import terra
from repro.bench.record import recording
from repro.passes import PIPELINE_CANON, PIPELINE_VEC, pipeline_override

from conftest import full_scale

N = 4096 if full_scale() else 2048
REPS = 400 if full_scale() else 200
TRIES = 7

SRC = """
terra k(a : &{e}, b : &{e}, c : &{e}, d : &{e},
        o1 : &{e}, o2 : &{e}, o3 : &{e}, o4 : &{e},
        n : int, reps : int) : {{}}
  for r = 0, reps do
    a[0] = [{e}](r)
    for i = 0, n do
      o1[i] = a[i] * b[i] + c[i] * d[i] + a[i] * c[i] + b[i] * d[i]
      o2[i] = (a[i] + b[i]) * (c[i] + d[i]) - a[i] * d[i]
      o3[i] = a[i] * a[i] + b[i] * b[i] + c[i] * c[i] + d[i] * d[i]
      o4[i] = (a[i] - b[i]) * (c[i] - d[i]) + b[i] * c[i]
    end
  end
end
"""


def compiled(elem, level):
    # a fresh terra() per level: the pipeline caches per-level snapshots
    # on the TypedFunction, and we want two independent C units
    with pipeline_override(level):
        return terra(SRC.format(e=elem), env={}).compile("c")


def arrays(elem, rng):
    dt = np.float32 if elem == "float" else np.float64
    ins = [rng.rand(N).astype(dt) for _ in range(4)]
    outs = [np.zeros(N, dt) for _ in range(4)]
    return ins, outs


def best_time(fn, ins, outs):
    fn(*ins, *outs, N, 1)  # warm: bind + first call
    ts = []
    for _ in range(TRIES):
        t0 = time.perf_counter()
        fn(*ins, *outs, N, REPS)
        ts.append(time.perf_counter() - t0)
    return min(ts)


#: accumulated across the parametrized runs, written once at the end so
#: float and double land in the same BENCH_autovec.json
_RESULTS = {}


@pytest.mark.parametrize("elem", ["float", "double"])
def test_autovec_correct_and_fast(elem, rng):
    scalar = compiled(elem, PIPELINE_CANON)
    vector = compiled(elem, PIPELINE_VEC)
    ins, outs_s = arrays(elem, rng)
    _, outs_v = arrays(elem, rng)

    scalar(*ins, *outs_s, N, 1)
    vector(*ins, *outs_v, N, 1)
    for o_s, o_v in zip(outs_s, outs_v):
        assert np.array_equal(o_s, o_v), "vectorized output diverged"

    t_s = best_time(scalar, ins, outs_s)
    t_v = best_time(vector, ins, outs_v)
    speedup = t_s / t_v
    _RESULTS[elem] = (t_s, t_v, speedup)

    print(f"\nautovec {elem}: scalar {t_s*1e3:.2f}ms  "
          f"vector {t_v*1e3:.2f}ms  speedup {speedup:.2f}x")

    # the acceptance bar is >=1.3x at float32 (16 lanes); double (8
    # lanes) is recorded with a softer floor
    floor = 1.3 if elem == "float" else 1.1
    assert speedup > floor, (t_s, t_v, speedup)


def test_persist_bench_json():
    assert _RESULTS, "timing tests did not run"
    with recording("autovec", n=N, reps=REPS) as run:
        for elem, (t_s, t_v, speedup) in _RESULTS.items():
            run.record(f"{elem}_scalar_s", t_s)
            run.record(f"{elem}_vector_s", t_v)
            run.record(f"{elem}_speedup", speedup)
