"""Compile-throughput: serial vs. parallel candidate compilation.

The §6.1 auto-tuner's wall-clock is dominated by JIT-compiling candidate
kernels; ``repro.buildd`` turns that into pooled, cached builds.  This
file measures the three claims directly:

* a jobs=N pool compiles a candidate set faster than a jobs=1 pool
  (speedup scales with cores; on a single-core host it is ~parity),
* a warm cache skips every compiler invocation (hit rate 1.0),
* the tuner's candidate sweep goes through the pool (stats counters).

Run with ``pytest benchmarks/test_compile_throughput.py -p no:benchmark
-q -s`` (plain timing, no pytest-benchmark dependency on the hot path).
"""

import os
import time

import pytest

from repro.buildd import cc_available
from repro.buildd.cache import ArtifactCache
from repro.buildd.service import CompileService

pytestmark = pytest.mark.skipif(not cc_available(), reason="no C compiler")

#: a small cross-section of the tuner's search space (NB, RM, RN, V)
CANDIDATES = [(16, 2, 1, 2), (16, 2, 2, 2), (16, 4, 1, 2),
              (32, 2, 2, 2), (32, 4, 1, 2), (32, 4, 2, 2)]


@pytest.fixture(scope="module")
def kernel_sources():
    """The generated C for each candidate's L1 kernel (staged once)."""
    from repro.autotune.genkernel import genkernel
    sources = []
    for NB, RM, RN, V in CANDIDATES:
        kern = genkernel(NB, RM, RN, V, 0.0)
        sources.append(kern.get_c_source())
    assert len(set(sources)) == len(sources)
    return sources


def _compile_all(svc, sources):
    t0 = time.perf_counter()
    futs = [svc.compile_async(src) for src in sources]
    for fut in futs:
        fut.result()
    return time.perf_counter() - t0


def test_parallel_vs_serial_compile(tmp_path, kernel_sources):
    """Cold-cache compile of the candidate set through jobs=1 vs jobs=N
    pools; prints the wall-clocks and asserts parallel is no slower
    (and strictly faster on multi-core hosts)."""
    jobs = min(4, max(1, os.cpu_count() or 1))
    serial = CompileService(
        jobs=1, cache=ArtifactCache(root=str(tmp_path / "serial")))
    parallel = CompileService(
        jobs=jobs, cache=ArtifactCache(root=str(tmp_path / "parallel")))
    try:
        t_serial = _compile_all(serial, kernel_sources)
        t_parallel = _compile_all(parallel, kernel_sources)
        n = len(kernel_sources)
        print(f"\ncompile throughput ({n} candidate kernels, cold cache):")
        print(f"  jobs=1    {t_serial:8.3f} s"
              f"   ({serial.stats.snapshot()['compile_seconds']:.3f} s in cc)")
        print(f"  jobs={jobs}    {t_parallel:8.3f} s"
              f"   ({parallel.stats.snapshot()['compile_seconds']:.3f} s in cc)")
        if t_parallel > 0:
            print(f"  speedup   {t_serial / t_parallel:8.2f}x")
        assert serial.stats.snapshot()["compiles"] == n
        assert parallel.stats.snapshot()["compiles"] == n
        if jobs > 1:
            # generous slack: scheduling noise must not fail CI, but the
            # pool must not be slower than the serial path
            assert t_parallel < t_serial * 1.10, \
                f"parallel ({t_parallel:.3f}s) slower than serial " \
                f"({t_serial:.3f}s) with jobs={jobs}"
    finally:
        serial.shutdown()
        parallel.shutdown()


def test_warm_cache_skips_all_compiles(tmp_path, kernel_sources):
    """A second identical sweep must be served entirely from the cache."""
    svc = CompileService(jobs=2,
                         cache=ArtifactCache(root=str(tmp_path / "warm")))
    try:
        t_cold = _compile_all(svc, kernel_sources)
        cold = svc.stats.snapshot()
        t_warm = _compile_all(svc, kernel_sources)
        warm = svc.stats.snapshot()
        print(f"\ncold sweep {t_cold:.3f} s, warm sweep {t_warm:.3f} s")
        assert cold["compiles"] == len(kernel_sources)
        assert warm["compiles"] == cold["compiles"]  # zero new cc runs
        assert warm["cache_hits"] - cold["cache_hits"] == len(kernel_sources)
        assert t_warm < t_cold / 10
    finally:
        svc.shutdown()


def test_tuner_compiles_through_pool(tmp_path):
    """End-to-end: ``tune()`` routes candidate kernels through the service
    and a warm rerun of the same sweep recompiles nothing."""
    import repro.buildd.service as service_mod
    from repro.autotune.tuner import Candidate, tune

    saved = service_mod._service
    svc = service_mod._service = CompileService(
        jobs=min(4, max(1, os.cpu_count() or 1)),
        cache=ArtifactCache(root=str(tmp_path / "tuner")))
    try:
        cands = [Candidate(16, 2, 1, 2), Candidate(16, 2, 2, 2),
                 Candidate(16, 4, 1, 2)]
        t0 = time.perf_counter()
        tune(test_size=48, candidate_list=cands, repeats=1)
        t_cold = time.perf_counter() - t0
        cold = svc.stats.snapshot()
        t0 = time.perf_counter()
        tune(test_size=48, candidate_list=cands, repeats=1)
        t_warm = time.perf_counter() - t0
        warm = svc.stats.snapshot()
        print(f"\ntuner sweep: cold {t_cold:.3f} s "
              f"({cold['compiles']} compiles), warm {t_warm:.3f} s "
              f"({warm['compiles'] - cold['compiles']} compiles)")
        assert cold["compiles"] >= len(cands)
        assert warm["compiles"] == cold["compiles"]
        assert warm["hit_rate"] > 0
    finally:
        service_mod._service = saved
        svc.shutdown()
