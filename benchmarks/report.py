"""Regenerate every table/figure of the paper's evaluation in one run.

    python benchmarks/report.py            # scaled-down sizes (~2 min)
    python benchmarks/report.py --full     # paper-scale sizes

Prints the same series the paper reports (Figure 6 GFLOPS, Figure 8
schedule speedups in both compiler modes, the §6.2 inlining table, the
§6.3.1 dispatch ratio, Figure 9 GB/s) — the data behind EXPERIMENTS.md.
"""

import argparse
import sys
import time

import numpy as np

sys.path.insert(0, ".")  # allow `python benchmarks/report.py` from repo root

from repro import double, float_
from repro.apps.areafilter import CAreaFilter, build_area_filter
from repro.apps.dispatch import build_c_dispatch, build_terra_dispatch
from repro.apps.fluid import (FluidParams, initial_conditions, make_c_fluid,
                              make_orion_fluid)
from repro.apps.mesh import build_mesh_kernels, random_mesh
from repro.apps.pointwise import build_pipeline
from repro.autotune.matmul import (blocked_matmul, make_gemm_packed,
                                   naive_matmul)
from repro.autotune.tuner import time_gemm
from repro.backend.c.runtime import extra_cflags
from repro.bench.harness import Table
from repro.orion import lang as L

NOVEC = ("-fno-tree-vectorize",)


def best_of(fn, reps):
    fn()
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def fig6(full: bool) -> None:
    N = 1024 if full else 512
    dtype_rows = []
    for elem, np_dtype, label, cfg in [
            (double, np.float64, "DGEMM", dict(NB=128, RM=4, RN=2, V=4)),
            (float_, np.float32, "SGEMM", dict(NB=64, RM=4, RN=2, V=8))]:
        rng = np.random.RandomState(0)
        A = np.ascontiguousarray(rng.rand(N, N).astype(np_dtype))
        B = np.ascontiguousarray(rng.rand(N, N).astype(np_dtype))
        C = np.zeros((N, N), dtype=np_dtype)
        flops = 2.0 * N ** 3
        tuned = time_gemm(make_gemm_packed(elem=elem, **cfg), N, elem, 3)
        vendor = flops / best_of(lambda: np.dot(A, B, out=C), 3) / 1e9
        rows = [("Terra (tuned)", tuned), ("vendor BLAS (numpy)", vendor)]
        if elem is double:
            rows.insert(0, ("blocked", time_gemm(blocked_matmul(64), N,
                                                 elem, 1)))
            naive_n = min(N, 512)  # same footprint class as the others
            rows.insert(0, ("naive", time_gemm(naive_matmul(), naive_n,
                                               elem, 1)))
        else:
            rows.insert(0, ("unvectorized kernel (V=1)",
                            time_gemm(make_gemm_packed(NB=64, RM=4, RN=2,
                                                       V=1, elem=elem),
                                      N, elem, 1)))
        dtype_rows.append((label, rows))
    for label, rows in dtype_rows:
        table = Table(f"Figure 6 — {label} at N={N} (GFLOPS)",
                      ["series", "GFLOPS"])
        for name, g in rows:
            table.add(name, g)
        table.show()


def fig8_fluid(full: bool) -> None:
    N = 1024 if full else 512
    params = FluidParams(N)
    u, v, d = initial_conditions(N)

    def step_time(sim):
        sim.set_state(u, v, d)
        return best_of(sim.step, 3) * 1000

    for mode, flags in [("default flags", ()), ("2013 emulation", NOVEC)]:
        tc = step_time(make_c_fluid(params, flags=flags))
        table = Table(f"Figure 8 (top) — fluid at {N}², {mode}",
                      ["schedule", "ms/step", "speedup"])
        table.add("reference C", tc, "1.00x")
        for vec, lb, label in [(0, False, "matching Orion"),
                               (4, False, "+ vectorization"),
                               (4, True, "+ line buffering")]:
            with extra_cflags(*flags):
                sim = make_orion_fluid(params, vectorize=vec, linebuffer=lb)
                t = step_time(sim)
            table.add(label, t, f"{tc / t:.2f}x")
        table.show()


def fig8_area(full: bool) -> None:
    N = 1024 if full else 512
    img = np.random.RandomState(5).rand(N, N).astype(np.float32)

    def orion_time(af):
        src = af.pad(img)
        out = af.alloc_out()
        return best_of(lambda: af.fn(out, src), 10) * 1000

    def c_time(caf):
        src = caf.pad(img)
        out = caf.alloc_out()
        return best_of(lambda: caf(src, out), 10) * 1000

    for mode, flags in [("default flags", ()), ("2013 emulation", NOVEC)]:
        tc = c_time(CAreaFilter(N, flags=flags))
        table = Table(f"Figure 8 (bottom) — area filter at {N}², {mode}",
                      ["schedule", "ms", "speedup"])
        table.add("reference C", tc, "1.00x")
        for vec, lb, label in [(0, False, "matching Orion"),
                               (8, False, "+ vectorization"),
                               (8, True, "+ line buffering")]:
            with extra_cflags(*flags):
                t = orion_time(build_area_filter(N, vectorize=vec,
                                                 linebuffer=lb))
            table.add(label, t, f"{tc / t:.2f}x")
        table.show()


def pointwise(full: bool) -> None:
    N = 2048 if full else 1024
    img = np.random.RandomState(9).rand(N, N).astype(np.float32)

    def t(policy, vec=0):
        pipe = build_pipeline(N, policy=policy, vectorize=vec)
        src = pipe.pad(img)
        out = pipe.alloc_out()
        return best_of(lambda: pipe.fn(out, src), 5) * 1000

    base = t(L.MATERIALIZE)
    table = Table(f"§6.2 point-wise pipeline at {N}² (paper: inline 3.8x)",
                  ["schedule", "ms/frame", "speedup"])
    for label, ms in [("materialize every stage", base),
                      ("line-buffer intermediates", t(L.LINEBUFFER)),
                      ("inline everything", t(L.INLINE)),
                      ("inline + 8-wide vectors", t(L.INLINE, 8))]:
        table.add(label, ms, f"{base / ms:.2f}x")
    table.show()


def dispatch() -> None:
    ITERS = 5_000_000
    tk = build_terra_dispatch()
    ck = build_c_dispatch()
    obj = tk.make(1.0001, 0.5)
    cobj = ck.c_make(1.0001, 0.5)
    rows = [
        ("Terra class system (virtual)",
         best_of(lambda: tk.loop_virtual(obj, ITERS), 5)),
        ("C vtable (what C++ compiles to)",
         best_of(lambda: ck.c_loop_virtual(cobj, ITERS), 5)),
        ("Terra direct call", best_of(lambda: tk.loop_direct(obj, ITERS), 5)),
        ("C direct call", best_of(lambda: ck.c_loop_direct(cobj, ITERS), 5)),
    ]
    table = Table("§6.3.1 dispatch micro-benchmark (paper: within 1%)",
                  ["variant", "ns/call"])
    for label, secs in rows:
        table.add(label, secs / ITERS * 1e9)
    table.show()
    tk.free(obj)
    ck.c_release(cobj)


def fig9(full: bool) -> None:
    nverts = 400_000 if full else 200_000
    ntris = nverts * 2
    positions, tris = random_mesh(nverts, ntris)
    flat_pos = np.ascontiguousarray(positions.reshape(-1))
    flat_tris = np.ascontiguousarray(tris.reshape(-1))
    table = Table(f"Figure 9 — data layout, {nverts} verts / {ntris} tris "
                  f"(GB/s, higher better; AoSoA is our extension)",
                  ["layout", "calc normals", "translate"])
    with extra_cflags("-fstrict-aliasing"):
        for layout in ("AoS", "SoA", "AoSoA"):
            k = build_mesh_kernels(layout)
            t = k.alloc(nverts)
            k.fill(t, flat_pos, nverts)
            tn = best_of(lambda: k.calc_normals(t, flat_tris, ntris), 3)
            tt = best_of(lambda: k.translate(t, 0.1, 0.1, 0.1, nverts), 10)
            table.add(layout, ntris * 108 / tn / 1e9, nverts * 24 / tt / 1e9)
            k.release(t)
    table.show()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper-scale sizes")
    parser.add_argument("--only", choices=["fig6", "fluid", "area",
                                           "pointwise", "dispatch", "fig9"],
                        help="run a single experiment")
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_report.json plus one "
                             "BENCH_<family>.json per experiment family "
                             "(to REPRO_BENCH_OUT_DIR or the cwd)")
    args = parser.parse_args()
    todo = {
        "fig6": lambda: fig6(args.full),
        "fluid": lambda: fig8_fluid(args.full),
        "area": lambda: fig8_area(args.full),
        "pointwise": lambda: pointwise(args.full),
        "dispatch": dispatch,
        "fig9": lambda: fig9(args.full),
    }
    #: experiment -> persisted family name (BENCH_<family>.json)
    families = {
        "fig6": "fig6",
        "fluid": "fig8_fluid",
        "area": "fig8_area",
        "pointwise": "pointwise",
        "dispatch": "dispatch",
        "fig9": "fig9",
    }
    selected = [args.only] if args.only else list(todo)

    if args.json:
        from repro.bench.record import recording
        paths = []
        # recordings stack: every table lands in the umbrella report run
        # AND its family's own file
        with recording("report", full=args.full,
                       experiments=selected) as report_run:
            for name in selected:
                with recording(families[name], full=args.full) as fam:
                    todo[name]()
                paths.append(fam.path())
        paths.append(report_run.path())
        print("\nresults written to:")
        for p in paths:
            print(f"  {p}")
    else:
        for name in selected:
            todo[name]()


if __name__ == "__main__":
    main()
