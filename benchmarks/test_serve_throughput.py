"""repro.serve load generation: throughput, tail latency, cache leverage.

Spawns a real ``python -m repro.serve`` server process (the production
entry point, not an in-process thread), then drives it the way a serving
fleet would:

* a **cold phase** where every tenant compiles its kernels (counted as
  ``serve.compile``),
* a **warm phase** where many concurrent clients across ≥8 tenants issue
  sustained warm calls — the phase the acceptance numbers come from:
  ≥500 req/s with p99 < 250 ms on the warm path,
* a **stats check**: warm traffic must be dominated by warm-pool hits
  (``serve.cache_hit`` ≫ ``serve.compile``).

Results are persisted to ``BENCH_serve.json`` (REPRO_BENCH_OUT_DIR or
the cwd) via :mod:`repro.bench.record`.

Run with ``pytest benchmarks/test_serve_throughput.py -p no:benchmark
-q -s``.
"""

import os
import subprocess
import sys
import threading
import time

import pytest

from repro.bench.harness import Table
from repro.bench.record import recording
from repro.buildd import cc_available
from repro.serve.client import ServeClient, wait_until_ready

pytestmark = pytest.mark.skipif(not cc_available(), reason="no C compiler")

TENANTS = 8
CLIENTS_PER_TENANT = 2
WARM_SECONDS = 3.0
MIN_RPS = 500.0
MAX_P99_S = 0.250

SRC_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                       "src")


def tenant_kernel(i: int) -> str:
    """A distinct kernel per tenant (distinct constant: no cross-tenant
    artifact sharing, so the cold phase pays real compiles)."""
    return f"""
    terra score{i}(x : double) : double
      return x * x + {i}.0
    end
    """


@pytest.fixture(scope="module")
def server_proc(tmp_path_factory):
    sock = str(tmp_path_factory.mktemp("serve-bench") / "bench.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--socket", sock,
         "--workers", str(max(4, os.cpu_count() or 1))],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    try:
        wait_until_ready(socket_path=sock, timeout=60.0)
    except Exception:
        proc.terminate()
        out = proc.communicate(timeout=10)[0]
        raise RuntimeError(f"server failed to start:\n{out.decode()}")
    yield sock
    proc.terminate()
    proc.wait(timeout=10)


def drive(sock: str, tenant: str, source: str, entry: str, stop_at: float,
          latencies: list):
    """One client connection issuing warm calls until the deadline."""
    local = []
    with ServeClient(socket_path=sock, tenant=tenant) as c:
        while time.perf_counter() < stop_at:
            t0 = time.perf_counter()
            c.call(source, entry, [2.0])
            local.append(time.perf_counter() - t0)
    latencies.extend(local)  # one append under the GIL, not per-request


def test_sustained_multi_tenant_throughput(server_proc):
    sock = server_proc
    kernels = {f"tenant-{i}": (tenant_kernel(i), f"score{i}")
               for i in range(TENANTS)}

    # -- cold phase: every tenant compiles its kernel -------------------------
    t0 = time.perf_counter()
    for tenant, (src, entry) in kernels.items():
        with ServeClient(socket_path=sock, tenant=tenant) as c:
            assert c.call(src, entry, [2.0]) == 4.0 + int(tenant.split("-")[1])
    cold_s = time.perf_counter() - t0
    with ServeClient(socket_path=sock) as c:
        cold_stats = c.stats()

    # -- warm phase: sustained concurrent load --------------------------------
    latencies: list = []
    stop_at = time.perf_counter() + WARM_SECONDS
    threads = []
    t_start = time.perf_counter()
    for tenant, (src, entry) in kernels.items():
        for _ in range(CLIENTS_PER_TENANT):
            t = threading.Thread(target=drive,
                                 args=(sock, tenant, src, entry, stop_at,
                                       latencies))
            t.start()
            threads.append(t)
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t_start

    with ServeClient(socket_path=sock) as c:
        warm_stats = c.stats()

    # -- numbers --------------------------------------------------------------
    n = len(latencies)
    rps = n / elapsed
    latencies.sort()
    p50 = latencies[n // 2]
    p99 = latencies[min(n - 1, int(n * 0.99))]
    worst = latencies[-1]
    compiles = warm_stats["counters"].get("serve.compile", 0)
    hits = warm_stats["counters"].get("serve.cache_hit", 0)

    with recording("serve", tenants=TENANTS,
                   clients=TENANTS * CLIENTS_PER_TENANT,
                   warm_seconds=WARM_SECONDS) as run:
        table = Table(f"repro.serve warm throughput — {TENANTS} tenants, "
                      f"{TENANTS * CLIENTS_PER_TENANT} clients, "
                      f"{elapsed:.1f} s",
                      ["metric", "value"])
        table.add("requests", n)
        table.add("req/s", rps)
        table.add("p50 ms", p50 * 1000)
        table.add("p99 ms", p99 * 1000)
        table.add("max ms", worst * 1000)
        table.add("cold phase s", cold_s)
        table.add("serve.compile", compiles)
        table.add("serve.cache_hit", hits)
        table.show()
        run.record("throughput_rps", rps)
        run.record("p50_ms", p50 * 1000)
        run.record("p99_ms", p99 * 1000)
        run.record("requests", n)
        run.record("tenants", TENANTS)
        run.record("serve_compile", compiles)
        run.record("serve_cache_hit", hits)
        run.record("counters", warm_stats["counters"])

    # -- acceptance -----------------------------------------------------------
    assert rps >= MIN_RPS, f"throughput {rps:.0f} req/s below {MIN_RPS}"
    assert p99 < MAX_P99_S, f"p99 {p99 * 1000:.1f} ms above " \
                            f"{MAX_P99_S * 1000:.0f} ms"
    # warm traffic must be pool hits, not compiles: every request in the
    # warm phase beyond the first per tenant was served warm
    assert hits >= n - TENANTS
    assert hits > 10 * compiles, \
        f"cache leverage too low: {hits} hits vs {compiles} compiles"
    # the cold phase really compiled once per tenant (plus nothing else)
    assert cold_stats["counters"]["serve.compile"] >= TENANTS


def test_admission_fast_reject_under_burst(server_proc):
    """Past the per-tenant cap the server answers tenant-over-quota in
    microseconds, and other tenants stay unaffected — measured over the
    wire with a deliberately slow kernel holding slots."""
    sock = server_proc
    spin = """
    terra hold(n : int64) : double
      var s : double = 0.0
      for i = 0, n do
        s = s + 1.0 / (1.0 + s)
      end
      return s
    end
    """
    with ServeClient(socket_path=sock, tenant="burster") as c:
        c.call(spin, "hold", [1])  # compile outside the burst

    n_holders = 80  # default tenant cap is 64: the rest must fast-reject
    outcomes = []
    lock = threading.Lock()
    barrier = threading.Barrier(n_holders)

    def burst():
        from repro.serve.protocol import ServeError
        with ServeClient(socket_path=sock, tenant="burster") as c:
            barrier.wait()
            t0 = time.perf_counter()
            try:
                c.call(spin, "hold", [120_000_000])
                status = "ok"
            except ServeError as exc:
                status = exc.code
            with lock:
                outcomes.append((status, time.perf_counter() - t0))

    threads = [threading.Thread(target=burst) for _ in range(n_holders)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    rejected = [dt for s, dt in outcomes if s == "tenant-over-quota"]
    completed = [dt for s, dt in outcomes if s == "ok"]
    print(f"\nburst of {n_holders}: {len(completed)} served, "
          f"{len(rejected)} fast-rejected"
          + (f" (median reject {sorted(rejected)[len(rejected) // 2] * 1000:.2f} ms)"
             if rejected else ""))
    assert completed, "no request was served during the burst"
    assert rejected, "burst never hit the tenant concurrency cap"
    # a fast-reject must not wait behind the running kernels
    assert min(rejected) < 0.1
