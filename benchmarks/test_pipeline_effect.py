"""What the mid-level pass pipeline buys (and costs).

Three measurements over the blocked-GEMM tuner kernel, with the pipeline
on (each backend's declared level) vs. forced off
(``pipeline_override(0)``):

* emitted-C byte size — canonicalized IR must never emit *larger* C;
* gcc wall-clock on the emitted unit (cache-busted per run);
* interpreter runtime of the cache-blocked kernel.

Run with::

    pytest benchmarks/test_pipeline_effect.py -p no:benchmark -q -s

A fresh staged function is built per configuration: the passes mutate
the typed tree in place, so a shared function would leak optimized IR
into the "off" measurement.
"""

import time
import uuid

import numpy as np

from repro.autotune.matmul import blocked_matmul, make_gemm
from repro.buildd import get_service
from repro.passes import PIPELINE_NONE, pipeline_override

# small but real: a 4-way register-blocked, 2-wide vector L1 kernel
GEMM_PARAMS = dict(NB=16, RM=2, RN=2, V=2)
N = 32  # multiple of NB


def _emit(passes_on: bool) -> str:
    gemm = make_gemm(fma=False, **GEMM_PARAMS)  # fma=False: no eager build
    if passes_on:
        return gemm.get_c_source()
    with pipeline_override(PIPELINE_NONE):
        return gemm.get_c_source()


def test_emitted_c_no_larger_with_passes(capsys):
    """Acceptance gate: pipeline output must not bloat the C unit."""
    source_off = _emit(passes_on=False)
    source_on = _emit(passes_on=True)
    with capsys.disabled():
        print(f"\nblocked-GEMM emitted C: passes on {len(source_on)} B, "
              f"off {len(source_off)} B "
              f"({len(source_off) - len(source_on):+d} B saved)")
    assert len(source_on) <= len(source_off)


def test_gcc_compile_time(capsys):
    """gcc wall-clock on the two units (unique comment busts the cache)."""
    nonce = uuid.uuid4().hex
    service = get_service()
    times = {}
    for label, source in (("off", _emit(False)), ("on", _emit(True))):
        busted = f"/* pipeline-effect {label} {nonce} */\n" + source
        t0 = time.perf_counter()
        service.compile(busted)
        times[label] = time.perf_counter() - t0
    with capsys.disabled():
        print(f"\ngcc wall-clock: passes on {times['on']:.3f}s, "
              f"off {times['off']:.3f}s")
    assert times["on"] > 0 and times["off"] > 0


def test_interp_runtime(capsys):
    """The interpreter runs the canonicalized tree measurably less IR."""
    n = 8
    rng = np.random.RandomState(3)
    A = rng.rand(n, n)
    B = rng.rand(n, n)

    def build(passes_on):
        fn = blocked_matmul(NB=4)
        if passes_on:
            return fn.compile("interp")
        with pipeline_override(PIPELINE_NONE):
            return fn.compile("interp")

    def best_of(callable_, runs=3):
        best = float("inf")
        for _ in range(runs):
            C = np.zeros((n, n))
            t0 = time.perf_counter()
            callable_(C, A, B, n)
            best = min(best, time.perf_counter() - t0)
            assert np.allclose(C, A @ B)
        return best

    t_on = best_of(build(True))
    t_off = best_of(build(False))
    with capsys.disabled():
        print(f"\ninterp blocked matmul ({n}x{n}): passes on {t_on:.4f}s, "
              f"off {t_off:.4f}s ({t_off / t_on:.2f}x)")
    # loose regression guard: the pipeline must never make the
    # interpreter dramatically slower (it is normally faster)
    assert t_on <= t_off * 2.0
