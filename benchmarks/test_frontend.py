"""Frontend parity as a performance property.

The `@terra` decorator is a *zero-cost* alternative surface: because
both frontends emit byte-identical C (ordinal local naming, one shared
emitter), a decorated kernel compiled after its string twin is a buildd
artifact-cache **hit** — no compiler invocation at all.  This file
measures that claim plus the decorator's definition-time overhead.

Run with ``pytest benchmarks/test_frontend.py -p no:benchmark -q -s``.
"""

import time

import pytest

import repro.buildd as buildd
from repro import double, int32, ptr, terra
from repro.buildd import cc_available

pytestmark = pytest.mark.skipif(not cc_available(), reason="no C compiler")


def test_decorated_twin_is_a_cache_hit():
    """String twin compiles (warming the cache); the decorated twin's
    compile must be served from the artifact cache without invoking the
    compiler again."""
    dotp_s = terra("""
    terra dotp(a : &double, b : &double, n : int) : double
      var s = 0.0
      for i = 0, n do
        s = s + a[i] * b[i]
      end
      return s
    end
    """)
    dotp_s.compile("c")

    before = buildd.stats()

    @terra
    def dotp(a: ptr(double), b: ptr(double), n: int32) -> double:
        s: double = 0.0
        for i in range(n):
            s = s + a[i] * b[i]
        return s

    assert dotp.get_c_source() == dotp_s.get_c_source()
    dotp.compile("c")

    after = buildd.stats()
    hits = after["cache_hits"] - before["cache_hits"]
    compiles = after["compiles"] - before["compiles"]
    print(f"\nfrontend cache parity: +{hits} hits, +{compiles} compiles "
          f"for the decorated twin")
    assert hits >= 1
    assert compiles == 0


def test_definition_overhead_is_bounded():
    """Defining through the decorator (inspect + ast + lowering) vs the
    string parser; both include eager specialization.  The decorator
    may cost more per definition, but must stay within an order of
    magnitude — it is a definition-time (not call-time) cost."""
    n = 30

    t0 = time.perf_counter()
    for _ in range(n):
        terra("""
        terra bump(x : int) : int
          return x + 1
        end
        """)
    string_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(n):
        @terra
        def bump(x: int32) -> int32:
            return x + 1
    pyast_s = time.perf_counter() - t0

    print(f"\ndefinition time over {n} defs: string {string_s*1e3:.1f} ms, "
          f"@terra {pyast_s*1e3:.1f} ms ({pyast_s/string_s:.2f}x)")
    assert pyast_s < string_s * 25, (
        "decorator definition overhead grew past an order of magnitude")


def test_call_time_is_frontend_independent():
    """Once compiled, per-call dispatch cost must not depend on the
    defining frontend (same CompiledFunction machinery)."""
    twin_s = terra("""
    terra scale(x : int) : int
      return x * 3
    end
    """)

    @terra
    def scale(x: int32) -> int32:
        return x * 3

    twin_s.compile("c")
    scale.compile("c")

    n = 20000

    t0 = time.perf_counter()
    for i in range(n):
        twin_s(i)
    t_string = time.perf_counter() - t0

    t0 = time.perf_counter()
    for i in range(n):
        scale(i)
    t_pyast = time.perf_counter() - t0

    print(f"\nper-call: string {t_string/n*1e6:.2f} us, "
          f"@terra {t_pyast/n*1e6:.2f} us over {n} calls")
    # generous bound: the two should be statistically identical
    assert t_pyast < t_string * 2.0
