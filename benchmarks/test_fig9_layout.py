"""Figure 9 — AoS vs SoA data layout on mesh kernels.

Paper numbers (GB/s, higher is better):
    Calc. vertex normals : AoS 3.42  > SoA 2.20   (AoS ~55% faster)
    Translate positions  : SoA 14.2  > AoS 9.90   (SoA ~43% faster)

The kernels are written once against the DataTable row interface; only
the layout argument changes.  Kernels compile with ``-fstrict-aliasing``
(these units are type-clean; real Terra's LLVM backend carries precise
aliasing info that our default C flags deliberately discard — see
DESIGN.md).
"""

import numpy as np
import pytest

from repro.apps.mesh import (build_mesh_kernels, normals_reference,
                             random_mesh)
from repro.backend.c.runtime import extra_cflags

from conftest import full_scale

NVERTS = 400_000 if full_scale() else 100_000
NTRIS = NVERTS * 2

#: nominal bytes for GB/s reporting
NORMALS_BYTES = NTRIS * 3 * (12 + 12 + 12)
TRANSLATE_BYTES = NVERTS * 24


# AoSoA is an extension beyond the paper's two layouts
@pytest.fixture(scope="module", params=["AoS", "SoA", "AoSoA"])
def mesh(request):
    layout = request.param
    positions, tris = random_mesh(NVERTS, NTRIS)
    flat_pos = np.ascontiguousarray(positions.reshape(-1))
    flat_tris = np.ascontiguousarray(tris.reshape(-1))
    with extra_cflags("-fstrict-aliasing"):
        kernels = build_mesh_kernels(layout)
        table = kernels.alloc(NVERTS)
        kernels.fill(table, flat_pos, NVERTS)
        kernels.calc_normals(table, flat_tris, NTRIS)  # force JIT in-context
        kernels.translate(table, 0.0, 0.0, 0.0, NVERTS)
    yield layout, kernels, table, flat_tris
    kernels.release(table)


def test_calc_normals(benchmark, mesh):
    layout, kernels, table, flat_tris = mesh
    benchmark(lambda: kernels.calc_normals(table, flat_tris, NTRIS))
    benchmark.extra_info["layout"] = layout
    benchmark.extra_info["gbps"] = \
        NORMALS_BYTES / benchmark.stats["mean"] / 1e9


def test_translate(benchmark, mesh):
    layout, kernels, table, flat_tris = mesh
    benchmark(lambda: kernels.translate(table, 0.1, 0.1, 0.1, NVERTS))
    benchmark.extra_info["layout"] = layout
    benchmark.extra_info["gbps"] = \
        TRANSLATE_BYTES / benchmark.stats["mean"] / 1e9


def test_correctness_both_layouts():
    nv, nt = 5000, 10000
    positions, tris = random_mesh(nv, nt, seed=3)
    ref = normals_reference(positions, tris)
    for layout in ("AoS", "SoA"):
        k = build_mesh_kernels(layout)
        t = k.alloc(nv)
        k.fill(t, np.ascontiguousarray(positions.reshape(-1)), nv)
        k.calc_normals(t, np.ascontiguousarray(tris.reshape(-1)), nt)
        pos_out = np.zeros(nv * 3, np.float32)
        nrm_out = np.zeros(nv * 3, np.float32)
        k.readback(t, pos_out, nrm_out, nv)
        assert np.allclose(nrm_out.reshape(-1, 3), ref, atol=1e-3), layout
        k.translate(t, 1.0, -2.0, 0.5, nv)
        k.readback(t, pos_out, nrm_out, nv)
        assert np.allclose(pos_out.reshape(-1, 3),
                           positions + np.float32([1.0, -2.0, 0.5]),
                           atol=1e-5), layout
        k.release(t)


def test_shape_normals_favor_aos_translate_favors_soa():
    """The Figure 9 crossover: AoS wins the gather-heavy normals kernel,
    SoA wins the streaming translate."""
    import time
    nv, nt = NVERTS, NTRIS
    positions, tris = random_mesh(nv, nt)
    flat_pos = np.ascontiguousarray(positions.reshape(-1))
    flat_tris = np.ascontiguousarray(tris.reshape(-1))
    times = {}
    with extra_cflags("-fstrict-aliasing"):
        for layout in ("AoS", "SoA"):
            k = build_mesh_kernels(layout)
            t = k.alloc(nv)
            k.fill(t, flat_pos, nv)
            k.calc_normals(t, flat_tris, nt)
            times[layout, "normals"] = min(
                _timed(lambda: k.calc_normals(t, flat_tris, nt))
                for _ in range(3))
            k.translate(t, 0.1, 0.1, 0.1, nv)
            times[layout, "translate"] = min(
                _timed(lambda: k.translate(t, 0.1, 0.1, 0.1, nv))
                for _ in range(5))
            k.release(t)
    assert times["AoS", "normals"] < times["SoA", "normals"], times
    assert times["SoA", "translate"] < times["AoS", "translate"], times


def _timed(fn):
    import time
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0
