"""Figure 8 (bottom) — separable 5×5 area filter speedups.

Paper rows (1024x1024 float pixels):
    Reference C      1x   (4.4 ms)
    Matching Orion   1.1x (4.1 ms)
    + Vectorization  2.8x (1.6 ms)
    + Line buffering 3.4x (1.3 ms)

As with the fluid benchmark, ``emulate2013`` variants compile scalar code
with ``-fno-tree-vectorize`` to reproduce the 2013 baseline shape.
"""

import numpy as np
import pytest

from repro.apps.areafilter import (CAreaFilter, build_area_filter,
                                   reference_numpy)
from repro.backend.c.runtime import extra_cflags

from conftest import full_scale

N = 1024 if full_scale() else 512
NOVEC = ("-fno-tree-vectorize",)


@pytest.fixture(scope="module")
def image():
    return np.random.RandomState(5).rand(N, N).astype(np.float32)


def _bench_orion(benchmark, af, image):
    src = af.pad(image)
    out = af.alloc_out()
    af.fn(out, src)
    benchmark(lambda: af.fn(out, src))


def test_reference_c(benchmark, image):
    caf = CAreaFilter(N)
    src = caf.pad(image)
    out = caf.alloc_out()
    caf(src, out)
    benchmark(lambda: caf(src, out))


def test_orion_matching(benchmark, image):
    _bench_orion(benchmark, build_area_filter(N), image)


def test_orion_vectorized(benchmark, image):
    _bench_orion(benchmark, build_area_filter(N, vectorize=4), image)


def test_orion_vectorized_linebuffered(benchmark, image):
    _bench_orion(benchmark,
                 build_area_filter(N, vectorize=4, linebuffer=True), image)


def test_emulate2013_reference_c(benchmark, image):
    caf = CAreaFilter(N, flags=NOVEC)
    src = caf.pad(image)
    out = caf.alloc_out()
    caf(src, out)
    benchmark(lambda: caf(src, out))


def test_emulate2013_orion_matching(benchmark, image):
    with extra_cflags(*NOVEC):
        af = build_area_filter(N)
        src = af.pad(image)
        out = af.alloc_out()
        af.fn(out, src)
    benchmark(lambda: af.fn(out, src))


def test_emulate2013_orion_vectorized(benchmark, image):
    with extra_cflags(*NOVEC):
        af = build_area_filter(N, vectorize=8)
        src = af.pad(image)
        out = af.alloc_out()
        af.fn(out, src)
    benchmark(lambda: af.fn(out, src))


def test_emulate2013_orion_vec_linebuffered(benchmark, image):
    with extra_cflags(*NOVEC):
        af = build_area_filter(N, vectorize=8, linebuffer=True)
        src = af.pad(image)
        out = af.alloc_out()
        af.fn(out, src)
    benchmark(lambda: af.fn(out, src))


def test_correctness_all_schedules(image):
    ref = reference_numpy(image)
    caf = CAreaFilter(N)
    assert np.allclose(caf.run(image), ref, atol=1e-4)
    for vec in (0, 4, 8):
        for lb in (False, True):
            af = build_area_filter(N, vectorize=vec, linebuffer=lb)
            assert np.allclose(af.run(image), ref, atol=1e-4), (vec, lb)
