"""Ablations over the staged GEMM's design parameters.

DESIGN.md calls out the three staged optimizations of §6.1 — register
blocking, vectorization, prefetching — plus cache blocking depth.  These
sweeps isolate each one, the experiments an auto-tuner's search space is
built from.
"""

import numpy as np
import pytest

from repro import double
from repro.autotune.matmul import make_gemm

from conftest import full_scale

N = 512 if full_scale() else 256


def _matrices(dtype=np.float64):
    rng = np.random.RandomState(1)
    A = np.ascontiguousarray(rng.rand(N, N).astype(dtype))
    B = np.ascontiguousarray(rng.rand(N, N).astype(dtype))
    C = np.zeros((N, N), dtype=dtype)
    return A, B, C


@pytest.mark.parametrize("RM,RN", [(1, 1), (2, 1), (2, 2), (4, 2), (8, 2)])
def test_register_blocking(benchmark, RM, RN):
    """Register blocking sweep at fixed NB=32, V=4."""
    gemm = make_gemm(NB=32, RM=RM, RN=RN, V=4)
    A, B, C = _matrices()
    gemm(C, A, B, N)
    assert np.allclose(C, A @ B)
    benchmark(lambda: gemm(C, A, B, N))


@pytest.mark.parametrize("V", [1, 2, 4])
def test_vector_width(benchmark, V):
    """Vector width sweep at fixed blocking."""
    gemm = make_gemm(NB=32, RM=4, RN=2, V=V)
    A, B, C = _matrices()
    gemm(C, A, B, N)
    assert np.allclose(C, A @ B)
    benchmark(lambda: gemm(C, A, B, N))


@pytest.mark.parametrize("NB", [16, 32, 64, 128])
def test_cache_block_size(benchmark, NB):
    """L1 block-size sweep at fixed register blocking."""
    gemm = make_gemm(NB=NB, RM=4, RN=2, V=4)
    A, B, C = _matrices()
    gemm(C, A, B, N)
    assert np.allclose(C, A @ B)
    benchmark(lambda: gemm(C, A, B, N))


@pytest.mark.parametrize("prefetch", [True, False])
def test_prefetch(benchmark, prefetch):
    """The §6.1 prefetch intrinsic, on vs off."""
    gemm = make_gemm(NB=32, RM=4, RN=2, V=4, use_prefetch=prefetch)
    A, B, C = _matrices()
    gemm(C, A, B, N)
    assert np.allclose(C, A @ B)
    benchmark(lambda: gemm(C, A, B, N))


@pytest.mark.parametrize("packed", [False, True], ids=["inplace", "packed"])
def test_panel_packing(benchmark, packed):
    """ATLAS-style panel packing vs multiplying in place (the data-copy
    optimization the paper's comparison target relies on)."""
    from repro.autotune.matmul import make_gemm, make_gemm_packed
    maker = make_gemm_packed if packed else make_gemm
    NB = 128 if packed else 64
    gemm = maker(NB=NB, RM=4, RN=2, V=4)
    A, B, C = _matrices()
    gemm(C, A, B, N)
    assert np.allclose(C, A @ B)
    benchmark(lambda: gemm(C, A, B, N))
