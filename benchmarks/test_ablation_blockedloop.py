"""Ablation: blocking depth of the §2 ``blockedloop`` generator.

The paper's motivating example: "the sizes and numbers of levels of cache
can vary across machines, so maintaining a multi-level blocked loop can be
tedious.  Instead, we can create a Lua function, blockedloop, to generate
the Terra code for the loop nests with a parameterizable number of block
sizes."  This sweep regenerates a cache-unfriendly transpose-accumulate
kernel at several blocking depths.
"""

import numpy as np
import pytest

from repro import quote_, symbol, terra
from repro.lib.blockedloop import blockedloop

from conftest import full_scale

N = 2048 if full_scale() else 1024


def _make_transpose(blocks):
    src = symbol(None, "src")
    dst = symbol(None, "dst")
    body = lambda i, j: quote_(  # noqa: E731
        "[dst][[j] * [N] + [i]] = [src][[i] * [N] + [j]]",
        env=dict(src=src, dst=dst, N=N, i=i, j=j))
    loop = blockedloop(N, blocks, body)
    return terra("""
    terra transpose([dst] : &double, [src] : &double) : {}
      [loop]
    end
    """)


@pytest.mark.parametrize("blocks", [[1], [64, 1], [128, 32, 1]],
                         ids=["unblocked", "one-level", "two-level"])
def test_blockedloop_depth(benchmark, blocks):
    fn = _make_transpose(blocks)
    rng = np.random.RandomState(2)
    src = rng.rand(N, N)
    dst = np.zeros((N, N))
    fn(dst, src)
    assert np.array_equal(dst, src.T)
    benchmark(lambda: fn(dst, src))
