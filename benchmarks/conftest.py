"""Shared fixtures and configuration for the paper-reproduction benchmarks.

Run with::

    pytest benchmarks/ --benchmark-only

Each file regenerates one table or figure from the paper's evaluation
(Section 6); see EXPERIMENTS.md for the experiment index and the
paper-vs-measured record.  Sizes are scaled down from the paper's where
needed to keep the suite's runtime reasonable; set REPRO_BENCH_FULL=1 for
paper-scale runs.
"""

import os

import numpy as np
import pytest


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def rng():
    return np.random.RandomState(12345)
