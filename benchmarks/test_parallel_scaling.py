"""Multicore scaling of the parallel-for runtime (repro.parallel).

The contract everywhere in this repo: parallelism is *pure speedup*.  An
Orion ``parallel(y)`` schedule must produce output bit-identical to its
serial twin, and the dispatch overhead must stay small enough that even
two workers on a loaded single-core host are not meaningfully slower
than the serial call.

Scaling numbers mean nothing on a one-core container, so the >= 1.5x
assertion is gated on ``os.cpu_count() >= 4``; the bit-identity and
overhead-smoke tests run everywhere (``make parallel-smoke``).
"""

import os
import time

import numpy as np
import pytest

from repro.apps.fluid import (FluidParams, initial_conditions,
                              make_orion_fluid)
from repro.parallel import default_nthreads

from conftest import full_scale

SMOKE_N = 256  # big enough that the step amortizes dispatch on 1 core
SCALE_N = 1024 if full_scale() else 512
SCHEDULE = {"vectorize": 4, "linebuffer": True}


def _best_step(sim, state, reps: int = 3) -> float:
    sim.set_state(*state)
    sim.step()  # warm-up / JIT
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        sim.step()
        best = min(best, time.perf_counter() - t0)
    return best


def _states_identical(a, b) -> bool:
    return all(x.tobytes() == y.tobytes()
               for x, y in zip(a.get_state(), b.get_state()))


def test_parallel_output_identical_smoke():
    """``make parallel-smoke``: tiny size, parallel == serial, and two
    workers stay within 1.3x of the serial step even without spare
    cores (the dispatch overhead bound)."""
    params = FluidParams(SMOKE_N)
    state = initial_conditions(SMOKE_N)
    ser = make_orion_fluid(params, **SCHEDULE)
    par = make_orion_fluid(params, parallel=2, **SCHEDULE)
    t_ser = _best_step(ser, state, reps=5)
    t_par = _best_step(par, state, reps=5)
    assert _states_identical(ser, par)
    if par._nt > 1:  # REPRO_TERRA_THREADS=1 turns par into ser — skip ratio
        assert t_par <= 1.3 * t_ser + 1e-3, \
            f"parallel dispatch overhead too high: {t_par:.4f}s vs " \
            f"serial {t_ser:.4f}s"


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="scaling needs >= 4 cores")
def test_parallel_speedup_on_multicore():
    """On a real multicore host the parallel(y) fluid schedule must beat
    serial by >= 1.5x — with bit-identical output."""
    nt = default_nthreads(0)
    if nt < 4:
        pytest.skip("REPRO_TERRA_THREADS caps workers below 4")
    params = FluidParams(SCALE_N)
    state = initial_conditions(SCALE_N)
    ser = make_orion_fluid(params, **SCHEDULE)
    par = make_orion_fluid(params, parallel=nt, **SCHEDULE)
    t_ser = _best_step(ser, state, reps=5)
    t_par = _best_step(par, state, reps=5)
    assert _states_identical(ser, par)
    speedup = t_ser / max(t_par, 1e-12)
    print(f"\nfluid N={SCALE_N} threads={nt}: "
          f"serial {t_ser * 1e3:.1f} ms, parallel {t_par * 1e3:.1f} ms "
          f"({speedup:.2f}x)")
    assert speedup >= 1.5


def test_chunked_kernel_scaling_smoke():
    """The raw parallel_for path (no Orion): bit-identity at any thread
    count, measured through the same chunked entry the demo CLI uses."""
    from repro import terra
    from repro.parallel import parallel_for

    n, w = 256, 128
    kernel = terra("""
    terra rowscale(n : int64, w : int64, src : &float, dst : &float) : {}
      for y = 0, n do
        for x = 0, w do
          dst[y * w + x] = src[y * w + x] * 1.5f + [float](y)
        end
      end
    end
    """).mark_chunked()
    src = np.random.RandomState(5).rand(n, w).astype(np.float32)
    ref = np.zeros((n, w), dtype=np.float32)
    kernel(n, w, src, ref)
    for nthreads in (2, 4, 7):
        got = np.zeros((n, w), dtype=np.float32)
        parallel_for(kernel, 0, n, n, w, src, got, nthreads=nthreads)
        assert got.tobytes() == ref.tobytes()
