"""Ablation: staged monomorphic sort vs libc's generic qsort.

Staging eliminates qsort's per-comparison indirect call and byte-copying
— the same "generative beats generic" argument as the paper's §6.1, on a
different kernel.
"""

import numpy as np
import pytest

from repro.bench.cbaseline import compile_c
from repro.core import types as T
from repro.lib.sort import Sort

from conftest import full_scale

N = 1_000_000 if full_scale() else 200_000

_QSORT_C = r"""
#include <stdlib.h>

static int cmp_double(const void *a, const void *b) {
    double x = *(const double *)a, y = *(const double *)b;
    return (x > y) - (x < y);
}

void qsort_double(double *data, long n) {
    qsort(data, n, sizeof(double), cmp_double);
}

static int cmp_int(const void *a, const void *b) {
    int x = *(const int *)a, y = *(const int *)b;
    return (x > y) - (x < y);
}

void qsort_int(int *data, long n) {
    qsort(data, n, sizeof(int), cmp_int);
}
"""


@pytest.fixture(scope="module")
def libc_sorts():
    return compile_c(_QSORT_C, {
        "qsort_double": (["ptr", "long"], "void"),
        "qsort_int": (["ptr", "long"], "void"),
    })


@pytest.fixture(scope="module")
def doubles():
    return np.random.RandomState(0).randn(N)


def test_staged_sort_doubles(benchmark, doubles):
    sort = Sort(T.float64)
    expected = np.sort(doubles)

    def run():
        data = doubles.copy()
        sort(data, N)
        return data

    result = benchmark(run)
    assert np.array_equal(result, expected)


def test_libc_qsort_doubles(benchmark, doubles, libc_sorts):
    expected = np.sort(doubles)

    def run():
        data = doubles.copy()
        libc_sorts.qsort_double(data, N)
        return data

    result = benchmark(run)
    assert np.array_equal(result, expected)


def test_numpy_sort_doubles(benchmark, doubles):
    benchmark(lambda: np.sort(doubles))


def test_shape_staged_beats_generic(doubles, libc_sorts):
    """The staged sort must beat generic qsort (paper-spirit assertion)."""
    import time
    sort = Sort(T.float64)

    def best(fn, reps=3):
        times = []
        for _ in range(reps):
            data = doubles.copy()
            t0 = time.perf_counter()
            fn(data)
            times.append(time.perf_counter() - t0)
        return min(times)

    t_staged = best(lambda d: sort(d, N))
    t_qsort = best(lambda d: libc_sorts.qsort_double(d, N))
    assert t_staged < t_qsort, (t_staged, t_qsort)
