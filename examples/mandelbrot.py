"""Mandelbrot — staged scalar vs vector kernels, saved as a library.

Not a paper experiment, but the canonical demo of what the system is for:
the same escape-parameterized kernel is staged twice — once scalar, once
over Terra SIMD vectors with branch-free iteration counting via
``select`` — then compared, and finally written out with ``saveobj`` as a
shared library callable from any C program.

Run:  python examples/mandelbrot.py [N]
"""

import os
import sys
import tempfile
import time

import numpy as np

from repro import saveobj, select, terra, vector, float_

N = int(sys.argv[1]) if len(sys.argv) > 1 else 512
MAX_ITER = 96

# -- scalar kernel -----------------------------------------------------------------

scalar = terra("""
terra mandel_scalar(out : &int, n : int, maxiter : int) : {}
  for py = 0, n do
    var ci = -1.2f + 2.4f * [float](py) / [float](n)
    for px = 0, n do
      var cr = -2.1f + 2.8f * [float](px) / [float](n)
      var zr, zi = 0.f, 0.f
      var count = 0
      for it = 0, maxiter do
        var zr2 = zr * zr
        var zi2 = zi * zi
        if zr2 + zi2 > 4.f then break end
        zi = 2.f * zr * zi + ci
        zr = zr2 - zi2 + cr
        count = count + 1
      end
      out[py * n + px] = count
    end
  end
end
""")

# -- vector kernel: 8 pixels per iteration, branch-free ----------------------------

from repro import int32  # noqa: E402

V = 8
vf = vector(float_, V)
vi = vector(int32, V)

# a horizontal any-lane-true reduction: the 8-lane bool mask is exactly 8
# bytes, so one uint64 load answers "is any lane active?"
_any_lanes = "@[&uint64](&active) ~= 0"

vectored = terra(f"""
terra mandel_vector(out : &int, n : int, maxiter : int) : {{}}
  var lane : [vi]
  for k = 0, [V] do lane[k] = k end
  for py = 0, n do
    var ci = [vf](-1.2f + 2.4f * [float](py) / [float](n))
    for px = 0, n, [V] do
      var cr = ([vf](lane) + [vf]([float](px))) * (2.8f / [float](n))
               + [vf](-2.1f)
      var zr, zi = [vf](0.f), [vf](0.f)
      var count = [vi](0)
      for it = 0, maxiter do
        var zr2 = zr * zr
        var zi2 = zi * zi
        -- the horizontal all-lanes-diverged check is relatively costly
        -- (it spills the mask), so only test it every 8th iteration
        if it % 8 == 0 then
          var active = (zr2 + zi2) <= [vf](4.f)
          if not ({_any_lanes}) then break end
        end
        -- select with an inline comparison compiles to a native
        -- compare+blend (no bool-mask round trip)
        count = count + [select](zr2 + zi2 <= [vf](4.f), [vi](1), [vi](0))
        zi = [select](zr2 + zi2 <= [vf](4.f), 2.f * zr * zi + ci, zi)
        zr = [select](zr2 + zi2 <= [vf](4.f), zr2 - zi2 + cr, zr)
      end
      @[&vi](&out[py * n + px]) = count
    end
  end
end
""")
# note: [vf](lane) converts the int vector of lane ids to float lanes;
# the staged `_any_lanes` or-chain is a horizontal reduction

out_s = np.zeros(N * N, dtype=np.int32)
out_v = np.zeros(N * N, dtype=np.int32)

t0 = time.perf_counter()
scalar(out_s, N, MAX_ITER)
t_scalar = time.perf_counter() - t0
t0 = time.perf_counter()
vectored(out_v, N, MAX_ITER)
t_vector = time.perf_counter() - t0

match = np.array_equal(out_s, out_v)
print(f"{N}x{N}, {MAX_ITER} iterations")
print(f"scalar: {t_scalar*1000:7.1f} ms")
print(f"vector: {t_vector*1000:7.1f} ms   ({t_scalar/t_vector:.2f}x, "
      f"results match: {match})")

# a cheap ASCII rendering of the set
art = out_s.reshape(N, N)[:: N // 24, :: N // 48]
chars = " .:-=+*#%@"
for row in art:
    print("".join(chars[min(c * (len(chars) - 1) // MAX_ITER,
                            len(chars) - 1)] for c in row))

# -- ship it as a C library ----------------------------------------------------------
workdir = tempfile.mkdtemp(prefix="repro-mandel-")
lib = os.path.join(workdir, "libmandel.so")
saveobj(lib, {"mandel_scalar": scalar, "mandel_vector": vectored})
print(f"\nwrote {lib} — callable from C without Python.")
