"""Quickstart — the paper's Section 2 walk-through, end to end.

Demonstrates:
* defining Terra functions from Python (the meta-language),
* the parameterized ``Image(PixelType)`` type (a "runtime C++ template"),
* the ``laplace`` stencil and its ``runlaplace`` driver,
* re-staging the loop nest with ``blockedloop`` (multi-level cache
  blocking without touching the algorithm),
* saving the compiled function as a ``.o``/``.c`` for use from plain C.

Run:  python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

from repro import saveobj, terra, float32, quote_
from repro.lib.blockedloop import blockedloop
from repro.lib.image import Image, read_image_file, write_image_file

# -- a Terra function, defined and JIT-compiled from Python ------------------

min_ = terra("""
terra min(a : int, b : int) : int
  if a < b then return a else return b end
end
""")
print("min(3, 4) =", min_(3, 4))

# -- the Image type factory (paper §2) -------------------------------------------

GreyscaleImage = Image(float32)

laplace = terra("""
terra laplace(img : &GreyscaleImage, out : &GreyscaleImage) : {}
  -- shrink result, do not calculate boundaries
  var newN = img.N - 2
  out:init(newN)
  for i = 0, newN do
    for j = 0, newN do
      var v = img:get(i+0, j+1) + img:get(i+2, j+1)
            + img:get(i+1, j+2) + img:get(i+1, j+0)
            - 4 * img:get(i+1, j+1)
      out:set(i, j, v)
    end
  end
end
""")

runlaplace = terra("""
terra runlaplace(input : rawstring, output : rawstring) : bool
  var i = GreyscaleImage {}
  var o = GreyscaleImage {}
  if not i:load(input) then return false end
  laplace(&i, &o)
  var ok = o:save(output)
  i:free()
  o:free()
  return ok
end
""")

workdir = tempfile.mkdtemp(prefix="repro-quickstart-")
inp = os.path.join(workdir, "input.timg")
outp = os.path.join(workdir, "output.timg")

image = np.random.RandomState(0).rand(64, 64).astype(np.float32)
write_image_file(inp, image)
assert runlaplace(inp, outp)
result = read_image_file(outp)
print(f"laplace: {image.shape} -> {result.shape}, "
      f"mean |L| = {abs(result).mean():.4f}")

# -- restaging the loop nest with blockedloop (paper §2) ----------------------

img_s, out_s = __import__("repro").symbol(None, "img"), \
    __import__("repro").symbol(None, "out")
newN = 62
body = lambda i, j: quote_(  # noqa: E731
    """
    var v = [img_s]:get([i]+0,[j]+1) + [img_s]:get([i]+2,[j]+1)
          + [img_s]:get([i]+1,[j]+2) + [img_s]:get([i]+1,[j]+0)
          - 4 * [img_s]:get([i]+1,[j]+1)
    [out_s]:set([i], [j], v)
    """, env=dict(img_s=img_s, out_s=out_s, i=i, j=j))

loop = blockedloop(newN, [32, 8, 1], body)
laplace_blocked = terra("""
terra laplace_blocked([img_s] : &GreyscaleImage,
                      [out_s] : &GreyscaleImage) : {}
  [out_s]:init([newN])
  [loop]
end
""")

reference = terra("""
terra check(input : rawstring) : float
  var i = GreyscaleImage {}
  var o1 = GreyscaleImage {}
  var o2 = GreyscaleImage {}
  i:load(input)
  laplace(&i, &o1)
  laplace_blocked(&i, &o2)
  var maxdiff = 0.f
  for k = 0, o1.N * o1.N do
    var d = o1.data[k] - o2.data[k]
    if d < 0.f then d = -d end
    if d > maxdiff then maxdiff = d end
  end
  i:free(); o1:free(); o2:free()
  return maxdiff
end
""")
print("blockedloop max difference vs plain loops:", reference(inp))

# -- ahead-of-time output (paper: "linked to a normal C executable") -----------

obj_path = os.path.join(workdir, "runlaplace.o")
saveobj(obj_path, {"runlaplace": runlaplace})
print("wrote", obj_path, f"({os.path.getsize(obj_path)} bytes)")
