"""Orion fluid simulation — the paper's Section 6.2 / Figure 8 (top).

Runs Stam's real-time fluid solver with the stencil passes (diffuse,
project) written in the Orion DSL and the semi-Lagrangian advection as a
plain Terra function, then times the C reference against three Orion
schedules: matching, vectorized, and vectorized+line-buffered.

Run:  python examples/orion_fluid.py [N]
"""

import sys
import time

import numpy as np

from repro.apps.fluid import (FluidParams, initial_conditions, make_c_fluid,
                              make_orion_fluid)
from repro.bench.harness import Table

N = int(sys.argv[1]) if len(sys.argv) > 1 else 512
params = FluidParams(N)
u, v, d = initial_conditions(N)


def ms_per_step(sim, steps=3):
    sim.set_state(u, v, d)
    sim.step()  # warm-up / JIT
    t0 = time.perf_counter()
    for _ in range(steps):
        sim.step()
    return (time.perf_counter() - t0) / steps * 1000


print(f"fluid solver at {N}x{N}, float32, "
      f"{params.diffuse_iters} diffuse / {params.project_iters} project "
      f"Jacobi iterations per step\n")

c_sim = make_c_fluid(params)
t_c = ms_per_step(c_sim)

rows = [("reference C", t_c)]
for vec, lb, label in [(0, False, "matching Orion"),
                       (4, False, "+ vectorization"),
                       (4, True, "+ line buffering")]:
    sim = make_orion_fluid(params, vectorize=vec, linebuffer=lb)
    rows.append((label, ms_per_step(sim)))

table = Table("Fluid simulation (paper Figure 8, top)",
              ["schedule", "ms/step", "speedup"])
for label, t in rows:
    table.add(label, t, f"{t_c / t:.2f}x")
table.show()

# -- correctness: all schedules equal the C reference ------------------------------

small = FluidParams(64)
su, sv, sd = initial_conditions(64)
ref = make_c_fluid(small)
ref.set_state(su, sv, sd)
ref.step()
ru = ref.get_state()[0]
sim = make_orion_fluid(small, vectorize=4, linebuffer=True)
sim.set_state(su, sv, sd)
sim.step()
assert np.allclose(sim.get_state()[0], ru, atol=1e-4)
print("\nall schedules verified against the C reference.")
print("(run with -fno-tree-vectorize scalar baselines — see "
      "benchmarks/test_fig8_fluid.py — to reproduce the paper's "
      "2013-compiler speedup shape.)")

# -- render the advected density field to a BMP ---------------------------------
import os
import tempfile

from repro.lib.bmp import write_bmp

render = make_orion_fluid(FluidParams(128), vectorize=4, linebuffer=True)
render.set_state(*initial_conditions(128))
for _ in range(20):
    render.step()
density = render.get_state()[2]
out_path = os.path.join(tempfile.mkdtemp(prefix="repro-fluid-"),
                        "density.bmp")
write_bmp(out_path, density / max(density.max(), 1e-6))
print(f"wrote the advected density field to {out_path}")
