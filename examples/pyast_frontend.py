"""The ``@terra`` decorator frontend — Terra in Python syntax.

Demonstrates:
* a decorated, type-annotated kernel compiled by the same pipeline as
  string-defined Terra (never executed as Python),
* frontend parity: the string twin of a kernel emits *byte-identical*
  C, so either one is an artifact-cache hit for the other,
* staging with ``{...}`` escapes — loop unrolling with quotes built by
  ordinary Python,
* a decorated kernel running under the tiered execution policy.

Run:  python examples/pyast_frontend.py
"""

import numpy as np

from repro import int32, ptr, quote_, terra

# -- a kernel in Python syntax -------------------------------------------------

@terra
def blur3(out: ptr(float), src: ptr(float), n: int32) -> None:
    for i in range(1, n - 1):
        out[i] = (src[i - 1] + src[i] + src[i + 1]) / 3.0

src = np.random.RandomState(7).rand(64).astype(np.float32)
out = np.zeros(64, dtype=np.float32)
blur3(out, src, 64)
print(f"blur3: mean {out[1:-1].mean():.4f} (input mean {src.mean():.4f})")

# -- parity with the string frontend ------------------------------------------

blur3_s = terra("""
terra blur3(out : &float, src : &float, n : int) : {}
  for i = 1, n - 1 do
    out[i] = (src[i - 1] + src[i] + src[i + 1]) / 3.0
  end
end
""")
same = blur3.get_c_source() == blur3_s.get_c_source()
print(f"string twin emits byte-identical C: {same}")
assert same

# -- staging: escapes splice quotes built in Python ---------------------------

def unrolled_sum(target, count):
    """`count` statements adding i*i each — classic §6.1 unrolling."""
    return [quote_("[t] = [t] + [i] * [i]", env={"t": target, "i": i})
            for i in range(count)]

@terra
def sum_squares(x: int32) -> int32:
    acc: int32 = 0
    {unrolled_sum(acc, 8)}
    return acc + x

expected = sum(i * i for i in range(8))
print(f"sum_squares(0) = {sum_squares(0)} (expected {expected})")
assert sum_squares(0) == expected

# -- the tiered policy sees no difference -------------------------------------

from repro.exec import TieredPolicy, policy_override

@terra
def fib(n: int32) -> int32:
    a = 0
    b = 1
    for _i in range(n):
        a, b = b, a + b
    return a

with policy_override(TieredPolicy(threshold=3, sync=True)):
    values = [fib(k) for k in range(10)]
info = fib.dispatcher.tier_info()
print(f"fib under tiered policy: {values} (tier {info['tier']}, "
      f"{info['calls']} interpreted calls)")
assert values == [0, 1, 1, 2, 3, 5, 8, 13, 21, 34]
