"""A Java-like class system as a *library* — the paper's Section 6.3.1.

No compiler support: single inheritance, interfaces, and implicit
subtyping conversions are all built from the public type-reflection API
(``entries``, ``methods``, ``metamethods.__finalizelayout``, ``__cast``).

Run:  python examples/class_system.py
"""

from repro import float_, struct, terra
from repro.lib import javalike as J

# -- declare an interface and a class hierarchy --------------------------------

Drawable = J.interface({"area": ([], float_),
                        "name_tag": ([], float_)}, name="Drawable")

Shape = struct("struct Shape { id : int }")
terra("""
terra Shape:area() : float return 0.f end
terra Shape:name_tag() : float return 0.f end
""", env={"Shape": Shape})

Square = struct("struct Square { length : float }")
J.extends(Square, Shape)
J.implements(Square, Drawable)
terra("""
terra Square:area() : float return self.length * self.length end
terra Square:name_tag() : float return 1.f end
""", env={"Square": Square})

Circle = struct("struct Circle { radius : float }")
J.extends(Circle, Shape)
J.implements(Circle, Drawable)
terra("""
terra Circle:area() : float
  return 3.14159265f * self.radius * self.radius
end
terra Circle:name_tag() : float return 2.f end
""", env={"Circle": Circle})

# -- polymorphic Terra code -------------------------------------------------------

demo = terra("""
-- dynamic dispatch through a parent pointer
terra total_area(shapes : &&Shape, n : int) : float
  var sum = 0.f
  for i = 0, n do
    sum = sum + shapes[i]:area()
  end
  return sum
end

terra run() : {float, float}
  var sq : Square
  sq:init()
  sq.id = 1
  sq.length = 3.f
  var ci : Circle
  ci:init()
  ci.id = 2
  ci.radius = 1.f

  var shapes : (&Shape)[2]
  shapes[0] = &sq     -- implicit &Square -> &Shape (the __cast metamethod)
  shapes[1] = &ci
  var through_parent = total_area(&shapes[0], 2)

  -- and through an interface (a different vtable in the object layout)
  var d : &Drawable = &sq
  var through_iface = d:area() + d:name_tag()

  return through_parent, through_iface
end
""", env={"Shape": Shape, "Square": Square, "Circle": Circle,
          "Drawable": Drawable.type})

through_parent, through_iface = demo.run()
print(f"sum of areas through &Shape:   {through_parent:.3f} "
      f"(expect ~{9 + 3.14159:.3f})")
print(f"square through &Drawable:      area+tag = {through_iface:.3f} "
      f"(expect 10.0)")

# -- what the library did to the layout -------------------------------------------

Square.complete()
print("\nSquare's finalized layout (paper: parent prefix + interface "
      "vtable pointers):")
for entry in Square.entries:
    print(f"  +{Square.offsetof(entry.field):2d}  {entry.field} : {entry.type}")
