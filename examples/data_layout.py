"""Programmable data layout — the paper's Section 6.3.2 / Figure 9.

One DataTable interface, two layouts.  The mesh kernels are written once;
switching between array-of-structs and struct-of-arrays is literally the
string "AoS" -> "SoA".  The gather-heavy normals kernel favours AoS, the
streaming translate favours SoA — Figure 9's crossover.

Run:  python examples/data_layout.py [nverts]
"""

import sys
import time

import numpy as np

from repro import float_, terra
from repro.apps.mesh import build_mesh_kernels, normals_reference, random_mesh
from repro.backend.c.runtime import extra_cflags
from repro.bench.harness import Table
from repro.lib.datatable import DataTable

# -- the paper's FluidData example -------------------------------------------------

FluidData = DataTable({"vx": float_, "vy": float_,
                       "pressure": float_, "density": float_}, "AoS")

demo = terra("""
terra demo(n : int64) : float
  var fd : FluidData
  fd:init(n)
  for i = 0, n do
    var r = fd:row(i)
    r:setvx(1.0f)
    r:setdensity([float](i))
  end
  var total = 0.0f
  for i = 0, n do
    var r = fd:row(i)
    total = total + r:vx() * r:density()
  end
  fd:free()
  return total
end
""", env={"FluidData": FluidData})
print("FluidData demo (AoS):", demo(100), "= sum(0..99)")

# -- Figure 9: the layout crossover ----------------------------------------------------

nverts = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000
ntris = nverts * 2
positions, tris = random_mesh(nverts, ntris)
flat_pos = np.ascontiguousarray(positions.reshape(-1))
flat_tris = np.ascontiguousarray(tris.reshape(-1))

NORMALS_BYTES = ntris * 3 * (12 + 12 + 12)
TRANSLATE_BYTES = nverts * 24


def bench(fn, reps):
    fn()
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


table = Table(f"Mesh kernels, {nverts} vertices / {ntris} triangles "
              f"(paper Figure 9, GB/s higher is better)",
              ["layout", "calc normals GB/s", "translate GB/s"])

with extra_cflags("-fstrict-aliasing"):
    for layout in ("AoS", "SoA"):
        k = build_mesh_kernels(layout)
        t = k.alloc(nverts)
        k.fill(t, flat_pos, nverts)
        tn = bench(lambda: k.calc_normals(t, flat_tris, ntris), 3)
        tt = bench(lambda: k.translate(t, 0.1, 0.1, 0.1, nverts), 10)
        table.add(layout, NORMALS_BYTES / tn / 1e9, TRANSLATE_BYTES / tt / 1e9)
        k.release(t)
table.show()
print("\nexpected shape: AoS wins the gather-heavy normals kernel, "
      "SoA wins the streaming translate.")

# correctness spot-check
k = build_mesh_kernels("SoA")
t = k.alloc(2000)
pos2, tris2 = random_mesh(2000, 4000, seed=1)
k.fill(t, np.ascontiguousarray(pos2.reshape(-1)), 2000)
k.calc_normals(t, np.ascontiguousarray(tris2.reshape(-1)), 4000)
outp = np.zeros(2000 * 3, np.float32)
outn = np.zeros(2000 * 3, np.float32)
k.readback(t, outp, outn, 2000)
assert np.allclose(outn.reshape(-1, 3), normals_reference(pos2, tris2),
                   atol=1e-3)
k.release(t)
print("normals verified against numpy.")
