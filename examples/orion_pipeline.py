"""Orion point-wise pipeline — schedules change performance, not results.

The paper (§6.2): four memory-bound point-wise kernels (blacklevel,
brightness, clamp, invert).  Materializing each stage models a library of
separately-applied functions; inlining fuses them into one pass over the
image ("reducing the accesses to main memory by a factor of 4 and
resulting in a 3.8x speedup").

Run:  python examples/orion_pipeline.py [N]
"""

import sys
import time

import numpy as np

from repro.apps.pointwise import build_pipeline, reference_numpy
from repro.bench.harness import Table
from repro.orion import lang as L

N = int(sys.argv[1]) if len(sys.argv) > 1 else 2048
img = np.random.RandomState(0).rand(N, N).astype(np.float32)


def best_time(pipe, tries=5):
    src = pipe.pad(img)
    out = pipe.alloc_out()
    pipe.fn(out, src)
    times = []
    for _ in range(tries):
        t0 = time.perf_counter()
        pipe.fn(out, src)
        times.append(time.perf_counter() - t0)
    return min(times) * 1000


rows = []
for policy, label in [(L.MATERIALIZE, "materialize every stage"),
                      (L.LINEBUFFER, "line-buffer intermediates"),
                      (L.INLINE, "inline everything")]:
    pipe = build_pipeline(N, policy=policy)
    rows.append((label, best_time(pipe)))
pipe_v = build_pipeline(N, policy=L.INLINE, vectorize=8)
rows.append(("inline + 8-wide vectors", best_time(pipe_v)))

base = rows[0][1]
table = Table(f"4-kernel point-wise pipeline at {N}x{N} (paper §6.2)",
              ["schedule", "ms/frame", "speedup"])
for label, t in rows:
    table.add(label, t, f"{base / t:.2f}x")
table.show()

ref = reference_numpy(img)
for policy in (L.MATERIALIZE, L.INLINE, L.LINEBUFFER):
    out = build_pipeline(N, policy=policy).run(img)
    assert np.allclose(out, ref, atol=1e-6)
print("\nall schedules produce identical images.")
