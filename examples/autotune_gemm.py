"""Auto-tuned matrix multiply — the paper's Section 6.1 experiment.

Searches over (NB, RM, RN, V, prefetch) configurations of the staged
Figure-5 kernel, JIT-compiling and timing each, then compares the winner
against the naive loop, a plain cache-blocked loop, and the vendor BLAS
behind numpy (the ATLAS/MKL stand-in).

Run:  python examples/autotune_gemm.py [test_size]
"""

import sys
import time

import numpy as np

from repro import double
from repro.autotune.matmul import blocked_matmul, naive_matmul
from repro.autotune.tuner import candidates, time_gemm, tune
from repro.bench.harness import Table

test_size = int(sys.argv[1]) if len(sys.argv) > 1 else 512

print(f"tuning DGEMM on a {test_size}x{test_size} test multiply...")
cands = candidates(double, NBs=(32, 48, 64), RMs=(2, 4), RNs=(1, 2),
                   Vs=(2, 4), prefetch_options=(True, False))
result = tune(test_size=test_size, candidate_list=cands, repeats=2,
              verbose=True)
print(f"\nbest configuration: {result.best}  ({result.gflops:.2f} GFLOPS)")

# -- compare against the baselines (Figure 6's series) ----------------------------

N = test_size
rng = np.random.RandomState(0)
A = np.ascontiguousarray(rng.rand(N, N))
B = np.ascontiguousarray(rng.rand(N, N))
C = np.zeros((N, N))

flops = 2.0 * N ** 3

def gflops_of(fn, reps=3):
    fn()
    best = min(_timed(fn) for _ in range(reps))
    return flops / best / 1e9

def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0

table = Table(f"DGEMM at N={N} (paper Figure 6a)",
              ["series", "GFLOPS", "vs tuned"])
tuned = result.gflops
naive = gflops_of(lambda: naive_matmul()(C, A, B, N), reps=1)
blocked = gflops_of(lambda: blocked_matmul(64)(C, A, B, N))
vendor = gflops_of(lambda: np.dot(A, B, out=C))
for label, g in [("naive", naive), ("blocked", blocked),
                 ("Terra (tuned)", tuned), ("vendor BLAS (numpy)", vendor)]:
    table.add(label, g, f"{g / tuned:.2f}x")
table.show()

check = np.zeros((N, N))
result.gemm(check, A, B, N)
assert np.allclose(check, A @ B), "tuned kernel produced a wrong result!"
print("\nresult verified against numpy.")
