"""Terra Core — running the paper's Section 3/4.1 formal-semantics
examples on the executable calculus.

Each snippet below is a term of the core calculus (Lua Core staging Terra
Core), evaluated by the big-step machine in repro.corecalc.  The printed
results are exactly the values the paper's prose derives.

Run:  python examples/terra_core_semantics.py
"""

from repro.corecalc import machine as M
from repro.corecalc import terms as t

B = t.B


def lint(v):
    return t.LBase(v)


def ter(target, param, body):
    return t.LTDefn(target, param, t.LType(B), t.LType(B), body)


# 1. eager specialization (paper §4.1) --------------------------------------------
#    let x1 = 0 in
#    let y = ter tdecl(x2 : int) : int { x1 } in
#    x1 := 1; y(0)
prog = t.LLet(
    "x1", lint(0),
    t.LLet("y", ter(t.LTDecl(), "x2", t.TVar("x1")),
           t.seq(t.LAssign("x1", lint(1)),
                 t.LApp(t.LVar("y"), lint(0)))))
value, _ = M.run(prog)
print("eager specialization:  y(0) =", value,
      " (the paper: 'the statement y(0) will evaluate to 0')")

# 2. separate evaluation (paper §4.1) -----------------------------------------------
#    let x1 = 1 in let y = ter tdecl(x2:int):int { x1 } in x1 := 2; y(0)
prog = t.LLet(
    "x1", lint(1),
    t.LLet("y", ter(t.LTDecl(), "x2", t.TVar("x1")),
           t.seq(t.LAssign("x1", lint(2)),
                 t.LApp(t.LVar("y"), lint(0)))))
value, _ = M.run(prog)
print("separate evaluation:   y(0) =", value,
      " (the function call 'will evaluate to the value 1, despite x1 "
      "being re-assigned to 2')")

# 3. hygiene (paper §4.1) --------------------------------------------------------------
#    let x1 = fun(x2){ 'tlet y : int = 0 in [x2] } in
#    let x3 = ter tdecl(y : int) : int { [x1(y)] } in x3(42)
prog = t.LLet(
    "x1", t.LFun("x2", t.LQuote(
        t.TLet("y", t.LType(B), t.TBase(0), t.TEscape(t.LVar("x2"))))),
    t.LLet("x3", ter(t.LTDecl(), "y",
                     t.TEscape(t.LApp(t.LVar("x1"), t.LVar("y")))),
           t.LApp(t.LVar("x3"), lint(42))))
value, state = M.run(prog)
print("hygiene:               x3(42) =", value,
      " (without renaming, the tlet would capture y and return 0)")
fdef = next(d for d in state.functions.values() if d is not None)
print("                       specialized body:", fdef.body)

# 4. type reflection (paper §4.1) ---------------------------------------------------
#    let x3 = fun(x1){ ter tdecl(x2 : x1) : x1 { x2 } } in x3(int)(1)
prog = t.LLet(
    "x3", t.LFun("x1", t.LTDefn(t.LTDecl(), "x2", t.LVar("x1"),
                                t.LVar("x1"), t.TVar("x2"))),
    t.LApp(t.LApp(t.LVar("x3"), t.LType(B)), lint(1)))
value, _ = M.run(prog)
print("type reflection:       x3(B)(1) =", value,
      " (a Lua function generating a Terra identity function per type)")

# 5. mutual recursion via declare-then-define (paper §4.1) ----------------------------
prog = t.LLet(
    "x2", t.LTDecl(),
    t.LLet("x1", ter(t.LTDecl(), "y", t.TApp(t.TVar("x2"), t.TVar("y"))),
           t.seq(ter(t.LVar("x2"), "y", t.TApp(t.TVar("x1"), t.TVar("y"))),
                 lint(0))))
_, state = M.run(prog)
for addr in list(state.functions):
    ftype = M.typecheck_function(addr, state)
    print(f"mutual recursion:      l{addr} typechecks at {ftype} "
          f"(connected-component rule, Fig. 4)")
