# Convenience targets for the Terra reproduction.

PYTHON ?= python3
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install test check verify-ir fuzz-smoke autovec-smoke schedule-smoke frontend-smoke tier-smoke trace-demo parallel-smoke serve-smoke bench bench-compile bench-serve bench-autovec bench-schedule report examples clean

TRACE_DEMO_OUT ?= $(or $(TMPDIR),/tmp)/repro-trace-demo.json
PARALLEL_TRACE_OUT ?= $(or $(TMPDIR),/tmp)/repro-parallel-trace.json
SERVE_TRACE_OUT ?= $(or $(TMPDIR),/tmp)/repro-serve-trace.json
TIER_TRACE_OUT ?= $(or $(TMPDIR),/tmp)/repro-tier-trace.json

install:
	$(PYTHON) -m pip install -e .

test:
	$(PYTHON) -m pytest tests/ -q

check:  # the tier-1 gate: full test suite + a buildd CLI smoke
	$(PYTHON) -m pytest tests/ -x -q
	$(PYTHON) -m repro.buildd --stats
	$(PYTHON) -m repro.buildd --gc

test-verbose:
	$(PYTHON) -m pytest tests/ -v

verify-ir:  # full suite with the IR verifier re-checking after every pass
	REPRO_TERRA_VERIFY_IR=1 $(PYTHON) -m pytest tests/ -x -q

fuzz-smoke:  # fixed-seed differential fuzz: interp/c/tiered x levels 0/1/2
	REPRO_TERRA_VERIFY_IR=1 $(PYTHON) -m repro.fuzz --seed 20260806 --count 300 --tiered

autovec-smoke:  # the vectorizer gate: unit tests, corpus replay + fixed-seed
	# fuzz with level 3 in the matrix (verifier on), then the speedup benchmark
	$(PYTHON) -m pytest tests/passes/test_vectorize.py -q
	REPRO_TERRA_VERIFY_IR=1 $(PYTHON) -m repro.fuzz --replay tests/fuzz/corpus --autovec
	REPRO_TERRA_VERIFY_IR=1 $(PYTHON) -m repro.fuzz --seed 20260806 --count 300 --autovec
	$(PYTHON) -m pytest benchmarks/test_autovec.py -p no:benchmark -q -s

bench-autovec:  # auto-vectorizer speedup vs scalar C (writes BENCH_autovec.json)
	$(PYTHON) -m pytest benchmarks/test_autovec.py -p no:benchmark -q -s

schedule-smoke:  # the tile-schedule gate: directive/lowering/workload tests
	# (every point bit-identical to naive across backends x levels),
	# fixed-seed fuzz with the lenient sched configs in the matrix
	# (verifier on), then the ablation benchmark
	$(PYTHON) -m pytest tests/schedule -q
	REPRO_TERRA_VERIFY_IR=1 $(PYTHON) -m repro.fuzz --seed 20260806 --count 300 --schedule
	$(PYTHON) -m pytest benchmarks/test_schedule.py -p no:benchmark -q -s

bench-schedule:  # tile-schedule ablation sweep (writes BENCH_schedule.json)
	$(PYTHON) -m pytest benchmarks/test_schedule.py -p no:benchmark -q -s

frontend-smoke:  # the @terra frontend gate: parity suite (typed-IR equality,
	# bit-identical results, byte-identical C), doc snippets, the runnable
	# example, and the cache-hit/overhead benchmark
	$(PYTHON) -m pytest tests/frontend -q
	$(PYTHON) -m pytest tests/examples/test_docs_snippets.py -q
	$(PYTHON) examples/pyast_frontend.py
	$(PYTHON) -m pytest benchmarks/test_frontend.py -p no:benchmark -q -s

tier-smoke:  # exec-layer tests, then a traced tiered demo (tier-up + deopt events)
	$(PYTHON) -m pytest tests/exec -q
	REPRO_TERRA_TRACE=1 REPRO_TERRA_TRACE_OUT=$(TIER_TRACE_OUT) \
		$(PYTHON) -m repro.exec --threshold 4 --calls 12 --sync
	$(PYTHON) -m repro.trace validate $(TIER_TRACE_OUT)
	@echo "tier trace written to $(TIER_TRACE_OUT) — open in ui.perfetto.dev"

fuzz:  # open-ended fuzzing; pick a seed, minimize + save any findings
	$(PYTHON) -m repro.fuzz --seed $$RANDOM --count 1000 --minimize --save findings/

trace-demo:  # record a full-lifecycle trace of quickstart.py, validate, summarize
	REPRO_TERRA_TRACE=1 REPRO_TERRA_TRACE_OUT=$(TRACE_DEMO_OUT) \
		$(PYTHON) examples/quickstart.py
	$(PYTHON) -m repro.trace validate $(TRACE_DEMO_OUT)
	$(PYTHON) -m repro.trace view $(TRACE_DEMO_OUT)
	@echo "trace written to $(TRACE_DEMO_OUT) — open in ui.perfetto.dev"

parallel-smoke:  # parallel == serial at tiny size, then a traced demo (worker lanes)
	$(PYTHON) -m pytest tests/parallel benchmarks/test_parallel_scaling.py -p no:benchmark -q
	REPRO_TERRA_TRACE=1 REPRO_TERRA_TRACE_OUT=$(PARALLEL_TRACE_OUT) \
		$(PYTHON) -m repro.parallel --n 2048 --threads 4
	$(PYTHON) -m repro.trace validate $(PARALLEL_TRACE_OUT)
	@echo "worker-lane trace written to $(PARALLEL_TRACE_OUT) — open in ui.perfetto.dev"

serve-smoke:  # protocol tests, then a self-checking multi-tenant load with a trace
	$(PYTHON) -m pytest tests/serve -q
	$(PYTHON) -m repro.serve --smoke --smoke-tenants 4 --trace $(SERVE_TRACE_OUT)
	$(PYTHON) -m repro.trace validate $(SERVE_TRACE_OUT)
	@echo "serve trace written to $(SERVE_TRACE_OUT) — open in ui.perfetto.dev"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

bench-compile:  # serial vs. parallel tuner compile wall-clock (buildd)
	$(PYTHON) -m pytest benchmarks/test_compile_throughput.py -p no:benchmark -q -s

bench-serve:  # multi-tenant serving throughput + tail latency (writes BENCH_serve.json)
	$(PYTHON) -m pytest benchmarks/test_serve_throughput.py -p no:benchmark -q -s

bench-shapes:  # the paper-shape assertions (who wins, by how much)
	$(PYTHON) -m pytest benchmarks/ -p no:benchmark -q -k "shape or correctness or results or identical or agree"

bench-full:
	REPRO_BENCH_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only -q

report:
	$(PYTHON) benchmarks/report.py

report-full:
	$(PYTHON) benchmarks/report.py --full

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex ==="; \
		$(PYTHON) $$ex || exit 1; \
	done

clean:
	rm -rf /tmp/repro-terra-$$(id -u) .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
