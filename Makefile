# Convenience targets for the Terra reproduction.

PYTHON ?= python3

.PHONY: install test bench report examples clean

install:
	$(PYTHON) -m pip install -e .

test:
	$(PYTHON) -m pytest tests/ -q

test-verbose:
	$(PYTHON) -m pytest tests/ -v

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

bench-shapes:  # the paper-shape assertions (who wins, by how much)
	$(PYTHON) -m pytest benchmarks/ -p no:benchmark -q -k "shape or correctness or results or identical or agree"

bench-full:
	REPRO_BENCH_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only -q

report:
	$(PYTHON) benchmarks/report.py

report-full:
	$(PYTHON) benchmarks/report.py --full

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex ==="; \
		$(PYTHON) $$ex || exit 1; \
	done

clean:
	rm -rf /tmp/repro-terra-$$(id -u) .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
