"""Differential suite for the three schedule workload families.

Contract (ISSUE 10): for every family, every legal schedule point must
produce output *bit-identical* (floats compared exactly) to the
unscheduled kernel on the same backend — across pipeline levels 0–3 on
a representative point, and across the full ``schedule_points()`` sweep
at the default level on both backends."""

import numpy as np
import pytest

from repro import get_backend
from repro.apps import attention, dequant, scan
from repro.passes.manager import pipeline_override

LEVELS = [0, 1, 2, 3]
BACKENDS = ["interp", "c"]


# -- family runners ---------------------------------------------------------------
# Each builds a fresh kernel for (schedule, backend), runs it on fixed
# deterministic inputs, and returns the output array.  Sizes are small
# (interp runs them too) and deliberately non-divisible by the block/
# unroll/vector sizes in schedule_points, so clamp/remainder/epilogue
# paths all execute.

def run_attention(schedule, backend, n=11, D=16):
    rng = np.random.RandomState(42)
    q = rng.rand(n, D).astype(np.float32)
    k = rng.rand(n, D).astype(np.float32)
    v = rng.rand(n, D).astype(np.float32)
    o = np.zeros((n, D), dtype=np.float32)
    kern = attention.make_attention(D=D, schedule=schedule)
    if schedule and schedule.parallel is not None:
        kern(n, q, k, v, o)  # host-side chunked dispatch (C backend)
    else:
        kern.compile(get_backend(backend))(n, q, k, v, o)
    return o


def run_dequant(schedule, backend, n=9, m=20, kk=7):
    rng = np.random.RandomState(43)
    a = rng.rand(n, kk).astype(np.float32)
    b = rng.randint(-128, 128, size=(kk, m)).astype(np.int8)
    c = np.zeros((n, m), dtype=np.float32)
    kern = dequant.make_dequant_gemm(schedule=schedule)
    args = (n, m, kk, a, b, 0.037, c)
    if schedule and schedule.parallel is not None:
        kern(*args)
    else:
        kern.compile(get_backend(backend))(*args)
    return c


def run_scan(schedule, backend, n=13, R=16):
    rng = np.random.RandomState(44)
    x = rng.rand(n, R).astype(np.float32)
    out = np.zeros((n, R), dtype=np.float32)
    kern = scan.make_scan(R=R, schedule=schedule)
    kern.compile(get_backend(backend))(n, x, out)
    return out


FAMILIES = {
    "attention": (run_attention, attention.schedule_points(),
                  attention.reference, 1e-4),
    "dequant": (run_dequant, dequant.schedule_points(),
                dequant.reference, 1e-2),
    "scan": (run_scan, scan.schedule_points(),
             scan.reference, 1e-3),
}

#: one representative point per family for the level sweep — combines
#: splitting, unrolling, and vectorization so every lowering phase runs
#: under every pipeline level
LEVEL_POINT = {
    "attention": attention.schedule_points()[4],
    "dequant": dequant.schedule_points()[4],
    "scan": scan.schedule_points()[3],
}


def family_params():
    for fam, (_, points, _, _) in FAMILIES.items():
        for p in points:
            yield pytest.param(fam, p, id=f"{fam}-{p.key()}")


class TestDifferential:
    @pytest.mark.parametrize("fam,point", list(family_params()))
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_point_bit_identical(self, fam, point, backend):
        run, _, _, _ = FAMILIES[fam]
        naive = run(None, backend)
        assert np.array_equal(run(point, backend), naive), point.key()

    @pytest.mark.parametrize("fam", list(FAMILIES))
    @pytest.mark.parametrize("level", LEVELS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_levels_bit_identical(self, fam, level, backend):
        """Scheduling happens before any pipeline level, so the
        scheduled/naive equality holds at every level 0–3."""
        run, _, _, _ = FAMILIES[fam]
        with pipeline_override(level):
            naive = run(None, backend)
            got = run(LEVEL_POINT[fam], backend)
        assert np.array_equal(got, naive)

    @pytest.mark.parametrize("fam", list(FAMILIES))
    def test_backends_agree(self, fam):
        """interp and C are bit-identical on these kernels (same float32
        operation chains; attention's expf is libm on both paths)."""
        run, _, _, _ = FAMILIES[fam]
        assert np.array_equal(run(None, "interp"), run(None, "c"))


class TestAgainstReference:
    """Sanity: the naive kernels compute the right thing (float64 numpy
    reference within tolerance — not bit-identity)."""

    def test_attention(self):
        n, D = 11, 16
        rng = np.random.RandomState(42)
        q = rng.rand(n, D).astype(np.float32)
        k = rng.rand(n, D).astype(np.float32)
        v = rng.rand(n, D).astype(np.float32)
        got = run_attention(None, "c")
        assert np.allclose(got, attention.reference(q, k, v), atol=1e-4)

    def test_dequant(self):
        n, m, kk = 9, 20, 7
        rng = np.random.RandomState(43)
        a = rng.rand(n, kk).astype(np.float32)
        b = rng.randint(-128, 128, size=(kk, m)).astype(np.int8)
        got = run_dequant(None, "c")
        assert np.allclose(got, dequant.reference(a, b, 0.037), atol=1e-2)

    def test_scan(self):
        rng = np.random.RandomState(44)
        x = rng.rand(13, 16).astype(np.float32)
        got = run_scan(None, "c")
        assert np.allclose(got, scan.reference(x), atol=1e-3)

    def test_scan_handles_n1(self):
        for sched in [None, scan.schedule_points()[1]]:
            x = np.arange(16, dtype=np.float32).reshape(1, 16)
            out = np.zeros_like(x)
            scan.make_scan(R=16, schedule=sched)(1, x, out)
            assert np.array_equal(out, x)
