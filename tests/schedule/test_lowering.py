"""Schedule lowering: rewrite shapes, strict-mode rejection matrix,
apply() misuse, the env kill-switch, Parallel dispatch, and the
vectorizer-bailout accounting regression (one bail per *original* loop,
not per generated tile/unroll instance — PR 8 semantics)."""

import numpy as np
import pytest

from repro import get_backend, terra
from repro.core import tast
from repro.errors import ScheduleError
from repro.passes.manager import run_pipeline
from repro.passes.vectorize import VectorizePass
from repro.schedule import (Block, Pack, Parallel, Schedule, Tile, Unroll,
                            Vectorize, apply, fuzz_schedule)
from repro.trace.metrics import registry

SAXPY = """
terra saxpy(n : int64, a : float, x : &float, y : &float) : {}
  for i = 0, n do
    y[i] = a * x[i] + y[i]
  end
end
"""

ADDMAT = """
terra addmat(n : int64, m : int64, a : &float, b : &float,
             c : &float) : {}
  for i = 0, n do
    for j = 0, m do
      c[i * m + j] = a[i * m + j] + b[i * m + j]
    end
  end
end
"""

ADDMAT_ROWPTR = """
terra addrows(n : int64, m : int64, a : &float, b : &float,
              c : &float) : {}
  for i = 0, n do
    var arow = a + i * m
    var brow = b + i * m
    var crow = c + i * m
    for j = 0, m do
      crow[j] = arow[j] + brow[j]
    end
  end
end
"""


def build(src, schedule=None, env=None):
    fn = terra(src, env=env or {})
    if schedule is not None:
        return apply(fn, schedule)
    return fn


def lower(kernel):
    """Typecheck and run only the schedule stage (level 0 = no other
    passes); returns the typed function for shape inspection."""
    kernel.ensure_typechecked()
    run_pipeline(kernel.typed, 0)
    return kernel.typed


def for_loops(body):
    return [n for n in tast.walk(body) if isinstance(n, tast.TForNum)]


def loop_names(body):
    return [lp.symbol.displayname for lp in for_loops(body)]


class TestRewriteShape:
    def test_block_splits_into_chunk_plus_clamped_inner(self):
        typed = lower(build(SAXPY, Schedule([Block("i", 8)])))
        names = loop_names(typed.body)
        assert names == ["i_o", "i"]
        # the chunked-entry contract: final top-level stmt stays a loop
        assert isinstance(typed.body.statements[-1], tast.TForNum)

    def test_unroll_emits_main_plus_remainder(self):
        typed = lower(build(SAXPY, Schedule([Unroll("i", 4)])))
        loops = for_loops(typed.body)
        assert len(loops) == 2
        main, rem = loops
        assert main.step is not None and main.step.value == 4
        assert rem.step is None or rem.step.value == 1

    def test_vectorize_marks_generated_loops(self):
        typed = lower(build(SAXPY, Schedule([Vectorize("i", 8)])))
        assert any(getattr(lp, "_vec_generated", False)
                   for lp in for_loops(typed.body))

    def test_tile_interchanges_chunk_loops_outside(self):
        typed = lower(build(ADDMAT, Schedule([Tile(("i", "j"), (4, 8))])))
        names = loop_names(typed.body)
        # both chunk loops run outside both intra-tile loops
        assert names.index("i_o") < names.index("i")
        assert names.index("j_o") < names.index("j")
        assert names.index("j_o") < names.index("i")

    def test_lowering_is_idempotent_per_function(self):
        k = build(SAXPY, Schedule([Block("i", 8)]))
        typed = lower(k)
        shape = loop_names(typed.body)
        run_pipeline(typed, 0)  # second entry must not re-lower
        assert loop_names(typed.body) == shape


class TestBitIdentity:
    """Every legal rewrite is exact: scheduled output equals naive
    output bit-for-bit on the same backend."""

    N, M = 37, 13

    def _saxpy(self, schedule, backend):
        rng = np.random.RandomState(7)
        x = rng.rand(self.N).astype(np.float32)
        y = rng.rand(self.N).astype(np.float32)
        h = build(SAXPY, schedule).compile(get_backend(backend))
        h(self.N, 1.5, x, y)
        return y

    def _addmat(self, schedule, backend):
        rng = np.random.RandomState(8)
        a = rng.rand(self.N * self.M).astype(np.float32)
        b = rng.rand(self.N * self.M).astype(np.float32)
        c = np.zeros(self.N * self.M, dtype=np.float32)
        h = build(ADDMAT, schedule).compile(get_backend(backend))
        h(self.N, self.M, a, b, c)
        return c

    @pytest.mark.parametrize("schedule", [
        Schedule([Block("i", 8)]),
        Schedule([Unroll("i", 3)]),
        Schedule([Vectorize("i", 8)]),
        Schedule([Block("i", 8), Unroll("i", 2)]),
    ], ids=lambda s: s.key())
    @pytest.mark.parametrize("backend", ["interp", "c"])
    def test_saxpy_points(self, schedule, backend):
        naive = self._saxpy(None, backend)
        assert np.array_equal(self._saxpy(schedule, backend), naive)

    @pytest.mark.parametrize("schedule", [
        Schedule([Tile(("i", "j"), (4, 8))]),
        Schedule([Tile(("i", "j"), (8, 4)), Unroll("j", 2)]),
        Schedule([Block("j", 5)]),
    ], ids=lambda s: s.key())
    @pytest.mark.parametrize("backend", ["interp", "c"])
    def test_addmat_points(self, schedule, backend):
        naive = self._addmat(None, backend)
        assert np.array_equal(self._addmat(schedule, backend), naive)


class TestStrictRejection:
    """Nest-dependent conflicts raise ScheduleError at lowering time,
    naming the offending directive."""

    def expect(self, src, schedule, match):
        k = build(src, schedule)
        with pytest.raises(ScheduleError, match=match):
            lower(k)

    def test_unknown_axis(self):
        self.expect(SAXPY, Schedule([Block("k", 8)]), "not found")

    def test_ambiguous_axis(self):
        two_i = """
        terra two(n : int64, x : &float) : {}
          for i = 0, n do x[i] = x[i] + 1.0f end
          for i = 0, n do x[i] = x[i] * 2.0f end
        end
        """
        self.expect(two_i, Schedule([Block("i", 8)]), "ambiguous")

    def test_vectorize_not_innermost(self):
        self.expect(ADDMAT, Schedule([Vectorize("i", 8)]),
                    "not innermost")

    def test_vectorize_bailing_body(self):
        fsum = """
        terra fsum(n : int64, x : &float, out : &float) : {}
          var acc = 0.0f
          for i = 0, n do acc = acc + x[i] end
          out[0] = acc
        end
        """
        self.expect(fsum, Schedule([Vectorize("i", 8)]),
                    "vectorizer bailed")

    def test_tile_imperfect_nest(self):
        self.expect(ADDMAT_ROWPTR, Schedule([Tile(("i", "j"), (4, 4))]),
                    "perfect nest")

    def test_tile_wrong_order(self):
        self.expect(ADDMAT, Schedule([Tile(("j", "i"), (4, 4))]),
                    "perfect nest")

    def test_parallel_not_final_loop(self):
        self.expect(ADDMAT, Schedule([Parallel("j")]),
                    "final top-level loop")

    def test_parallel_computed_bounds(self):
        scaled = """
        terra scaled(n : int64, x : &float) : {}
          for i = 0, n * 2 do x[i] = x[i] + 1.0f end
        end
        """
        self.expect(scaled, Schedule([Parallel("i")]),
                    "constants or whole parameters")

    def test_non_unit_step(self):
        stepped = """
        terra stepped(n : int64, x : &float) : {}
          for i = 0, n, 2 do x[i] = x[i] + 1.0f end
        end
        """
        self.expect(stepped, Schedule([Block("i", 8)]), "non-unit step")

    def test_break_in_body(self):
        breaky = """
        terra breaky(n : int64, x : &float) : {}
          for i = 0, n do
            if x[i] > 10.0f then break end
            x[i] = x[i] + 1.0f
          end
        end
        """
        self.expect(breaky, Schedule([Block("i", 8)]), "break")

    def test_error_names_the_directive(self):
        k = build(SAXPY, Schedule([Block("z", 8)]))
        with pytest.raises(ScheduleError, match=r"Block\('z', 8\)"):
            lower(k)


class TestApplyMisuse:
    def test_after_typecheck(self):
        fn = terra(SAXPY, env={})
        fn.ensure_typechecked()
        with pytest.raises(ScheduleError, match="already typechecked"):
            apply(fn, Schedule([Block("i", 8)]))

    def test_double_apply(self):
        fn = terra(SAXPY, env={})
        apply(fn, Schedule([Block("i", 8)]))
        with pytest.raises(ScheduleError, match="already has a schedule"):
            apply(fn, Schedule([Unroll("i", 2)]))

    def test_non_terra_function(self):
        with pytest.raises(ScheduleError):
            apply(lambda n: n, Schedule([Block("i", 8)]))

    def test_strict_pack_rejected(self):
        fn = terra(SAXPY, env={})
        with pytest.raises(ScheduleError, match="Pack"):
            apply(fn, Schedule([Pack("x", "panel")]))

    def test_bare_directive_shorthand(self):
        k = apply(terra(SAXPY, env={}), Block("i", 8))
        assert k.schedule == Schedule([Block("i", 8)])

    def test_scheduled_kernel_delegates(self):
        k = apply(terra(SAXPY, env={}), Block("i", 8))
        assert k.name == "saxpy"
        assert "saxpy" in repr(k) and "Block" in repr(k)


class TestEnvDisable:
    def test_disable_skips_lowering(self, monkeypatch):
        monkeypatch.setenv("REPRO_TERRA_SCHEDULE_DISABLE", "1")
        typed = lower(build(SAXPY, Schedule([Block("i", 8)])))
        assert loop_names(typed.body) == ["i"]  # untouched

    def test_disable_dispatches_serially(self, monkeypatch):
        monkeypatch.setenv("REPRO_TERRA_SCHEDULE_DISABLE", "1")
        k = build(SAXPY, Schedule([Parallel("i")]))
        x = np.ones(8, dtype=np.float32)
        y = np.ones(8, dtype=np.float32)
        k(8, 2.0, x, y)  # serial fallback, no chunked entry required
        assert np.array_equal(y, np.full(8, 3.0, dtype=np.float32))


class TestParallelDispatch:
    def test_parallel_matches_serial(self):
        n = 133
        rng = np.random.RandomState(11)
        x = rng.rand(n).astype(np.float32)
        y0 = rng.rand(n).astype(np.float32)
        y1 = y0.copy()
        build(SAXPY).compile(get_backend("c"))(n, 1.5, x, y0)
        k = build(SAXPY, Schedule([Block("i", 16), Parallel("i")]))
        k(n, 1.5, x, y1)  # host-side parallel_for over the chunked entry
        assert np.array_equal(y1, y0)

    def test_grain_comes_from_split(self):
        k = build(SAXPY, Schedule([Block("i", 16), Parallel("i")]))
        assert k.schedule.split_size("i") == 16
        assert k.fn.emit_chunk


class TestLenient:
    def test_fuzz_schedule_skips_missing_axes(self):
        before = registry().get("sched.skipped")
        typed = lower(build(SAXPY, fuzz_schedule()))
        # "i" blocked; i1/i2/i3 skipped without error
        assert "i_o" in loop_names(typed.body)
        assert registry().get("sched.skipped") - before >= 3

    def test_lenient_applies_to_all_matching_loops(self):
        two_i = """
        terra two(n : int64, x : &float) : {}
          for i = 0, n do x[i] = x[i] + 1.0f end
          for i = 0, n do x[i] = x[i] * 2.0f end
        end
        """
        typed = lower(build(two_i, Schedule([Block("i", 3)],
                                            strict=False)))
        assert loop_names(typed.body).count("i_o") == 2

    def test_lenient_identical_results(self):
        n = 29
        rng = np.random.RandomState(13)
        x = rng.rand(n).astype(np.float32)
        y0 = rng.rand(n).astype(np.float32)
        y1 = y0.copy()
        build(SAXPY).compile(get_backend("c"))(n, 1.5, x, y0)
        sk = build(SAXPY, fuzz_schedule())
        sk.compile(get_backend("c"))(n, 1.5, x, y1)
        assert np.array_equal(y1, y0)


class TestBailoutAccounting:
    """Regression: schedule-generated loop copies share one bailout.

    PR 8's contract is one ``vec.bailouts`` tick per loop the programmer
    wrote.  Block/Unroll turn one loop into several instances that all
    still run the same body; without origin dedup a single bailing loop
    would count once per instance."""

    BAIL = """
    terra bail(n : int64, a : &int, b : &int, c : &int) : {}
      for i = 0, n do
        c[i] = a[i] / b[i]
      end
    end
    """

    TWO_BAILS = """
    terra two(n : int64, a : &int, b : &int, c : &int) : {}
      for i = 0, n do
        c[i] = a[i] / b[i]
      end
      for j = 0, n do
        c[j] = a[j] / b[j]
      end
    end
    """

    def bail_delta(self, src, schedule=None):
        k = build(src, schedule)
        typed = lower(k)
        before = registry().get("vec.bailouts")
        VectorizePass().run(typed)
        return registry().get("vec.bailouts") - before

    def test_plain_loop_counts_one(self):
        assert self.bail_delta(self.BAIL) == 1

    @pytest.mark.parametrize("schedule", [
        Schedule([Unroll("i", 2)]),
        Schedule([Block("i", 3)]),
        Schedule([Block("i", 8), Unroll("i", 2)]),
    ], ids=lambda s: s.key())
    def test_split_loop_still_counts_one(self, schedule):
        assert self.bail_delta(self.BAIL, schedule) == 1

    def test_distinct_loops_still_count_separately(self):
        assert self.bail_delta(self.TWO_BAILS) == 2

    def test_split_plus_plain_counts_two(self):
        assert self.bail_delta(self.TWO_BAILS,
                               Schedule([Unroll("i", 2)])) == 2
