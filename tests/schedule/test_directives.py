"""Construction-time contract of repro.schedule: directive validation,
schedule-internal conflict detection, and the inspectable/hashable
object surface (key/eq/hash/split_size/partition)."""

import pytest

from repro.errors import ScheduleError
from repro.schedule import (Block, Pack, Parallel, Schedule, Tile, Unroll,
                            Vectorize, axes_of, fuzz_schedule)


class TestDirectiveValidation:
    @pytest.mark.parametrize("bad", [0, 1, -4, 2.5, "8", None])
    def test_block_size(self, bad):
        with pytest.raises(ScheduleError):
            Block("i", bad)

    @pytest.mark.parametrize("bad", [0, 1, -2, 4.0, "2"])
    def test_unroll_factor(self, bad):
        with pytest.raises(ScheduleError):
            Unroll("i", bad)

    @pytest.mark.parametrize("bad", [1, 3, 6, -8, 2.0])
    def test_vectorize_width_must_be_zero_or_pow2(self, bad):
        with pytest.raises(ScheduleError):
            Vectorize("i", bad)

    @pytest.mark.parametrize("ok", [0, 2, 4, 8, 16])
    def test_vectorize_width_accepts(self, ok):
        assert Vectorize("i", ok).width == ok

    @pytest.mark.parametrize("bad_axis", ["", 3, None, b"i"])
    def test_axis_must_be_name(self, bad_axis):
        with pytest.raises(ScheduleError):
            Block(bad_axis, 8)

    def test_tile_needs_two_axes(self):
        with pytest.raises(ScheduleError):
            Tile(("i",), (8,))

    def test_tile_length_mismatch(self):
        with pytest.raises(ScheduleError):
            Tile(("i", "j"), (8,))

    def test_tile_duplicate_axes(self):
        with pytest.raises(ScheduleError):
            Tile(("i", "i"), (8, 8))

    def test_tile_bad_size(self):
        with pytest.raises(ScheduleError):
            Tile(("i", "j"), (8, 1))

    def test_tile_coerces_sequences(self):
        t = Tile(["i", "j"], [16, 8])
        assert t.axes == ("i", "j") and t.sizes == (16, 8)

    def test_pack_layouts(self):
        assert Pack("b").layout == "panel"
        assert Pack("b", "tile").layout == "tile"
        with pytest.raises(ScheduleError):
            Pack("b", "diagonal")
        with pytest.raises(ScheduleError):
            Pack("")

    def test_parallel_nthreads(self):
        assert Parallel("i").nthreads == 0
        with pytest.raises(ScheduleError):
            Parallel("i", -1)

    def test_errors_name_the_directive(self):
        with pytest.raises(ScheduleError, match="Block"):
            Block("i", 1)
        with pytest.raises(ScheduleError, match="Unroll"):
            Unroll("j", 0)
        with pytest.raises(ScheduleError, match="Vectorize"):
            Vectorize("k", 3)

    def test_axes_of(self):
        assert axes_of(Block("i", 8)) == ("i",)
        assert axes_of(Tile(("i", "j"), (4, 4))) == ("i", "j")
        assert axes_of(Pack("b")) == ()


class TestScheduleConflicts:
    def test_two_blocks_one_axis(self):
        with pytest.raises(ScheduleError, match="already split"):
            Schedule([Block("i", 8), Block("i", 16)])

    def test_block_vs_tile_one_axis(self):
        with pytest.raises(ScheduleError, match="already split"):
            Schedule([Tile(("i", "j"), (8, 8)), Block("j", 4)])

    def test_vectorize_plus_unroll_same_axis(self):
        with pytest.raises(ScheduleError, match="Vectorize and Unroll"):
            Schedule([Vectorize("i", 8), Unroll("i", 2)])

    def test_vectorize_plus_unroll_different_axes_ok(self):
        s = Schedule([Vectorize("j", 8), Unroll("i", 2)])
        assert len(s) == 2

    def test_two_parallels(self):
        with pytest.raises(ScheduleError, match="one Parallel"):
            Schedule([Parallel("i"), Parallel("j")])

    @pytest.mark.parametrize("other", [Vectorize("i", 8), Unroll("i", 2)])
    def test_parallel_axis_conflicts(self, other):
        with pytest.raises(ScheduleError, match="thread-dispatch"):
            Schedule([Parallel("i"), other])

    def test_duplicate_pack_operand(self):
        with pytest.raises(ScheduleError, match="already packed"):
            Schedule([Pack("b", "panel"), Pack("b", "tile")])

    def test_duplicate_directive(self):
        with pytest.raises(ScheduleError, match="duplicate"):
            Schedule([Unroll("i", 2), Unroll("i", 4)])

    def test_non_directive_rejected(self):
        with pytest.raises(ScheduleError, match="directives"):
            Schedule(["Block(i,8)"])

    def test_parallel_plus_block_same_axis_ok(self):
        # Block sets the dispatch grain; that combination is the point
        s = Schedule([Block("i", 64), Parallel("i")])
        assert s.split_size("i") == 64 and s.parallel is not None


class TestScheduleObject:
    def test_hashable_and_eq(self):
        a = Schedule([Block("i", 8), Vectorize("j", 4)])
        b = Schedule([Block("i", 8), Vectorize("j", 4)])
        c = Schedule([Block("i", 8)])
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != Schedule([Block("i", 8), Vectorize("j", 4)],
                             strict=False)
        assert len({a, b, c}) == 2

    def test_immutable(self):
        s = Schedule([Block("i", 8)])
        with pytest.raises(AttributeError):
            s.directives = ()
        with pytest.raises(Exception):
            Block("i", 8).size = 4

    def test_key(self):
        assert Schedule([]).key() == "naive"
        key = Schedule([Block("i", 8), Unroll("j", 2)]).key()
        assert "Block('i', 8)" in key and "Unroll('j', 2)" in key
        assert key.count("|") == 1

    def test_split_size(self):
        s = Schedule([Block("i", 32), Tile(("j", "k"), (8, 4))])
        assert s.split_size("i") == 32
        assert s.split_size("j") == 8
        assert s.split_size("k") == 4
        assert s.split_size("z") == 1

    def test_partition_and_views(self):
        s = Schedule([Pack("b"), Block("i", 8), Parallel("i")],
                     strict=False)
        packs, rest = s.partition(lambda d: isinstance(d, Pack))
        assert [type(d).__name__ for d in packs] == ["Pack"]
        assert [type(d).__name__ for d in rest] == ["Block", "Parallel"]
        assert rest.strict is False
        assert s.packs == [Pack("b")]
        assert s.parallel == Parallel("i")
        assert s.without_packs() == rest
        assert s.of_kind(Block) == [Block("i", 8)]

    def test_bool_and_iter(self):
        assert not Schedule([])
        s = Schedule([Block("i", 8)])
        assert s and list(s) == [Block("i", 8)]

    def test_fuzz_schedule_is_lenient(self):
        s = fuzz_schedule()
        assert s.strict is False
        assert all(isinstance(d, Block) for d in s)
