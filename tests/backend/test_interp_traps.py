"""Interpreter trap tests: the checked memory model turns C undefined
behaviour into :class:`TrapError` — the point of the reference backend."""

import pytest

from repro import includec, terra
from repro.errors import TrapError

std = includec("stdlib.h")


def interp(fn):
    return fn.compile("interp")


class TestMemoryTraps:
    def test_null_deref(self):
        f = terra("""
        terra f() : int
          var p : &int = nil
          return @p
        end
        """)
        with pytest.raises(TrapError, match="NULL"):
            interp(f)()

    def test_out_of_bounds_heap(self):
        f = terra("""
        terra f() : int
          var p = [&int](std.malloc(4 * 4))
          var v = p[10]
          std.free(p)
          return v
        end
        """)
        with pytest.raises(TrapError, match="overrun|unmapped"):
            interp(f)()

    def test_use_after_free(self):
        f = terra("""
        terra f() : int
          var p = [&int](std.malloc(16))
          p[0] = 5
          std.free(p)
          return p[0]
        end
        """)
        with pytest.raises(TrapError, match="freed"):
            interp(f)()

    def test_double_free(self):
        f = terra("""
        terra f() : {}
          var p = std.malloc(16)
          std.free(p)
          std.free(p)
        end
        """)
        with pytest.raises(TrapError, match="double free|freed"):
            interp(f)()

    def test_dangling_stack_pointer(self):
        f = terra("""
        terra inner() : &int
          var local_var = 5
          return &local_var
        end
        terra f() : int
          return @inner()
        end
        """)
        with pytest.raises(TrapError, match="freed"):
            interp(f.f)()

    def test_array_index_oob(self):
        f = terra("""
        terra f(i : int) : int
          var a : int[4]
          a[0] = 1
          return a[i]
        end
        """)
        assert interp(f)(0) == 1
        with pytest.raises(TrapError, match="out of bounds"):
            interp(f)(9)


class TestArithmeticTraps:
    def test_integer_div_by_zero(self):
        f = terra("terra f(a : int, b : int) : int return a / b end")
        with pytest.raises(TrapError, match="division by zero"):
            interp(f)(1, 0)

    def test_integer_mod_by_zero(self):
        f = terra("terra f(a : int, b : int) : int return a % b end")
        with pytest.raises(TrapError, match="modulo by zero"):
            interp(f)(1, 0)


class TestLibcTraps:
    def test_abort(self):
        f = terra("terra f() : {} std.abort() end")
        with pytest.raises(TrapError, match="abort"):
            interp(f)()

    def test_missing_return(self):
        f = terra("""
        terra f(x : int) : int
          if x > 0 then return 1 end
        end
        """)
        assert interp(f)(1) == 1
        with pytest.raises(TrapError, match="without returning"):
            interp(f)(-1)

    def test_call_depth_guard(self):
        f = terra("""
        terra f(n : int) : int
          if n == 0 then return 0 end
          return f(n - 1)
        end
        """)
        with pytest.raises(TrapError, match="depth"):
            interp(f)(100000)
