"""ABI cross-validation: our layout engine vs what gcc actually computes.

For randomized struct layouts (mixed field types, unions), a staged Terra
function computes each field's offset with pointer arithmetic *inside
compiled code*; the result must equal ``StructType.offsetof`` — i.e. the
Python-side layout used by the interpreter, the FFI and ``saveobj``
headers agrees byte-for-byte with the C compiler.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import quote_, struct, symbol, terra
from repro.core import types as T

FIELD_TYPES = [T.int8, T.int16, T.int32, T.int64, T.uint8, T.uint32,
               T.float32, T.float64, T.pointer(T.int8),
               T.array(T.int16, 3), T.array(T.float64, 2)]

_counter = [0]


def _offsets_via_gcc(S: T.StructType) -> dict[str, int]:
    """Compile one function per field returning &s.f - &s."""
    _counter[0] += 1
    fns = {}
    for entry in S.entries:
        s = symbol(T.pointer(S), "s")
        fns[entry.field] = terra("""
        terra([s]) : int64
          return [int64](&[s].[fname]) - [int64]([s])
        end
        """, env={"s": s, "fname": entry.field, "S": S})
    sizer = terra("terra() : int64 return [int64](sizeof(S)) end",
                  env={"S": S})
    import ctypes
    buf = ctypes.create_string_buffer(max(S.sizeof(), 1) + 64)
    base = (ctypes.addressof(buf) + 63) & ~63
    return ({field: fn(base) for field, fn in fns.items()},
            sizer())


class TestOffsetsMatchGcc:
    @settings(max_examples=12, deadline=None)
    @given(st.lists(st.sampled_from(FIELD_TYPES), min_size=1, max_size=6))
    def test_plain_struct(self, field_types):
        _counter[0] += 1
        S = T.StructType(f"XS{_counter[0]}")
        for i, ft in enumerate(field_types):
            S.add_entry(f"f{i}", ft)
        measured, size = _offsets_via_gcc(S)
        for field, offset in measured.items():
            assert offset == S.offsetof(field), (field, field_types)
        assert size == S.sizeof()

    @settings(max_examples=8, deadline=None)
    @given(st.lists(st.sampled_from(FIELD_TYPES), min_size=1, max_size=3),
           st.lists(st.sampled_from(FIELD_TYPES), min_size=2, max_size=4))
    def test_struct_with_union(self, prefix, union_members):
        _counter[0] += 1
        S = T.StructType(f"XU{_counter[0]}")
        for i, ft in enumerate(prefix):
            S.add_entry(f"p{i}", ft)
        S.add_union([(f"u{i}", ft) for i, ft in enumerate(union_members)])
        measured, size = _offsets_via_gcc(S)
        for field, offset in measured.items():
            assert offset == S.offsetof(field)
        assert size == S.sizeof()

    def test_vector_field(self):
        S = T.StructType("XV")
        S.add_entry("a", T.int8)
        S.add_entry("v", T.vector(T.float32, 4))
        S.add_entry("b", T.int8)
        measured, size = _offsets_via_gcc(S)
        assert measured["v"] == S.offsetof("v")
        assert measured["b"] == S.offsetof("b")
        assert size == S.sizeof()

    def test_nested_struct_field(self):
        inner = struct("struct XNI { a : int8, b : int64 }")
        S = T.StructType("XNO")
        S.add_entry("head", T.int16)
        S.add_entry("inner", inner)
        S.add_entry("tail", T.int8)
        measured, size = _offsets_via_gcc(S)
        for field, offset in measured.items():
            assert offset == S.offsetof(field)
        assert size == S.sizeof()
