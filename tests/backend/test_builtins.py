"""Interpreter libc builtin tests (printf formatting, strings, files,
math) and cross-backend libc agreement."""

import math

import numpy as np
import pytest

from repro import get_backend, includec, terra

std = includec("stdlib.h")
stdio = includec("stdio.h")
strh = includec("string.h")
mathh = includec("math.h")


def interp_machine():
    return get_backend("interp").machine


class TestPrintf:
    def run_printf(self, fmt, *terra_args_source):
        machine = interp_machine()
        machine.stdout_chunks.clear()
        args = ", ".join(terra_args_source)
        sep = ", " if args else ""
        f = terra(f"""
        terra f() : {{}}
          stdio.printf('{fmt}'{sep}{args})
        end
        """, env={"stdio": stdio})
        f.compile("interp")()
        return "".join(machine.stdout_chunks)

    def test_int(self, capsys):
        assert self.run_printf("%d|%05d|%x", "42", "7", "255") \
            == "42|00007|ff"
        capsys.readouterr()

    def test_float(self, capsys):
        assert self.run_printf("%.2f|%g", "3.14159", "0.5") == "3.14|0.5"
        capsys.readouterr()

    def test_string_and_char(self, capsys):
        assert self.run_printf("%s=%c", "'abc'", "65") == "abc=A"
        capsys.readouterr()

    def test_percent_literal(self, capsys):
        assert self.run_printf("100%%") == "100%"
        capsys.readouterr()

    def test_long_modifier(self, capsys):
        out = self.run_printf("%ld", "[int64](1) << 40")
        assert out == str(1 << 40)
        capsys.readouterr()


class TestStrings:
    @pytest.mark.parametrize("backend_name", ["c", "interp"])
    def test_strcmp(self, backend_name):
        f = terra("""
        terra f() : int
          return strh.strcmp('abc', 'abc')
        end
        """, env={"strh": strh})
        assert f.compile(backend_name)() == 0

    @pytest.mark.parametrize("backend_name", ["c", "interp"])
    def test_strcpy_strlen(self, backend_name):
        f = terra("""
        terra f() : int64
          var buf = [&int8](std.malloc(32))
          strh.strcpy(buf, 'hello')
          var n = [int64](strh.strlen(buf))
          std.free(buf)
          return n
        end
        """, env={"strh": strh, "std": std})
        assert f.compile(backend_name)() == 5

    @pytest.mark.parametrize("backend_name", ["c", "interp"])
    def test_memcmp_memcpy(self, backend_name):
        f = terra("""
        terra f() : int
          var a = [&int8](std.malloc(8))
          var b = [&int8](std.malloc(8))
          strh.strcpy(a, 'passed!')
          strh.memcpy(b, a, 8)
          var r = strh.memcmp(a, b, 8)
          std.free(a) std.free(b)
          return r
        end
        """, env={"strh": strh, "std": std})
        assert f.compile(backend_name)() == 0


class TestFiles:
    @pytest.mark.parametrize("backend_name", ["c", "interp"])
    def test_write_read_roundtrip(self, backend_name, tmp_path):
        path = str(tmp_path / f"io_{backend_name}.bin")
        f = terra("""
        terra wr(path : rawstring) : bool
          var fh = stdio.fopen(path, 'wb')
          if fh == nil then return false end
          var data : int32[4]
          for i = 0, 4 do data[i] = i * 11 end
          stdio.fwrite(&data[0], 4, 4, fh)
          stdio.fclose(fh)
          return true
        end
        terra rd(path : rawstring) : int
          var fh = stdio.fopen(path, 'rb')
          if fh == nil then return -1 end
          var data : int32[4]
          stdio.fread(&data[0], 4, 4, fh)
          stdio.fclose(fh)
          return data[0] + data[1] + data[2] + data[3]
        end
        """, env={"stdio": stdio})
        assert f.wr.compile(backend_name)(path) is True
        assert f.rd.compile(backend_name)(path) == 0 + 11 + 22 + 33

    def test_fopen_missing(self):
        f = terra("""
        terra f() : bool
          return stdio.fopen('/no/such/file', 'rb') == nil
        end
        """, env={"stdio": stdio})
        assert f.compile("interp")() is True


class TestMath:
    CASES = [("sqrt", 2.0), ("exp", 1.0), ("log", 2.718281828),
             ("sin", 0.5), ("cos", 0.5), ("floor", 2.7), ("ceil", 2.3),
             ("fabs", -3.5)]

    @pytest.mark.parametrize("name,arg", CASES)
    def test_double_agree(self, name, arg):
        f = terra(f"""
        terra f(x : double) : double
          return mathh.{name}(x)
        end
        """, env={"mathh": mathh})
        c_val = f.compile("c")(arg)
        i_val = f.compile("interp")(arg)
        assert c_val == pytest.approx(i_val, rel=1e-15)
        assert c_val == pytest.approx(getattr(math, name.replace("fabs", "fabs"), abs)(arg)
                                      if name != "fabs" else abs(arg))

    def test_pow_fmod(self):
        f = terra("""
        terra f(a : double, b : double) : double
          return mathh.pow(a, b) + mathh.fmod(a, b)
        end
        """, env={"mathh": mathh})
        expected = math.pow(2.5, 1.5) + math.fmod(2.5, 1.5)
        assert f.compile("c")(2.5, 1.5) == pytest.approx(expected)
        assert f.compile("interp")(2.5, 1.5) == pytest.approx(expected)


class TestRand:
    def test_deterministic_with_seed(self):
        f = terra("""
        terra f(seed : uint32) : int
          std.srand(seed)
          return std.rand()
        end
        """, env={"std": std})
        h = f.compile("interp")
        assert h(42) == h(42)
        assert h(42) != h(43)
        assert 0 <= h(1) < 2**31
