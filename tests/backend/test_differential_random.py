"""Randomized differential testing: hypothesis-generated Terra programs
must compute identical results on the gcc backend and the reference
interpreter.

The generator produces closed integer/float programs (expressions,
assignments, if/for control flow) that are trap-free by construction:
divisors are forced nonzero, shift counts are small constants, and loop
counts are bounded.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import get_backend, terra

# -- expression generator -----------------------------------------------------------

_INT_BIN = ["+", "-", "*", "and", "or", "^"]
_CMP = ["<", "<=", "==", "~="]


@st.composite
def int_expr(draw, depth=0):
    """An int32 expression over variables a, b, acc."""
    if depth > 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 3))
        if choice == 0:
            return str(draw(st.integers(-100, 100)))
        return draw(st.sampled_from(["a", "b", "acc"]))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        op = draw(st.sampled_from(_INT_BIN))
        lhs = draw(int_expr(depth + 1))
        rhs = draw(int_expr(depth + 1))
        return f"({lhs} {op} {rhs})"
    if kind == 1:  # safe division: |denominator| >= 1
        num = draw(int_expr(depth + 1))
        den = draw(int_expr(depth + 1))
        return f"({num} / (({den} and 7) + 9))"
    if kind == 2:  # constant shift
        val = draw(int_expr(depth + 1))
        amount = draw(st.integers(0, 7))
        op = draw(st.sampled_from(["<<", ">>"]))
        return f"({val} {op} {amount})"
    # note the space: "--" would start a Lua comment
    return f"(- {draw(int_expr(depth + 1))})"


@st.composite
def cond_expr(draw):
    lhs = draw(int_expr(2))
    rhs = draw(int_expr(2))
    return f"({lhs} {draw(st.sampled_from(_CMP))} {rhs})"


@st.composite
def statements(draw, depth=0):
    out = []
    for _ in range(draw(st.integers(1, 3))):
        kind = draw(st.integers(0, 3 if depth < 2 else 1))
        if kind == 0:
            out.append(f"acc = {draw(int_expr())}")
        elif kind == 1:
            out.append(f"acc = acc + {draw(int_expr(2))}")
        elif kind == 2:
            body = draw(statements(depth + 1))
            orelse = draw(statements(depth + 1))
            out.append(f"if {draw(cond_expr())} then\n{body}\nelse\n"
                       f"{orelse}\nend")
        else:
            body = draw(statements(depth + 1))
            n = draw(st.integers(1, 4))
            out.append(f"for i{depth} = 0, {n} do\n{body}\nend")
    return "\n".join(out)


@st.composite
def int_program(draw):
    body = draw(statements())
    return f"""
terra prog(a : int, b : int) : int
  var acc = a - b
  {body}
  return acc
end
"""


class TestRandomIntPrograms:
    @settings(max_examples=60, deadline=None)
    @given(int_program(),
           st.lists(st.tuples(st.integers(-2**31, 2**31 - 1),
                              st.integers(-2**31, 2**31 - 1)),
                    min_size=2, max_size=4))
    def test_backends_agree(self, source, argsets):
        fn = terra(source, env={})
        hc = fn.compile(get_backend("c"))
        hi = fn.compile(get_backend("interp"))
        for a, b in argsets:
            assert hc(a, b) == hi(a, b), (source, a, b)


@st.composite
def float_expr(draw, depth=0):
    if depth > 3 or draw(st.booleans()):
        if draw(st.booleans()):
            value = draw(st.floats(min_value=-100, max_value=100,
                                   allow_nan=False))
            return repr(round(value, 3))
        return draw(st.sampled_from(["x", "y", "t"]))
    op = draw(st.sampled_from(["+", "-", "*"]))
    return (f"({draw(float_expr(depth + 1))} {op} "
            f"{draw(float_expr(depth + 1))})")


@st.composite
def float_program(draw):
    exprs = [draw(float_expr()) for _ in range(draw(st.integers(1, 3)))]
    body = "\n".join(f"t = {e}" for e in exprs)
    return f"""
terra prog(x : double, y : double) : double
  var t = x * y
  {body}
  return t
end
"""


class TestRandomFloatPrograms:
    @settings(max_examples=40, deadline=None)
    @given(float_program(),
           st.lists(st.tuples(
               st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
               st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)),
               min_size=2, max_size=3))
    def test_backends_agree_bitwise(self, source, argsets):
        """Double arithmetic must agree *bitwise*: both backends perform
        IEEE double operations in the same order (gcc cannot reassociate
        without -ffast-math)."""
        fn = terra(source, env={})
        hc = fn.compile(get_backend("c"))
        hi = fn.compile(get_backend("interp"))
        for x, y in argsets:
            assert hc(x, y) == hi(x, y), (source, x, y)


class TestSignedOverflowWraps:
    """-fwrapv: Terra integer arithmetic wraps (LLVM semantics); gcc must
    not exploit signed-overflow UB."""

    def test_add_overflow(self, backend):
        f = terra("terra f(x : int) : int return x + x end")
        assert f.compile(backend)(2**30 + 5) == ((2**31 + 10) % 2**32) - 2**32

    def test_mul_overflow(self, backend):
        f = terra("terra f(x : int) : int return x * x end")
        h = f.compile(backend)
        assert h(65536) == 0  # 2^32 wraps to 0

    def test_overflow_loop_terminates(self, backend):
        # a classic UB-miscompilation pattern: i > 0 with i overflowing
        f = terra("""
        terra f() : int
          var i : int = 2147483600
          var steps = 0
          while i > 0 do
            i = i + 10
            steps = steps + 1
          end
          return steps
        end
        """)
        assert f.compile(backend)() == 5


class TestRandomFloat32Programs:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from(["+", "-", "*"]), min_size=1,
                    max_size=6),
           st.lists(st.tuples(
               st.floats(min_value=-100, max_value=100, allow_nan=False,
                         width=32),
               st.floats(min_value=-100, max_value=100, allow_nan=False,
                         width=32)),
               min_size=2, max_size=3))
    def test_per_op_rounding_matches(self, ops, argsets):
        """float32 chains round after every operation identically on both
        backends (the gcc backend compiles with -ffp-contract=off)."""
        body = "t"
        for i, op in enumerate(ops):
            operand = ["x", "y", "t", "0.5f"][i % 4]
            body = f"({body} {op} {operand})"
        fn = terra(f"""
        terra prog(x : float, y : float) : float
          var t = x * y
          t = {body}
          return t
        end
        """, env={})
        hc = fn.compile(get_backend("c"))
        hi = fn.compile(get_backend("interp"))
        for x, y in argsets:
            assert hc(x, y) == hi(x, y), (body, x, y)
