"""End-to-end execution tests, run on BOTH backends (differential).

Every test compiles through the ``backend`` fixture (gcc and the reference
interpreter), so any divergence between native semantics and the checked
interpreter is caught here.
"""

import numpy as np
import pytest

from repro import (constant, declare, global_, includec, pycallback, struct,
                   terra, functype, int_, float_, double, int64, unit,
                   pointer)
from repro.core import types as T

std = includec("stdlib.h")


def run(fn, backend, *args):
    return fn.compile(backend)(*args)


class TestArithmetic:
    def test_integer_ops(self, backend):
        f = terra("""
        terra f(a : int, b : int) : int
          return (a + b) * (a - b) / 2 % 17
        end
        """)
        for a, b in [(10, 3), (-5, 7), (100, 1)]:
            expected = ((a + b) * (a - b))
            expected = int(expected / 2) % 17 if expected >= 0 else \
                -((-int(expected / 2)) % 17) if int(expected/2) < 0 else int(expected/2) % 17
            # compute C semantics in Python directly:
            q = int((a + b) * (a - b) / 2)
            r = q - (q // 17) * 17 if (q < 0) == (17 < 0) or q % 17 == 0 else q % 17 - 17
            c_mod = q - int(q / 17) * 17
            assert run(f, backend, a, b) == c_mod

    def test_wraparound(self, backend):
        f = terra("terra f(x : int8) : int8 return x + 1 end")
        assert run(f, backend, 127) == -128

    def test_unsigned_wrap(self, backend):
        f = terra("terra f(x : uint32) : uint32 return x - 1 end")
        assert run(f, backend, 0) == 2**32 - 1

    def test_float32_precision(self, backend):
        f = terra("terra f(a : float, b : float) : float return a + b end")
        result = run(f, backend, 0.1, 0.2)
        assert result == np.float32(np.float32(0.1) + np.float32(0.2))

    def test_shift_ops(self, backend):
        f = terra("terra f(x : int, s : int) : int return (x << s) >> 2 end")
        assert run(f, backend, 3, 4) == (3 << 4) >> 2

    def test_unsigned_shift_logical(self, backend):
        f = terra("terra f(x : uint32) : uint32 return x >> 1 end")
        assert run(f, backend, 0x80000000) == 0x40000000

    def test_signed_shift_arithmetic(self, backend):
        f = terra("terra f(x : int32) : int32 return x >> 1 end")
        assert run(f, backend, -8) == -4

    def test_division_by_zero_float(self, backend):
        f = terra("terra f(x : double) : double return x / 0.0 end")
        assert run(f, backend, 1.0) == float("inf")


class TestControlFlow:
    def test_if_chain(self, backend):
        f = terra("""
        terra f(x : int) : int
          if x < 0 then return -1
          elseif x == 0 then return 0
          else return 1 end
        end
        """)
        assert [run(f, backend, v) for v in (-5, 0, 5)] == [-1, 0, 1]

    def test_while_break(self, backend):
        f = terra("""
        terra f(n : int) : int
          var i = 0
          while true do
            if i >= n then break end
            i = i + 1
          end
          return i
        end
        """)
        assert run(f, backend, 7) == 7

    def test_repeat(self, backend):
        f = terra("""
        terra f(n : int) : int
          var i = 0
          repeat i = i + 1 until i >= n
          return i
        end
        """)
        assert run(f, backend, 5) == 5
        assert run(f, backend, 0) == 1  # body runs at least once

    def test_for_negative_step(self, backend):
        f = terra("""
        terra f(n : int) : int
          var acc = 0
          for i = n, 0, -1 do acc = acc + i end
          return acc
        end
        """)
        assert run(f, backend, 5) == 5 + 4 + 3 + 2 + 1

    def test_for_dynamic_step(self, backend):
        f = terra("""
        terra f(lo : int, hi : int, s : int) : int
          var acc = 0
          for i = lo, hi, s do acc = acc + i end
          return acc
        end
        """)
        assert run(f, backend, 0, 10, 3) == 0 + 3 + 6 + 9
        assert run(f, backend, 10, 0, -4) == 10 + 6 + 2

    def test_nested_loop_break(self, backend):
        f = terra("""
        terra f() : int
          var hits = 0
          for i = 0, 3 do
            for j = 0, 10 do
              if j == 2 then break end
              hits = hits + 1
            end
          end
          return hits
        end
        """)
        assert run(f, backend) == 6


class TestMemoryAndPointers:
    def test_malloc_rw_free(self, backend):
        f = terra("""
        terra f(n : int) : int
          var p = [&int](std.malloc(n * 4))
          for i = 0, n do p[i] = i end
          var s = 0
          for i = 0, n do s = s + p[i] end
          std.free(p)
          return s
        end
        """)
        assert run(f, backend, 10) == 45

    def test_address_of_local(self, backend):
        f = terra("""
        terra f(x : int) : int
          var v = x
          var p = &v
          @p = @p + 1
          return v
        end
        """)
        assert run(f, backend, 10) == 11

    def test_array_value_semantics(self, backend):
        f = terra("""
        terra f() : int
          var a : int[4]
          for i = 0, 4 do a[i] = i end
          var b = a      -- copies the whole array
          b[0] = 100
          return a[0] * 1000 + b[0]
        end
        """)
        assert run(f, backend) == 100

    def test_struct_copy_semantics(self, backend):
        S = struct("struct CopyS { x : int }")
        f = terra("""
        terra f() : int
          var a = CopyS { 1 }
          var b = a
          b.x = 2
          return a.x * 10 + b.x
        end
        """, env={"CopyS": S})
        assert run(f, backend) == 12

    def test_pointer_into_struct(self, backend):
        S = struct("struct PtrS { a : int, b : int }")
        f = terra("""
        terra f() : int
          var s = PtrS { 1, 2 }
          var p = &s.b
          @p = 20
          return s.a + s.b
        end
        """, env={"PtrS": S})
        assert run(f, backend) == 21

    def test_string_constant(self, backend):
        strh = includec("string.h")
        f = terra("""
        terra f() : int64
          return [int64](strh.strlen('hello world'))
        end
        """, env={"strh": strh})
        assert run(f, backend) == 11


class TestFunctions:
    def test_recursion(self, backend):
        f = terra("""
        terra fact(n : int) : int64
          if n <= 1 then return 1 end
          return n * fact(n - 1)
        end
        """)
        assert run(f, backend, 10) == 3628800

    def test_mutual_recursion(self, backend):
        odd = declare("odd")
        even = terra("""
        terra even(n : int) : bool
          if n == 0 then return true end
          return odd(n - 1)
        end
        """, env={"odd": odd})
        terra("""
        terra odd(n : int) : bool
          if n == 0 then return false end
          return even(n - 1)
        end
        """, env={"odd": odd, "even": even})
        assert run(even, backend, 10) is True
        assert run(odd, backend, 10) is False

    def test_function_pointer(self, backend):
        f = terra("""
        terra add1(x : int) : int return x + 1 end
        terra mul2(x : int) : int return x * 2 end
        terra apply(fn : {int} -> int, x : int) : int
          return fn(x)
        end
        terra f(which : bool, x : int) : int
          var fn : {int} -> int = add1
          if not which then fn = mul2 end
          return apply(fn, x)
        end
        """)
        assert run(f.f, backend, True, 10) == 11
        assert run(f.f, backend, False, 10) == 20

    def test_python_callback(self, backend):
        log = []

        def observe(x):
            log.append(x)
            return x * 2

        cb = pycallback(functype([int_], int_), observe)
        f = terra("terra f(x : int) : int return cb(x) + 1 end",
                  env={"cb": cb})
        assert run(f, backend, 21) == 43
        assert log[-1] == 21

    def test_tuple_return_to_python(self, backend):
        f = terra("terra f() : {int, double} return 3, 2.5 end")
        assert run(f, backend) == (3, 2.5)


class TestGlobals:
    def test_global_counter(self, backend):
        g = global_(T.int32, 0, "counter")
        f = terra("""
        terra f() : int
          g = g + 1
          return g
        end
        """, env={"g": g})
        h = f.compile(backend)
        assert h() == 1
        assert h() == 2
        assert g.get(backend) == 2

    def test_global_set_from_python(self, backend):
        g = global_(T.float64, 1.5, "setme")
        f = terra("terra f() : double return g * 2.0 end", env={"g": g})
        h = f.compile(backend)
        assert h() == 3.0
        g.set(10.0, backend)
        assert h() == 20.0

    def test_constant_embedding(self, backend):
        c = constant(T.int64, 1 << 40)
        f = terra("terra f() : int64 return [c] + 1 end")
        assert run(f, backend) == (1 << 40) + 1


class TestNumpyInterop:
    def test_write_through_pointer(self, backend):
        f = terra("""
        terra f(p : &double, n : int) : {}
          for i = 0, n do p[i] = [double](i) * 1.5 end
        end
        """)
        buf = np.zeros(6)
        run(f, backend, buf, 6)
        assert list(buf) == [0.0, 1.5, 3.0, 4.5, 6.0, 7.5]

    def test_dtype_mismatch_rejected(self, backend):
        from repro.errors import FFIError
        f = terra("terra f(p : &double) : double return p[0] end")
        with pytest.raises(FFIError, match="dtype"):
            run(f, backend, np.zeros(4, dtype=np.float32))


class TestBackendAgreement:
    """Differential: identical results from gcc and the interpreter."""

    PROGRAMS = [
        ("terra p(x : int) : int return (x * 37 + 11) % 256 - 128 end",
         [(0,), (255,), (-1000,), (2**31 - 1,)]),
        ("terra p(x : double) : double return x * x - 1.0 / (x + 2.0) end",
         [(0.5,), (-1.5,), (1e10,)]),
        ("""terra p(x : int) : int
              var acc = 0
              for i = 0, x do
                if i % 3 == 0 then acc = acc + i
                else acc = acc - 1 end
              end
              return acc
            end""",
         [(0,), (10,), (100,)]),
        ("""terra p(x : int8) : int8
              return (x << 3) + (x >> 1) ^ 0x55
            end""",
         [(0,), (127,), (-128,), (42,)]),
    ]

    @pytest.mark.parametrize("source,argsets", PROGRAMS)
    def test_agreement(self, source, argsets):
        from repro import get_backend
        f = terra(source)
        hc = f.compile(get_backend("c"))
        hi = f.compile(get_backend("interp"))
        for args in argsets:
            assert hc(*args) == hi(*args), args


class TestSignednessSemantics:
    """C's usual-arithmetic-conversion corner cases, identical on both
    backends (int vs uint comparisons convert to unsigned, like C)."""

    def test_minus_one_greater_than_unsigned_zero(self, backend):
        f = terra("""
        terra f(a : int32, b : uint32) : bool
          return a > b     -- -1 converts to 0xFFFFFFFF
        end
        """)
        assert run(f, backend, -1, 0) is True

    def test_unsigned_division(self, backend):
        f = terra("""
        terra f(a : uint32, b : uint32) : uint32
          return a / b
        end
        """)
        assert run(f, backend, 2**32 - 2, 2) == (2**32 - 2) // 2

    def test_unsigned_modulo(self, backend):
        f = terra("terra f(a : uint32) : uint32 return a % 10 end")
        assert run(f, backend, 2**32 - 1) == (2**32 - 1) % 10

    def test_mixed_width_promotion(self, backend):
        f = terra("""
        terra f(a : int8, b : int32) : int32
          return a * b    -- int8 promotes to int32 before multiply
        end
        """)
        assert run(f, backend, 100, 1000) == 100000

    def test_uint64_wraparound_sum(self, backend):
        f = terra("""
        terra f(a : uint64) : uint64
          return a + a
        end
        """)
        big = 2**63 + 5
        assert run(f, backend, big) == (2 * big) % 2**64
