"""Flat-memory substrate tests: region mapping, checked access, traps."""

import pytest

from repro.errors import TrapError
from repro.memory.flatmem import Memory


@pytest.fixture
def mem():
    return Memory(initial_size=4096)


class TestRegions:
    def test_map_and_rw(self, mem):
        r = mem.map_region(16, "heap")
        mem.write(r.start, b"hello")
        assert mem.read(r.start, 5) == b"hello"

    def test_alignment(self, mem):
        r = mem.map_region(10, "heap", align=64)
        assert r.start % 64 == 0

    def test_regions_disjoint(self, mem):
        regions = [mem.map_region(10, "heap") for _ in range(20)]
        spans = sorted((r.start, r.end) for r in regions)
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_growth(self, mem):
        r = mem.map_region(100_000, "heap")  # larger than initial size
        mem.write(r.start + 99_000, b"x")
        assert mem.read(r.start + 99_000, 1) == b"x"

    def test_zero_size_region(self, mem):
        r = mem.map_region(0, "stack")
        assert r.start > 0


class TestTraps:
    def test_null_load(self, mem):
        with pytest.raises(TrapError, match="NULL"):
            mem.read(0, 4)

    def test_null_store(self, mem):
        with pytest.raises(TrapError, match="NULL"):
            mem.write(0, b"x")

    def test_unmapped(self, mem):
        with pytest.raises(TrapError, match="unmapped"):
            mem.read(0x100, 4)

    def test_overrun(self, mem):
        r = mem.map_region(8, "heap")
        with pytest.raises(TrapError, match="overruns"):
            mem.read(r.start + 4, 8)

    def test_use_after_free(self, mem):
        r = mem.map_region(8, "heap")
        mem.unmap_region(r)
        with pytest.raises(TrapError, match="freed"):
            mem.read(r.start, 1)

    def test_double_unmap(self, mem):
        r = mem.map_region(8, "heap")
        mem.unmap_region(r)
        with pytest.raises(TrapError, match="double free"):
            mem.unmap_region(r)

    def test_gap_between_regions(self, mem):
        a = mem.map_region(8, "heap", align=64)
        b = mem.map_region(8, "heap", align=64)
        gap = a.end + (b.start - a.end) // 2
        if gap < b.start and gap >= a.end:
            with pytest.raises(TrapError):
                mem.read(gap, 1)


class TestStrings:
    def test_roundtrip(self, mem):
        r = mem.map_region(32, "global")
        mem.write_cstring(r.start, b"hello world")
        assert mem.read_cstring(r.start) == b"hello world"

    def test_unterminated(self, mem):
        r = mem.map_region(4, "global")
        mem.write(r.start, b"abcd")
        with pytest.raises(TrapError, match="unterminated"):
            mem.read_cstring(r.start)

    def test_region_at(self, mem):
        r = mem.map_region(16, "heap")
        assert mem.region_at(r.start) is r
        assert mem.region_at(r.start + 15) is r
