"""Typed load/store (pack/unpack) tests with hypothesis round-trips."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import types as T
from repro.errors import TrapError
from repro.memory import layout

INT_TYPES = [T.int8, T.int16, T.int32, T.int64,
             T.uint8, T.uint16, T.uint32, T.uint64]


class TestWrapInt:
    def test_in_range(self):
        assert layout.wrap_int(100, T.int8) == 100

    def test_signed_overflow(self):
        assert layout.wrap_int(128, T.int8) == -128
        assert layout.wrap_int(-129, T.int8) == 127

    def test_unsigned_wrap(self):
        assert layout.wrap_int(256, T.uint8) == 0
        assert layout.wrap_int(-1, T.uint8) == 255

    @given(st.sampled_from(INT_TYPES), st.integers())
    def test_always_in_range(self, ty, value):
        w = layout.wrap_int(value, ty)
        assert ty.min_value() <= w <= ty.max_value()

    @given(st.sampled_from(INT_TYPES), st.integers())
    def test_idempotent(self, ty, value):
        w = layout.wrap_int(value, ty)
        assert layout.wrap_int(w, ty) == w


class TestPackUnpack:
    @given(st.sampled_from(INT_TYPES), st.integers())
    def test_int_roundtrip(self, ty, value):
        wrapped = layout.wrap_int(value, ty)
        data = layout.pack_value(wrapped, ty)
        assert len(data) == ty.sizeof()
        assert layout.unpack_value(data, ty) == wrapped

    @given(st.floats(allow_nan=False, width=32))
    def test_float32_roundtrip(self, value):
        data = layout.pack_value(value, T.float32)
        assert layout.unpack_value(data, T.float32) == value

    @given(st.floats(allow_nan=False))
    def test_float64_roundtrip(self, value):
        data = layout.pack_value(value, T.float64)
        assert layout.unpack_value(data, T.float64) == value

    def test_nan_roundtrip(self):
        data = layout.pack_value(float("nan"), T.float64)
        assert math.isnan(layout.unpack_value(data, T.float64))

    @given(st.booleans())
    def test_bool_roundtrip(self, value):
        data = layout.pack_value(value, T.bool_)
        assert layout.unpack_value(data, T.bool_) is value

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_pointer_roundtrip(self, addr):
        ptr = T.pointer(T.int32)
        data = layout.pack_value(addr, ptr)
        assert layout.unpack_value(data, ptr) == addr

    @given(st.lists(st.floats(allow_nan=False, width=32),
                    min_size=4, max_size=4))
    def test_vector_roundtrip(self, values):
        v = T.vector(T.float32, 4)
        data = layout.pack_value(values, v)
        assert len(data) == v.sizeof()
        assert layout.unpack_value(data, v) == values

    def test_vector_length_mismatch(self):
        with pytest.raises(TrapError):
            layout.pack_value([1.0, 2.0], T.vector(T.float32, 4))

    def test_aggregate_blob(self):
        s = T.struct("B", [("x", T.int32), ("y", T.int32)])
        blob = bytes(8)
        assert layout.pack_value(blob, s) == blob
        with pytest.raises(TrapError):
            layout.pack_value(bytes(4), s)

    def test_float32_rounding(self):
        # values round to single precision on store
        stored = layout.unpack_value(
            layout.pack_value(1.0000001, T.float32), T.float32)
        assert stored == layout.round_float(1.0000001, T.float32)


class TestZeroValue:
    def test_primitives(self):
        assert layout.zero_value(T.int32) == 0
        assert layout.zero_value(T.float64) == 0.0
        assert layout.zero_value(T.bool_) is False

    def test_pointer(self):
        assert layout.zero_value(T.pointer(T.int8)) == 0

    def test_vector(self):
        assert layout.zero_value(T.vector(T.int32, 4)) == [0, 0, 0, 0]

    def test_aggregate(self):
        s = T.struct("Z", [("a", T.int64), ("b", T.int8)])
        assert layout.zero_value(s) == bytes(s.sizeof())


class TestTypedMemory:
    def test_struct_fields(self):
        from repro.memory.flatmem import Memory
        mem = Memory()
        tm = layout.TypedMemory(mem)
        s = T.struct("TM", [("a", T.int8), ("b", T.float64)])
        region = mem.map_region(s.sizeof(), "heap", s.alignof())
        tm.store(region.start, bytes(s.sizeof()), s)
        tm.store_field(region.start, s, "a", -5)
        tm.store_field(region.start, s, "b", 2.5)
        assert tm.load_field(region.start, s, "a") == -5
        assert tm.load_field(region.start, s, "b") == 2.5
