"""Allocator tests, including hypothesis-driven invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TrapError
from repro.memory.allocator import Allocator
from repro.memory.flatmem import Memory


def make_alloc():
    return Allocator(Memory(1 << 16))


class TestBasics:
    def test_malloc_free(self):
        a = make_alloc()
        p = a.malloc(64)
        assert p != 0
        a.memory.write(p, bytes(64))
        a.free(p)

    def test_free_null_noop(self):
        make_alloc().free(0)

    def test_reuse_after_free(self):
        a = make_alloc()
        p = a.malloc(64)
        a.free(p)
        q = a.malloc(64)
        assert q == p  # LIFO reuse of the freed block

    def test_double_free(self):
        a = make_alloc()
        p = a.malloc(16)
        a.free(p)
        with pytest.raises(TrapError):
            a.free(p)

    def test_free_interior_pointer(self):
        a = make_alloc()
        p = a.malloc(16)
        with pytest.raises(TrapError):
            a.free(p + 4)

    def test_free_wild_pointer(self):
        a = make_alloc()
        with pytest.raises(TrapError):
            a.free(0xDEAD0)

    def test_calloc_zeroes(self):
        a = make_alloc()
        p = a.malloc(16)
        a.memory.write(p, b"\xff" * 16)
        a.free(p)
        q = a.calloc(4, 4)
        assert a.memory.read(q, 16) == bytes(16)

    def test_realloc_grow_preserves(self):
        a = make_alloc()
        p = a.malloc(8)
        a.memory.write(p, b"12345678")
        q = a.realloc(p, 64)
        assert a.memory.read(q, 8) == b"12345678"

    def test_realloc_shrink_in_place(self):
        a = make_alloc()
        p = a.malloc(64)
        assert a.realloc(p, 8) == p

    def test_realloc_null_is_malloc(self):
        a = make_alloc()
        p = a.realloc(0, 32)
        assert a.block_size(p) == 32

    def test_malloc_negative(self):
        with pytest.raises(TrapError):
            make_alloc().malloc(-1)

    def test_accounting(self):
        a = make_alloc()
        p = a.malloc(100)
        assert a.live_bytes == 100 and a.live_block_count() == 1
        a.free(p)
        assert a.live_bytes == 0 and a.live_block_count() == 0


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=512),
                    min_size=1, max_size=40))
    def test_live_blocks_never_overlap(self, sizes):
        a = make_alloc()
        blocks = [(a.malloc(s), s) for s in sizes]
        spans = sorted((p, p + s) for p, s in blocks)
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert e1 <= s2
        for p, _s in blocks:
            a.free(p)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(1, 256), st.booleans()),
                    min_size=1, max_size=60))
    def test_interleaved_alloc_free(self, ops):
        """Random malloc/free sequences keep contents of live blocks
        intact and never hand out overlapping memory."""
        a = make_alloc()
        live: dict[int, bytes] = {}
        for i, (size, do_free) in enumerate(ops):
            if do_free and live:
                addr = next(iter(live))
                assert a.memory.read(addr, len(live[addr])) == live[addr]
                a.free(addr)
                del live[addr]
            else:
                addr = a.malloc(size)
                pattern = bytes((i + j) % 256 for j in range(size))
                a.memory.write(addr, pattern)
                live[addr] = pattern
        for addr, pattern in live.items():
            assert a.memory.read(addr, len(pattern)) == pattern

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 128), st.integers(1, 128))
    def test_realloc_roundtrip(self, first, second):
        a = make_alloc()
        p = a.malloc(first)
        data = bytes(range(min(first, 256) % 256)) or b"\x00"
        data = (data * (first // len(data) + 1))[:first]
        a.memory.write(p, data)
        q = a.realloc(p, second)
        keep = min(first, second)
        assert a.memory.read(q, keep) == data[:keep]
