"""Auto-vectorizer: rewrite shape, the bailout matrix, and bitwise
scalar/vector output equality.

Every equality test compares the level-3 (vectorizing) pipeline against
the scalar interpretation of the same source — the same contract the
differential fuzzer enforces, pinned here on the named hazard cases.
"""

import numpy as np
import pytest

from repro import get_backend, terra
from repro.core import tast
from repro.passes.vectorize import VectorizePass


def typed_fn(source):
    fn = terra(source, env={})
    fn.ensure_typechecked()
    return fn


def for_loops(body):
    return [n for n in tast.walk(body) if isinstance(n, tast.TForNum)]


POINTWISE = """
terra k(a : &float, b : &float, c : &float, n : int) : {}
  for i = 0, n do
    c[i] = a[i] * b[i] + a[i]
  end
end
"""

REDUCE = """
terra k(p : &int, n : int) : int
  var acc = 0
  for i = 0, n do
    acc = acc + p[i]
  end
  return acc
end
"""


class TestRewriteShape:
    def test_pointwise_vectorizes(self):
        fn = typed_fn(POINTWISE)
        assert VectorizePass().run(fn.typed) is True
        # guarded vector loop + scalar epilogue
        loops = for_loops(fn.typed.body)
        assert len(loops) == 2
        steps = [lp.step for lp in loops]
        assert any(s is not None and s.value > 1 for s in steps)
        assert any(s is None for s in steps)

    def test_integer_reduction_vectorizes(self):
        fn = typed_fn(REDUCE)
        assert VectorizePass().run(fn.typed) is True
        assert len(for_loops(fn.typed.body)) == 2

    def test_idempotent(self):
        fn = typed_fn(POINTWISE)
        assert VectorizePass().run(fn.typed) is True
        assert VectorizePass().run(fn.typed) is False


class TestBailouts:
    def bails(self, source):
        fn = typed_fn(source)
        changed = VectorizePass().run(fn.typed)
        return not changed

    def test_non_unit_stride(self):
        assert self.bails("""
        terra k(a : &float, c : &float, n : int) : {}
          for i = 0, n, 2 do
            c[i] = a[i] + 1.0f
          end
        end
        """)

    def test_trapping_body_op(self):
        # integer division can trap; the vector loop would evaluate all
        # lanes unconditionally, so the loop must stay scalar
        assert self.bails("""
        terra k(a : &int, b : &int, c : &int, n : int) : {}
          for i = 0, n do
            c[i] = a[i] / b[i]
          end
        end
        """)

    def test_float_reduction(self):
        # float + is not reassociable: vector-lane merge would change
        # rounding, so float reductions stay scalar
        assert self.bails("""
        terra k(p : &double, n : int) : double
          var acc = 0.0
          for i = 0, n do
            acc = acc + p[i]
          end
          return acc
        end
        """)

    def test_loop_carried_scalar_dependence(self):
        assert self.bails("""
        terra k(p : &int, n : int) : int
          var t = 1
          for i = 0, n do
            t = t * 2 + p[i]
          end
          return t
        end
        """)

    def test_non_loop_index_access(self):
        # p[i + 1] is not the loop index: out of the guarded range
        assert self.bails("""
        terra k(a : &int, c : &int, n : int) : {}
          for i = 0, n do
            c[i] = a[i + 1]
          end
        end
        """)

    def test_call_in_body(self):
        ns = terra("""
        terra g(x : int) : int return x + 1 end
        terra k(c : &int, n : int) : {}
          for i = 0, n do
            c[i] = g(i)
          end
        end
        """, env={})
        ns["k"].ensure_typechecked()
        assert VectorizePass().run(ns["k"].typed) is False

    def test_memoryless_loop(self):
        assert self.bails("""
        terra k(n : int) : int
          var acc = 0
          for i = 0, n do
            acc = acc + i
          end
          return acc
        end
        """)


class TestScalarVectorEquality:
    """Level-3 output must be bit-identical to scalar level-1 output."""

    W = 16  # float32 lanes at the default 64-byte vector width

    def run_both(self, src, setup, monkeypatch):
        monkeypatch.delenv("REPRO_TERRA_PIPELINE", raising=False)
        scalar = setup(terra(src, env={}).compile(get_backend("interp")))
        monkeypatch.setenv("REPRO_TERRA_PIPELINE", "3")
        vec_i = setup(terra(src, env={}).compile(get_backend("interp")))
        vec_c = setup(terra(src, env={}).compile(get_backend("c")))
        return scalar, vec_i, vec_c

    @pytest.mark.parametrize("n", [0, 1, 15, 16, 17, 33])
    def test_trip_counts(self, n, monkeypatch):
        """n=0 and n<W run epilogue-only; n=W exactly one vector trip;
        W<n<2W one vector trip plus epilogue."""
        rng = np.random.RandomState(3)
        a = rng.rand(64).astype(np.float32)
        b = rng.rand(64).astype(np.float32)

        def setup(fn):
            c = np.zeros(64, np.float32)
            fn(a, b, c, n)
            return c

        scalar, vec_i, vec_c = self.run_both(POINTWISE, setup, monkeypatch)
        assert np.array_equal(scalar, vec_i)
        assert np.array_equal(scalar, vec_c)

    def test_aliasing_pointers_fall_back_at_runtime(self, monkeypatch):
        """Overlapping views: the disjointness guard must fail closed and
        take the scalar loop, giving scalar (serial) semantics."""
        src = """
        terra k(a : &int, c : &int, n : int) : {}
          for i = 0, n do
            c[i] = a[i] + 1
          end
        end
        """
        base = np.arange(40, dtype=np.int32)

        def setup(fn):
            buf = base.copy()
            fn(buf[0:], buf[1:], 32)   # c[i] aliases a[i+1]
            return buf

        scalar, vec_i, vec_c = self.run_both(src, setup, monkeypatch)
        assert np.array_equal(scalar, vec_i)
        assert np.array_equal(scalar, vec_c)

    def test_in_place_same_base_vectorizes_safely(self, monkeypatch):
        src = """
        terra k(p : &float, n : int) : {}
          for i = 0, n do
            p[i] = p[i] * 2.0f
          end
        end
        """
        base = np.linspace(-8, 8, 48).astype(np.float32)

        def setup(fn):
            buf = base.copy()
            fn(buf, 37)
            return buf

        scalar, vec_i, vec_c = self.run_both(src, setup, monkeypatch)
        assert np.array_equal(scalar, vec_i)
        assert np.array_equal(scalar, vec_c)

    def test_special_float_values(self, monkeypatch):
        """NaN, ±inf, −0.0, and denormals must round-trip bitwise
        through vector loads/stores and lanewise arithmetic."""
        a = np.array([np.nan, np.inf, -np.inf, -0.0, 0.0, 5e-324,
                      1e300, -1e300] * 5, np.float64)
        b = np.array([1.0, 0.0, -0.0, np.nan, -1.0, 2.0, 1e300,
                      np.inf] * 5, np.float64)
        src = """
        terra k(a : &double, b : &double, c : &double, n : int) : {}
          for i = 0, n do
            c[i] = a[i] * b[i] - b[i]
          end
        end
        """

        def setup(fn):
            c = np.zeros(40, np.float64)
            fn(a, b, c, 40)
            return c

        scalar, vec_i, vec_c = self.run_both(src, setup, monkeypatch)
        assert np.array_equal(scalar.view(np.uint64) & ~np.uint64(0),
                              vec_i.view(np.uint64))
        # NaN payloads may differ legitimately between gcc and the
        # interp; compare non-NaN lanes bitwise and NaN lanes as NaN
        nan = np.isnan(scalar)
        assert np.array_equal(np.isnan(vec_c), nan)
        assert np.array_equal(scalar[~nan].view(np.uint64),
                              vec_c[~nan].view(np.uint64))

    def test_subint_wrap_reduction(self, monkeypatch):
        src = """
        terra k(p : &uint8, n : int) : uint8
          var acc = [uint8](0)
          for i = 0, n do
            acc = acc + p[i]
          end
          return acc
        end
        """
        p = np.arange(200, dtype=np.uint8)

        def setup(fn):
            return fn(p, 77)

        scalar, vec_i, vec_c = self.run_both(src, setup, monkeypatch)
        assert scalar == vec_i == vec_c

    def test_forced_width(self, monkeypatch):
        monkeypatch.setenv("REPRO_TERRA_VEC_WIDTH", "4")
        rng = np.random.RandomState(9)
        a = rng.rand(32).astype(np.float32)
        b = rng.rand(32).astype(np.float32)

        def setup(fn):
            c = np.zeros(32, np.float32)
            fn(a, b, c, 30)
            return c

        scalar, vec_i, vec_c = self.run_both(POINTWISE, setup, monkeypatch)
        assert np.array_equal(scalar, vec_i)
        assert np.array_equal(scalar, vec_c)


class TestObservability:
    def test_loop_and_bailout_counters(self):
        from repro.trace.metrics import registry
        before_loops = registry().get("vec.loops")
        before_bails = registry().get("vec.bailouts")
        fn = typed_fn(POINTWISE)
        VectorizePass().run(fn.typed)
        assert registry().get("vec.loops") == before_loops + 1
        fn2 = typed_fn("""
        terra k(a : &int, b : &int, c : &int, n : int) : {}
          for i = 0, n do
            c[i] = a[i] / b[i]
          end
        end
        """)
        VectorizePass().run(fn2.typed)
        assert registry().get("vec.bailouts") == before_bails + 1
