"""C-semantics folding edge cases (satellite of the pipeline refactor).

The folder must produce exactly the value the backends would compute at
runtime — wrapping integers, truncation-toward-zero division, float32
rounding, short-circuit evaluation.  Each test folds a constant program
and compares the baked-in value against the same computation done at
runtime by BOTH backends (gcc builds with ``-fwrapv``, so runtime signed
overflow is well-defined and comparable).  Traps are compared on the
interpreter only: the C build would SIGFPE the test process.
"""

import math
import struct

import pytest

from repro import terra
from repro.core import tast
from repro.errors import TrapError
from repro.passes.fold import FoldPass


def folded_const(src):
    """Fold a constant-only function and return the baked return value."""
    fn = terra(src, env={})
    fn.ensure_typechecked()
    FoldPass().run(fn.typed)
    ret = fn.typed.body.statements[-1]
    assert isinstance(ret, tast.TReturn)
    assert isinstance(ret.expr, tast.TConst), "did not fold to a constant"
    return ret.expr.value


def runtime(src, *argsets):
    """Compile on both backends and return [(interp, c), ...] results."""
    fn = terra(src, env={})
    interp = fn.compile("interp")
    cfn = fn.compile("c")
    return [(interp(*a), cfn(*a)) for a in argsets]


def f32(x):
    return struct.unpack("<f", struct.pack("<f", x))[0]


class TestWrappingOverflow:
    def test_add_wraps_at_int32(self):
        const = folded_const(
            "terra f() : int return 2147483647 + 1 end")
        assert const == -2147483648
        [(i, c)] = runtime("terra f(x : int, y : int) : int return x + y end",
                           (2147483647, 1))
        assert const == i == c

    def test_sub_wraps_at_int32(self):
        const = folded_const(
            "terra f() : int return (0 - 2147483647) - 2 end")
        assert const == 2147483647
        [(i, c)] = runtime("terra f(x : int, y : int) : int return x - y end",
                           (-2147483647, 2))
        assert const == i == c

    def test_mul_wraps_at_int32(self):
        const = folded_const(
            "terra f() : int return 100000 * 100000 end")
        assert const == (100000 * 100000) % 2**32  # happens to be positive
        [(i, c)] = runtime("terra f(x : int, y : int) : int return x * y end",
                           (100000, 100000))
        assert const == i == c

    def test_shift_into_sign_bit(self):
        const = folded_const("terra f() : int return 1 << 31 end")
        assert const == -2147483648
        [(i, c)] = runtime(
            "terra f(x : int, s : int) : int return x << s end", (1, 31))
        assert const == i == c

    def test_int8_cast_truncates(self):
        const = folded_const("terra f() : int8 return [int8](300) end")
        assert const == 300 - 256
        [(i, c)] = runtime(
            "terra f(x : int) : int8 return [int8](x) end", (300,))
        assert const == i == c


class TestTruncatingDivision:
    @pytest.mark.parametrize("a,b", [
        (7, 2), (-7, 2), (7, -2), (-7, -2), (-9, 4), (9, -4),
    ])
    def test_division_truncates_toward_zero(self, a, b):
        const = folded_const(
            "terra f() : int return %d / %d end" % (a, b))
        assert const == math.trunc(a / b)  # C99 semantics, not Lua floor
        [(i, c)] = runtime(
            "terra f(x : int, y : int) : int return x / y end", (a, b))
        assert const == i == c

    @pytest.mark.parametrize("a,b", [
        (7, 2), (-7, 2), (7, -2), (-7, -2),
    ])
    def test_modulo_sign_follows_dividend(self, a, b):
        const = folded_const(
            "terra f() : int return %d %% %d end" % (a, b))
        assert const == a - math.trunc(a / b) * b
        [(i, c)] = runtime(
            "terra f(x : int, y : int) : int return x %% y end" % (), (a, b))
        assert const == i == c

    def test_divide_by_zero_never_folded(self):
        """1/0 must stay in the tree and trap at runtime (interp only —
        the C version would SIGFPE the whole test process)."""
        fn = terra("terra f() : int return 1 / 0 end", env={})
        fn.ensure_typechecked()
        FoldPass().run(fn.typed)
        ret = fn.typed.body.statements[-1]
        assert isinstance(ret.expr, tast.TBinOp)  # still a divide
        with pytest.raises(TrapError):
            fn.compile("interp")()


class TestFloat32Rounding:
    def test_sum_rounds_at_float32(self):
        const = folded_const(
            "terra f() : float return [float](0.1) + [float](0.2) end")
        assert const == f32(f32(0.1) + f32(0.2))
        assert const != 0.1 + 0.2  # folding at float64 would be wrong
        [(i, c)] = runtime(
            "terra f(x : float, y : float) : float return x + y end",
            (f32(0.1), f32(0.2)))
        assert const == i == c

    def test_mul_rounds_at_float32(self):
        const = folded_const(
            "terra f() : float return [float](1.1) * [float](1.3) end")
        assert const == f32(f32(1.1) * f32(1.3))
        [(i, c)] = runtime(
            "terra f(x : float, y : float) : float return x * y end",
            (f32(1.1), f32(1.3)))
        assert const == i == c

    def test_double_to_float_cast_rounds(self):
        const = folded_const(
            "terra f() : float return [float](0.1) end")
        assert const == f32(0.1)
        assert const != 0.1
        [(i, c)] = runtime(
            "terra f(x : double) : float return [float](x) end", (0.1,))
        assert const == i == c

    def test_float_division_never_traps_and_folds(self):
        """Float division by zero is inf in C, not a trap — it folds."""
        const = folded_const(
            "terra f() : double return 1.0 / 0.0 end")
        assert math.isinf(const) and const > 0
        [(i, c)] = runtime(
            "terra f(x : double, y : double) : double return x / y end",
            (1.0, 0.0))
        assert const == i == c


class TestZeroTripLoopPrune:
    def count_loops(self, src):
        fn = terra(src, env={})
        fn.ensure_typechecked()
        FoldPass().run(fn.typed)
        return (fn, sum(1 for n in tast.walk(fn.typed.body)
                        if isinstance(n, tast.TForNum)))

    def test_const_zero_trip_pruned(self):
        _, loops = self.count_loops("""
        terra f() : int
          var acc = 0
          for i = 5, 0 do acc = acc + i end
          return acc
        end
        """)
        assert loops == 0

    def test_nonconst_step_not_pruned(self):
        """`for i = 5, 0, s` runs when s is negative at runtime; the
        folder used to assume step=1 for any non-constant step and
        deleted the loop."""
        fn, loops = self.count_loops("""
        terra f(s : int) : int
          var acc = 0
          for i = 5, 0, s do acc = acc + i end
          return acc
        end
        """)
        assert loops == 1
        interp = fn.compile("interp")
        cfn = fn.compile("c")
        for s in (-1, -2, 1):
            assert interp(s) == cfn(s)
        assert interp(-1) == 5 + 4 + 3 + 2 + 1

    def test_const_negative_step_prune_respects_direction(self):
        _, loops = self.count_loops("""
        terra f() : int
          var acc = 0
          for i = 0, 5, -1 do acc = acc + 1 end
          return acc
        end
        """)
        assert loops == 0


class TestShortCircuit:
    def test_false_and_trapping_rhs_folds_to_false(self):
        """The right side would never run, so dropping it is exact."""
        const = folded_const(
            "terra f() : bool return false and (1 / 0 > 0) end")
        assert const is False or const == 0

    def test_true_or_trapping_rhs_folds_to_true(self):
        const = folded_const(
            "terra f() : bool return true or (1 / 0 > 0) end")
        assert const is True or const == 1

    def test_true_and_trapping_rhs_not_folded(self):
        """true and X reduces to X — and X still traps."""
        fn = terra("terra f() : bool return true and (1 / 0 > 0) end",
                   env={})
        fn.ensure_typechecked()
        FoldPass().run(fn.typed)
        ret = fn.typed.body.statements[-1]
        assert not isinstance(ret.expr, tast.TConst)
        with pytest.raises(TrapError):
            fn.compile("interp")()

    def test_runtime_short_circuit_matches(self):
        """Non-constant short-circuit: RHS trap is reached only when the
        left side allows it (interp only for the trapping input)."""
        src = """
        terra f(b : bool, x : int) : bool
          return b and (10 / x > 0)
        end
        """
        fn = terra(src, env={})
        interp = fn.compile("interp")
        assert interp(False, 0) is False  # RHS never evaluated
        assert interp(True, 5) is True
        with pytest.raises(TrapError):
            interp(True, 0)
