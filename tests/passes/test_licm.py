"""Loop-invariant code motion: hoists what is safe, leaves what is not."""

import numpy as np

from repro import terra
from repro.core import tast
from repro.passes.licm import LoopInvariantPass


def typed_fn(source, env=None):
    fn = terra(source, env=env or {})
    fn.ensure_typechecked()
    return fn


def loop_body_binops(body):
    """Multiplies/divides remaining inside any loop body."""
    out = []
    for node in tast.walk(body):
        if isinstance(node, (tast.TWhile, tast.TRepeat, tast.TForNum)):
            for inner in tast.walk(node.body):
                if isinstance(inner, tast.TBinOp) and inner.op in ("*", "/"):
                    out.append(inner)
    return out


class TestHoisting:
    def test_invariant_multiply_hoisted(self):
        fn = typed_fn("""
        terra f(a : int, b : int, n : int) : int
          var acc = 0
          for i = 0, n do
            acc = acc + a * b + i
          end
          return acc
        end
        """)
        assert LoopInvariantPass().run(fn.typed) is True
        assert loop_body_binops(fn.typed.body) == []
        # semantics preserved
        assert fn.compile("interp")(3, 7, 4) == 3 * 7 * 4 + 0 + 1 + 2 + 3

    def test_hoisted_out_of_nested_loops(self):
        """An expression invariant in both loops ends up above the outer
        one after one run (innermost-first, one level per loop)."""
        fn = typed_fn("""
        terra f(a : int, n : int) : int
          var acc = 0
          for i = 0, n do
            for j = 0, n do
              acc = acc + a * 13
            end
          end
          return acc
        end
        """)
        assert LoopInvariantPass().run(fn.typed) is True
        assert loop_body_binops(fn.typed.body) == []
        assert fn.compile("interp")(2, 3) == 2 * 13 * 9

    def test_loop_var_dependent_not_hoisted(self):
        fn = typed_fn("""
        terra f(n : int) : int
          var acc = 0
          for i = 0, n do
            acc = acc + i * 3
          end
          return acc
        end
        """)
        LoopInvariantPass().run(fn.typed)
        assert len(loop_body_binops(fn.typed.body)) == 1  # i * 3 stays

    def test_mutated_var_not_hoisted(self):
        fn = typed_fn("""
        terra f(a : int, n : int) : int
          var acc = 0
          for i = 0, n do
            a = a + 1
            acc = acc + a * 2
          end
          return acc
        end
        """)
        LoopInvariantPass().run(fn.typed)
        assert len(loop_body_binops(fn.typed.body)) == 1  # a * 2 stays

    def test_trapping_divide_not_hoisted(self):
        """a / b may trap; the loop may run zero times, so it must not be
        evaluated before the loop."""
        fn = typed_fn("""
        terra f(a : int, b : int, n : int) : int
          var acc = 0
          for i = 0, n do
            acc = acc + a / b
          end
          return acc
        end
        """)
        LoopInvariantPass().run(fn.typed)
        assert len(loop_body_binops(fn.typed.body)) == 1  # a / b stays
        # zero-trip loop with b == 0 must not trap
        assert fn.compile("interp")(1, 0, 0) == 0

    def test_call_not_hoisted(self):
        fns = terra("""
        terra g(x : int) : int return x + 1 end
        terra f(a : int, n : int) : int
          var acc = 0
          for i = 0, n do acc = acc + g(a) end
          return acc
        end
        """, env={})
        fn = fns["f"]
        fn.ensure_typechecked()
        LoopInvariantPass().run(fn.typed)
        calls_in_loop = [
            inner
            for node in tast.walk(fn.typed.body)
            if isinstance(node, tast.TForNum)
            for inner in tast.walk(node.body)
            if isinstance(inner, tast.TCall)]
        assert len(calls_in_loop) == 1

    def test_address_taken_var_not_hoisted(self):
        fns = terra("""
        terra bump(p : &int) : int p[0] = p[0] + 1 return 0 end
        terra f(a : int, n : int) : int
          var acc = 0
          for i = 0, n do
            acc = acc + bump(&a) + a * 2
          end
          return acc
        end
        """, env={})
        fn = fns["f"]
        fn.ensure_typechecked()
        LoopInvariantPass().run(fn.typed)
        assert len(loop_body_binops(fn.typed.body)) == 1  # a * 2 stays

    def test_identical_expressions_share_a_temp(self):
        fn = typed_fn("""
        terra f(a : int, b : int, n : int) : int
          var acc = 0
          for i = 0, n do
            acc = acc + a * b + a * b
          end
          return acc
        end
        """)
        assert LoopInvariantPass().run(fn.typed) is True
        # a single licm temp serves both occurrences
        hoisted_decls = [
            n for n in tast.walk(fn.typed.body)
            if isinstance(n, tast.TVarDecl)
            and any(s.displayname == "licm" for s in n.symbols)]
        assert len(hoisted_decls) == 1
        assert fn.compile("interp")(2, 5, 3) == (2 * 5 + 2 * 5) * 3

    def test_while_and_repeat_loops(self):
        fn = typed_fn("""
        terra f(a : int, b : int) : int
          var acc = 0
          var i = 0
          while i < b do
            acc = acc + a * 3
            i = i + 1
          end
          repeat
            acc = acc + a * 5
            i = i - 1
          until i == 0
          return acc
        end
        """)
        assert LoopInvariantPass().run(fn.typed) is True
        assert loop_body_binops(fn.typed.body) == []
        assert fn.compile("interp")(2, 4) == 4 * 6 + 4 * 10


class TestSemantics:
    def test_differential_gemm_kernel(self):
        """A blocked-GEMM-shaped kernel computes the same with and
        without hoisting, on both backends."""
        src = """
        terra kernel(C : &double, A : &double, B : &double, n : int) : {}
          for i = 0, n do
            for j = 0, n do
              var sum = 0.0
              for k = 0, n do
                sum = sum + A[i * n + k] * B[k * n + j]
              end
              C[i * n + j] = sum
            end
          end
        end
        """
        n = 8
        rng = np.random.RandomState(7)
        A = rng.rand(n, n)
        B = rng.rand(n, n)

        fn = terra(src, env={})
        fn.ensure_typechecked()
        assert LoopInvariantPass().run(fn.typed) is True
        C = np.zeros((n, n))
        fn.compile("c")(C, A, B, n)
        assert np.allclose(C, A @ B)
        C2 = np.zeros((n, n))
        fn.compile("interp")(C2, A, B, n)
        assert np.allclose(C2, A @ B)
