"""IR verifier tests: well-formed trees pass, sabotaged trees are caught.

Each sabotage below simulates a realistic pass bug — replacing a node
with one of the wrong type, dropping a declaration, corrupting an
operand — and the verifier must turn it into an IRVerifyError instead of
letting it reach a backend as a silent miscompile.
"""

import pytest

from repro import terra
from repro.core import tast
from repro.core import types as T
from repro.core.symbols import Symbol
from repro.errors import IRVerifyError
from repro.passes import verify_function
from repro.passes.manager import PassManager


def typed_fn(source, env=None):
    fn = terra(source, env=env or {})
    fn.ensure_typechecked()
    return fn.typed


GOOD_PROGRAMS = [
    "terra f(x : int) : int return x + 1 end",
    "terra f(x : double) : double return -x * 2.0 end",
    """
    terra f(n : int) : int
      var acc = 0
      for i = 0, n do acc = acc + i end
      while acc > 100 do acc = acc - 7 end
      repeat acc = acc + 1 until acc % 2 == 0
      return acc
    end
    """,
    """
    terra f(p : &int, n : int) : int
      var s = 0
      for i = 0, n do s = s + p[i] end
      return s
    end
    """,
    """
    terra f(b : bool, x : int) : int
      if b and x > 0 then return 1 elseif not b then return 2 end
      return 0
    end
    """,
]


@pytest.mark.parametrize("source", GOOD_PROGRAMS)
def test_wellformed_accepted(source):
    verify_function(typed_fn(source))


def test_accepts_after_every_level():
    from repro.passes import PIPELINE_FULL, run_pipeline
    typed = typed_fn("""
    terra f(n : int) : int
      var acc = 0
      var dead = 42
      for i = 0, n do acc = acc + (n * 2) + i end
      return acc + (3 - 3)
    end
    """)
    run_pipeline(typed, PIPELINE_FULL)
    verify_function(typed)


class TestSabotage:
    def test_mixed_operand_types(self):
        typed = typed_fn("terra f(x : int) : int return x + 1 end")
        ret = typed.body.statements[-1]
        ret.expr.rhs = tast.TConst(1, T.int64, None)  # int + int64
        with pytest.raises(IRVerifyError, match="arithmetic"):
            verify_function(typed)

    def test_wrong_result_type(self):
        typed = typed_fn("terra f(x : int) : int return x + 1 end")
        ret = typed.body.statements[-1]
        ret.expr.type = T.int64
        with pytest.raises(IRVerifyError):
            verify_function(typed)

    def test_missing_type(self):
        typed = typed_fn("terra f(x : int) : int return x + 1 end")
        ret = typed.body.statements[-1]
        ret.expr.type = None
        with pytest.raises(IRVerifyError, match="no resolved type"):
            verify_function(typed)

    def test_undeclared_variable(self):
        typed = typed_fn("terra f(x : int) : int return x end")
        ghost = Symbol(T.int32, "ghost")
        typed.body.statements[-1].expr = tast.TVar(ghost, T.int32, None)
        with pytest.raises(IRVerifyError, match="outside any declaring"):
            verify_function(typed)

    def test_variable_at_wrong_type(self):
        typed = typed_fn("""
        terra f() : int
          var x = 1
          return x
        end
        """)
        ret = typed.body.statements[-1]
        ret.expr.type = T.int64
        with pytest.raises(IRVerifyError, match="used at type"):
            verify_function(typed)

    def test_out_of_scope_use(self):
        """A declaration inside a do-block must not leak out of it."""
        typed = typed_fn("""
        terra f() : int
          do var y = 1 end
          return 0
        end
        """)
        decl = typed.body.statements[0].body.statements[0]
        sym = decl.symbols[0]
        typed.body.statements[-1].expr = tast.TVar(sym, T.int32, None)
        with pytest.raises(IRVerifyError, match="outside any declaring"):
            verify_function(typed)

    def test_assign_to_rvalue(self):
        typed = typed_fn("""
        terra f(x : int) : int
          x = 3
          return x
        end
        """)
        assign = typed.body.statements[0]
        assign.lhs[0] = tast.TBinOp("+", assign.lhs[0],
                                    tast.TConst(1, T.int32, None),
                                    T.int32, None)
        with pytest.raises(IRVerifyError, match="lvalue"):
            verify_function(typed)

    def test_assign_type_mismatch(self):
        typed = typed_fn("""
        terra f(x : int) : int
          x = 3
          return x
        end
        """)
        assign = typed.body.statements[0]
        assign.rhs[0] = tast.TConst(3.0, T.float64, None)
        with pytest.raises(IRVerifyError, match="assigns"):
            verify_function(typed)

    def test_unknown_cast_kind(self):
        typed = typed_fn("terra f(x : int) : double return [double](x) end")
        ret = typed.body.statements[-1]
        assert isinstance(ret.expr, tast.TCast)
        ret.expr.kind = "reinterpret"
        with pytest.raises(IRVerifyError, match="unknown cast kind"):
            verify_function(typed)

    def test_unrepresentable_cast(self):
        typed = typed_fn("terra f(x : int) : double return [double](x) end")
        ret = typed.body.statements[-1]
        ret.expr.kind = "ptr-int"  # int32 is not a pointer
        with pytest.raises(IRVerifyError, match="ptr-int"):
            verify_function(typed)

    def test_call_argument_type(self):
        fns = terra("""
        terra g(a : int64) : int64 return a end
        terra f(x : int) : int64 return g(x) end
        """, env={})
        fn = fns["f"]
        fn.ensure_typechecked()
        typed = fn.typed
        call = typed.body.statements[-1].expr
        assert isinstance(call, tast.TCall)
        call.args[0] = tast.TConst(1, T.int32, None)  # parameter is int64
        with pytest.raises(IRVerifyError, match="argument 0"):
            verify_function(typed)

    def test_return_type_mismatch(self):
        typed = typed_fn("terra f(x : int) : int return x end")
        typed.body.statements[-1].expr = tast.TConst(1.5, T.float64, None)
        with pytest.raises(IRVerifyError, match="returns"):
            verify_function(typed)

    def test_condition_not_bool(self):
        typed = typed_fn("""
        terra f(x : int) : int
          if x > 0 then return 1 end
          return 0
        end
        """)
        stat = typed.body.statements[0]
        cond, body = stat.branches[0]
        stat.branches[0] = (tast.TConst(1, T.int32, None), body)
        with pytest.raises(IRVerifyError, match="condition"):
            verify_function(typed)

    def test_unrepresentable_constant(self):
        typed = typed_fn("terra f() : int8 return [int8](1) end")
        typed.body.statements[-1].expr = tast.TConst(1000, T.int8, None)
        with pytest.raises(IRVerifyError, match="not representable"):
            verify_function(typed)

    def test_manager_catches_sabotage_between_passes(self):
        """With verify=True the manager re-checks after each transform, so
        a sabotaged input is reported before any backend could see it."""
        typed = typed_fn("terra f(x : int) : int return x + 1 end")
        typed.body.statements[-1].expr.rhs = tast.TConst(1, T.int64, None)
        with pytest.raises(IRVerifyError, match="after typechecking"):
            PassManager(["fold"], verify=True).run(typed)

    def test_env_enables_verifier_in_typechecker(self, monkeypatch):
        monkeypatch.setenv("REPRO_TERRA_VERIFY_IR", "1")
        fn = terra("terra f(x : int) : int return x + 1 end", env={})
        fn.ensure_typechecked()  # runs the verifier without error
        assert fn.typed is not None
