"""Algebraic simplification: identities applied, unsafe cases left alone."""

import pytest

from repro import terra
from repro.core import tast
from repro.errors import TrapError
from repro.passes.simplify import SimplifyPass


def typed_fn(source, env=None):
    fn = terra(source, env=env or {})
    fn.ensure_typechecked()
    return fn


def binops(body):
    return [n for n in tast.walk(body) if isinstance(n, tast.TBinOp)]


class TestIdentities:
    @pytest.mark.parametrize("expr", [
        "x + 0", "x - 0", "0 + x",
        "x * 1", "1 * x", "x / 1",
        "x << 0", "x >> 0",
    ])
    def test_identity_erased(self, expr):
        fn = typed_fn("terra f(x : int) : int return %s end" % expr)
        assert SimplifyPass().run(fn.typed) is True
        assert binops(fn.typed.body) == []
        assert fn.compile("interp")(11) == 11

    def test_bitwise_identities(self):
        fn = typed_fn("""
        terra f(x : int) : int
          var a = x or 0
          var b = x and -1
          return (a ^ 0) + (0 ^ b) - x
        end
        """)
        SimplifyPass().run(fn.typed)
        assert fn.compile("interp")(37) == 37

    def test_mul_zero_pure_folds(self):
        fn = typed_fn("terra f(x : int) : int return x * 0 end")
        assert SimplifyPass().run(fn.typed) is True
        assert binops(fn.typed.body) == []
        ret = fn.typed.body.statements[-1]
        assert isinstance(ret.expr, tast.TConst)
        assert ret.expr.value == 0

    def test_mul_zero_impure_kept(self):
        """(x/y) * 0 must still trap when y == 0, so it is not folded."""
        fn = typed_fn("terra f(x : int, y : int) : int return (x/y) * 0 end")
        SimplifyPass().run(fn.typed)
        divides = [b for b in binops(fn.typed.body) if b.op == "/"]
        assert len(divides) == 1
        assert fn.compile("interp")(10, 2) == 0
        with pytest.raises(TrapError):
            fn.compile("interp")(10, 0)

    def test_float_identity_not_applied(self):
        """x + 0.0 changes -0.0, and x * 0.0 changes NaN: floats are left
        untouched."""
        fn = typed_fn(
            "terra f(x : double) : double return (x + 0.0) * 1.0 end")
        assert SimplifyPass().run(fn.typed) is False
        assert len(binops(fn.typed.body)) == 2

    def test_double_negation(self):
        fn = typed_fn("terra f(x : int) : int return -(-x) end")
        assert SimplifyPass().run(fn.typed) is True
        assert not any(isinstance(n, tast.TUnOp)
                       for n in tast.walk(fn.typed.body))
        assert fn.compile("interp")(-9) == -9

    def test_double_not(self):
        fn = typed_fn(
            "terra f(b : bool) : bool return not (not b) end")
        assert SimplifyPass().run(fn.typed) is True
        assert fn.compile("interp")(True) is True
        assert fn.compile("interp")(False) is False

    def test_float_negation_not_simplified(self):
        """-(-x) is actually exact for floats too, but the pass is scoped
        to integers; check it leaves floats alone rather than asserting
        anything subtle."""
        fn = typed_fn("terra f(x : double) : double return -(-x) end")
        assert SimplifyPass().run(fn.typed) is False


class TestReassociation:
    def test_chained_constants_merge(self):
        fn = typed_fn("terra f(x : int) : int return (x + 3) + 4 end")
        assert SimplifyPass().run(fn.typed) is True
        ops = binops(fn.typed.body)
        assert len(ops) == 1
        assert isinstance(ops[0].rhs, tast.TConst)
        assert ops[0].rhs.value == 7
        assert fn.compile("interp")(10) == 17

    def test_const_on_left_canonicalized(self):
        """3 + (4 + x) normalizes to x + 7 — equivalent stagings produce
        identical trees (and identical C, for the buildd cache)."""
        a = typed_fn("terra f(x : int) : int return 3 + (4 + x) end")
        b = typed_fn("terra f(x : int) : int return (x + 3) + 4 end")
        SimplifyPass().run(a.typed)
        SimplifyPass().run(b.typed)
        ra = a.typed.body.statements[-1].expr
        rb = b.typed.body.statements[-1].expr
        assert isinstance(ra, tast.TBinOp) and isinstance(rb, tast.TBinOp)
        assert isinstance(ra.lhs, tast.TVar) and isinstance(rb.lhs, tast.TVar)
        assert ra.rhs.value == rb.rhs.value == 7

    def test_swap_alone_reports_changed(self):
        """2 + x -> x + 2 with nothing else to rewrite must still report
        changed=True, so pass records and telemetry reflect the swap."""
        fn = typed_fn("terra f(x : int) : int return 2 + x end")
        assert SimplifyPass().run(fn.typed) is True
        ret = fn.typed.body.statements[-1].expr
        assert isinstance(ret.lhs, tast.TVar)
        assert isinstance(ret.rhs, tast.TConst) and ret.rhs.value == 2

    def test_multiply_chain(self):
        fn = typed_fn("terra f(x : int) : int return (x * 2) * 8 end")
        assert SimplifyPass().run(fn.typed) is True
        ops = binops(fn.typed.body)
        assert len(ops) == 1 and ops[0].rhs.value == 16
        assert fn.compile("interp")(3) == 48

    def test_reassociation_wraps_like_c(self):
        """(x + INT_MAX) + 1 -> x + INT_MIN: constants combine with
        wrapping arithmetic, matching what two separate adds would do."""
        fn = typed_fn(
            "terra f(x : int) : int return (x + 2147483647) + 1 end")
        assert SimplifyPass().run(fn.typed) is True
        ops = binops(fn.typed.body)
        assert len(ops) == 1
        assert ops[0].rhs.value == -2147483648
        assert fn.compile("interp")(5) == 5 - 2147483648

    def test_mixed_ops_not_reassociated(self):
        fn = typed_fn("terra f(x : int) : int return (x + 3) * 4 end")
        assert SimplifyPass().run(fn.typed) is False
        assert len(binops(fn.typed.body)) == 2

    def test_float_not_reassociated(self):
        fn = typed_fn(
            "terra f(x : double) : double return (x + 1.0e16) + 1.0 end")
        assert SimplifyPass().run(fn.typed) is False


class TestSemantics:
    @pytest.mark.parametrize("x", [-7, 0, 1, 255, 2**31 - 1])
    def test_differential(self, x):
        src = """
        terra f(x : int) : int
          var a = (x + 0) * 1
          var b = (a + 5) + 6
          return -(-b) + 0 * a + b * 0
        end
        """
        raw = typed_fn(src)
        opt = typed_fn(src)
        SimplifyPass().run(opt.typed)
        assert raw.compile("interp")(x) == opt.compile("interp")(x)
