"""Algebraic simplification: identities applied, unsafe cases left alone."""

import pytest

from repro import terra
from repro.core import tast
from repro.errors import TrapError
from repro.passes.simplify import SimplifyPass


def typed_fn(source, env=None):
    fn = terra(source, env=env or {})
    fn.ensure_typechecked()
    return fn


def binops(body):
    return [n for n in tast.walk(body) if isinstance(n, tast.TBinOp)]


class TestIdentities:
    @pytest.mark.parametrize("expr", [
        "x + 0", "x - 0", "0 + x",
        "x * 1", "1 * x", "x / 1",
        "x << 0", "x >> 0",
    ])
    def test_identity_erased(self, expr):
        fn = typed_fn("terra f(x : int) : int return %s end" % expr)
        assert SimplifyPass().run(fn.typed) is True
        assert binops(fn.typed.body) == []
        assert fn.compile("interp")(11) == 11

    def test_bitwise_identities(self):
        fn = typed_fn("""
        terra f(x : int) : int
          var a = x or 0
          var b = x and -1
          return (a ^ 0) + (0 ^ b) - x
        end
        """)
        SimplifyPass().run(fn.typed)
        assert fn.compile("interp")(37) == 37

    def test_mul_zero_pure_folds(self):
        fn = typed_fn("terra f(x : int) : int return x * 0 end")
        assert SimplifyPass().run(fn.typed) is True
        assert binops(fn.typed.body) == []
        ret = fn.typed.body.statements[-1]
        assert isinstance(ret.expr, tast.TConst)
        assert ret.expr.value == 0

    def test_mul_zero_impure_kept(self):
        """(x/y) * 0 must still trap when y == 0, so it is not folded."""
        fn = typed_fn("terra f(x : int, y : int) : int return (x/y) * 0 end")
        SimplifyPass().run(fn.typed)
        divides = [b for b in binops(fn.typed.body) if b.op == "/"]
        assert len(divides) == 1
        assert fn.compile("interp")(10, 2) == 0
        with pytest.raises(TrapError):
            fn.compile("interp")(10, 0)

    def test_float_identity_not_applied(self):
        """x + 0.0 changes -0.0, and x * 0.0 changes NaN: floats are left
        untouched."""
        fn = typed_fn(
            "terra f(x : double) : double return (x + 0.0) * 1.0 end")
        assert SimplifyPass().run(fn.typed) is False
        assert len(binops(fn.typed.body)) == 2

    def test_double_negation(self):
        fn = typed_fn("terra f(x : int) : int return -(-x) end")
        assert SimplifyPass().run(fn.typed) is True
        assert not any(isinstance(n, tast.TUnOp)
                       for n in tast.walk(fn.typed.body))
        assert fn.compile("interp")(-9) == -9

    def test_double_not(self):
        fn = typed_fn(
            "terra f(b : bool) : bool return not (not b) end")
        assert SimplifyPass().run(fn.typed) is True
        assert fn.compile("interp")(True) is True
        assert fn.compile("interp")(False) is False

    def test_float_negation_not_simplified(self):
        """-(-x) is actually exact for floats too, but the pass is scoped
        to integers; check it leaves floats alone rather than asserting
        anything subtle."""
        fn = typed_fn("terra f(x : double) : double return -(-x) end")
        assert SimplifyPass().run(fn.typed) is False


class TestReassociation:
    def test_chained_constants_merge(self):
        fn = typed_fn("terra f(x : int) : int return (x + 3) + 4 end")
        assert SimplifyPass().run(fn.typed) is True
        ops = binops(fn.typed.body)
        assert len(ops) == 1
        assert isinstance(ops[0].rhs, tast.TConst)
        assert ops[0].rhs.value == 7
        assert fn.compile("interp")(10) == 17

    def test_const_on_left_canonicalized(self):
        """3 + (4 + x) normalizes to x + 7 — equivalent stagings produce
        identical trees (and identical C, for the buildd cache)."""
        a = typed_fn("terra f(x : int) : int return 3 + (4 + x) end")
        b = typed_fn("terra f(x : int) : int return (x + 3) + 4 end")
        SimplifyPass().run(a.typed)
        SimplifyPass().run(b.typed)
        ra = a.typed.body.statements[-1].expr
        rb = b.typed.body.statements[-1].expr
        assert isinstance(ra, tast.TBinOp) and isinstance(rb, tast.TBinOp)
        assert isinstance(ra.lhs, tast.TVar) and isinstance(rb.lhs, tast.TVar)
        assert ra.rhs.value == rb.rhs.value == 7

    def test_swap_alone_reports_changed(self):
        """2 + x -> x + 2 with nothing else to rewrite must still report
        changed=True, so pass records and telemetry reflect the swap."""
        fn = typed_fn("terra f(x : int) : int return 2 + x end")
        assert SimplifyPass().run(fn.typed) is True
        ret = fn.typed.body.statements[-1].expr
        assert isinstance(ret.lhs, tast.TVar)
        assert isinstance(ret.rhs, tast.TConst) and ret.rhs.value == 2

    def test_multiply_chain(self):
        """(x*2)*8 reassociates to x*16, which then strength-reduces to
        x << 4 (wrapping multiply by a power of two IS a shift)."""
        fn = typed_fn("terra f(x : int) : int return (x * 2) * 8 end")
        assert SimplifyPass().run(fn.typed) is True
        ops = binops(fn.typed.body)
        assert len(ops) == 1
        assert ops[0].op == "<<" and ops[0].rhs.value == 4
        assert fn.compile("interp")(3) == 48

    def test_reassociation_wraps_like_c(self):
        """(x + INT_MAX) + 1 -> x + INT_MIN: constants combine with
        wrapping arithmetic, matching what two separate adds would do."""
        fn = typed_fn(
            "terra f(x : int) : int return (x + 2147483647) + 1 end")
        assert SimplifyPass().run(fn.typed) is True
        ops = binops(fn.typed.body)
        assert len(ops) == 1
        assert ops[0].rhs.value == -2147483648
        assert fn.compile("interp")(5) == 5 - 2147483648

    def test_mixed_ops_not_reassociated(self):
        """+ and * don't reassociate with each other; the outer *4 still
        strength-reduces to a shift."""
        fn = typed_fn("terra f(x : int) : int return (x + 3) * 4 end")
        assert SimplifyPass().run(fn.typed) is True
        ops = binops(fn.typed.body)
        assert len(ops) == 2
        assert sorted(op.op for op in ops) == ["+", "<<"]

    def test_float_not_reassociated(self):
        fn = typed_fn(
            "terra f(x : double) : double return (x + 1.0e16) + 1.0 end")
        assert SimplifyPass().run(fn.typed) is False


class TestStrengthReduction:
    def test_signed_multiply_becomes_shift(self):
        fn = typed_fn("terra f(x : int) : int return x * 8 end")
        assert SimplifyPass().run(fn.typed) is True
        ops = binops(fn.typed.body)
        assert len(ops) == 1 and ops[0].op == "<<" and ops[0].rhs.value == 3
        for x in (-7, 0, 5, 2**31 - 1, -(2**31)):
            import repro.backend.interp.values as V
            from repro.core import types as T
            expected = V.scalar_binop("*", x, 8, T.int32)
            assert fn.compile("interp")(x) == expected

    def test_unsigned_divide_becomes_shift(self):
        fn = typed_fn("terra f(x : uint32) : uint32 return x / 4 end")
        assert SimplifyPass().run(fn.typed) is True
        ops = binops(fn.typed.body)
        assert len(ops) == 1 and ops[0].op == ">>" and ops[0].rhs.value == 2
        assert fn.compile("interp")(2**32 - 1) == (2**32 - 1) // 4

    def test_unsigned_modulo_becomes_mask(self):
        fn = typed_fn("terra f(x : uint32) : uint32 return x % 16 end")
        assert SimplifyPass().run(fn.typed) is True
        ops = binops(fn.typed.body)
        assert len(ops) == 1 and ops[0].op == "&" and ops[0].rhs.value == 15
        assert fn.compile("interp")(2**32 - 3) == (2**32 - 3) % 16

    def test_signed_divide_not_reduced(self):
        """Signed / truncates toward zero; >> rounds toward -inf.  -7/4
        is -1 but -7>>2 is -2, so the signed form must stay a division."""
        fn = typed_fn("terra f(x : int) : int return x / 4 end")
        SimplifyPass().run(fn.typed)
        ops = binops(fn.typed.body)
        assert len(ops) == 1 and ops[0].op == "/"
        assert fn.compile("interp")(-7) == -1

    def test_signed_modulo_not_reduced(self):
        fn = typed_fn("terra f(x : int) : int return x % 8 end")
        SimplifyPass().run(fn.typed)
        ops = binops(fn.typed.body)
        assert len(ops) == 1 and ops[0].op == "%"
        assert fn.compile("interp")(-13) == -5

    def test_non_power_of_two_not_reduced(self):
        fn = typed_fn("terra f(x : uint32) : uint32 return x * 6 end")
        assert SimplifyPass().run(fn.typed) is False

    def test_float_multiply_not_reduced(self):
        fn = typed_fn("terra f(x : double) : double return x * 4.0 end")
        assert SimplifyPass().run(fn.typed) is False

    @pytest.mark.parametrize("x", [-9, -1, 0, 1, 7, 100, 2**31 - 1])
    def test_differential_all_reductions(self, x, backend):
        src = """
        terra f(x : int, u : uint32) : int
          return (x * 16) + [int](u / 8) + [int](u % 4)
        end
        """
        raw = typed_fn(src)
        opt = typed_fn(src)
        SimplifyPass().run(opt.typed)
        u = x & 0xFFFFFFFF
        assert raw.compile(backend)(x, u) == opt.compile(backend)(x, u)


class TestFMAContraction:
    def test_off_by_default(self):
        fn = typed_fn(
            "terra f(a : double, b : double, c : double) : double "
            "return a * b + c end")
        assert SimplifyPass().run(fn.typed) is False
        assert not any(isinstance(n, tast.TIntrinsic)
                       for n in tast.walk(fn.typed.body))

    def test_contracts_when_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_TERRA_FMA", "1")
        fn = typed_fn(
            "terra f(a : double, b : double, c : double) : double "
            "return a * b + c end")
        assert SimplifyPass().run(fn.typed) is True
        intrinsics = [n for n in tast.walk(fn.typed.body)
                      if isinstance(n, tast.TIntrinsic)]
        assert len(intrinsics) == 1 and intrinsics[0].name == "fma"

    def test_single_rounding_matches_c(self, monkeypatch, backend):
        """Contracted fma must agree bitwise between interp (libm fma via
        ctypes) and C (__builtin_fma)."""
        monkeypatch.setenv("REPRO_TERRA_FMA", "1")
        fn = terra(
            "terra f(a : double, b : double, c : double) : double "
            "return a * b + c end", env={})
        a = 1.0 + 2.0 ** -52
        got = fn.compile(backend)(a, a, -1.0)
        import ctypes
        import ctypes.util
        libm = ctypes.CDLL(ctypes.util.find_library("m") or "libm.so.6")
        libm.fma.restype = ctypes.c_double
        libm.fma.argtypes = [ctypes.c_double] * 3
        assert got == libm.fma(a, a, -1.0)


class TestFloatExpressionTreesPinned:
    """Float expression trees must survive every pipeline level bit-for-bit:
    no float identity, reassociation, or strength reduction may fire."""

    SRC = """
    terra f(x : double, y : double) : double
      var a = (x + 1.0e16) + 1.0
      var b = (y * 2.0) * 4.0
      var c = (x + 0.0) * 1.0
      return (a - b) + c
    end
    """

    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    @pytest.mark.parametrize("x,y", [
        (1.0, 2.0), (-0.0, 0.0), (1e-300, -1e300),
        (float("inf"), 1.0), (0.1, 0.2),
    ])
    def test_pinned_through_all_levels(self, level, x, y,
                                       monkeypatch, backend):
        import math
        monkeypatch.setenv("REPRO_TERRA_PIPELINE", str(level))
        got = terra(self.SRC, env={}).compile(backend)(x, y)
        a = (x + 1.0e16) + 1.0
        b = (y * 2.0) * 4.0
        c = (x + 0.0) * 1.0
        expected = (a - b) + c
        if math.isnan(expected):
            assert math.isnan(got)
        else:
            assert got == expected
            assert math.copysign(1.0, got) == math.copysign(1.0, expected)


class TestSemantics:
    @pytest.mark.parametrize("x", [-7, 0, 1, 255, 2**31 - 1])
    def test_differential(self, x):
        src = """
        terra f(x : int) : int
          var a = (x + 0) * 1
          var b = (a + 5) + 6
          return -(-b) + 0 * a + b * 0
        end
        """
        raw = typed_fn(src)
        opt = typed_fn(src)
        SimplifyPass().run(opt.typed)
        assert raw.compile("interp")(x) == opt.compile("interp")(x)
