"""PassManager behavior: ordering, switches, caching, telemetry, dumps."""

import pytest

from repro import terra
from repro.core import tast
from repro.errors import CompileError
from repro.passes import (
    LEVEL_PASSES,
    PIPELINE_CANON,
    PIPELINE_FULL,
    PIPELINE_NONE,
    PIPELINE_VEC,
    PassManager,
    available_passes,
    create_pass,
    pipeline_override,
    resolve_level,
    run_pipeline,
)


def typed_fn(source, env=None):
    fn = terra(source, env=env or {})
    fn.ensure_typechecked()
    return fn


class TestRegistry:
    def test_all_passes_registered(self):
        names = available_passes()
        for expected in ("fold", "simplify", "dce", "licm", "verify"):
            assert expected in names

    def test_unknown_pass_rejected(self):
        with pytest.raises(CompileError, match="unknown IR pass"):
            create_pass("vectorize-everything")

    def test_level_passes_are_registered(self):
        for level, names in LEVEL_PASSES.items():
            for name in names:
                assert name in available_passes(), (level, name)


class TestManager:
    def test_runs_in_order_and_records(self):
        fn = typed_fn("terra f(x : int) : int return (x + 0) + (2 * 3) end")
        manager = PassManager(["fold", "simplify", "dce"], verify=True)
        records = manager.run(fn.typed)
        assert [r["pass"] for r in records] == ["fold", "simplify", "dce"]
        assert all(r["seconds"] >= 0 for r in records)
        assert records[0]["changed"]  # 2 * 3 folded

    def test_disable_method(self):
        manager = PassManager(["fold", "simplify", "dce"])
        manager.disable("simplify")
        assert manager.pass_names() == ["fold", "dce"]

    def test_disable_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TERRA_DISABLE_PASSES", "licm, dce")
        manager = PassManager(["fold", "simplify", "licm", "dce"])
        assert manager.pass_names() == ["fold", "simplify"]

    def test_dump_ir(self, monkeypatch, capsys):
        fn = typed_fn("terra f(x : int) : int return x + (1 + 1) end")
        manager = PassManager(["fold"], dump="fold", verify=False)
        manager.run(fn.typed)
        err = capsys.readouterr().err
        assert "IR before pass 'fold'" in err
        assert "IR after pass 'fold'" in err
        assert "terra f" in err

    def test_pass_timing_reaches_buildd_stats(self):
        from repro.buildd import get_service
        fn = typed_fn("terra f(x : int) : int return x + (1 + 1) end")
        PassManager(["fold"]).run(fn.typed)
        snap = get_service().stats.snapshot()
        assert snap["passes"]["fold"]["runs"] >= 1
        assert snap["passes"]["fold"]["seconds"] >= 0


class TestLevels:
    def test_resolve_default_is_full(self):
        assert resolve_level(None) == PIPELINE_FULL

    def test_resolve_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TERRA_PIPELINE", "1")
        assert resolve_level(None) == PIPELINE_CANON
        assert resolve_level(PIPELINE_FULL) == PIPELINE_CANON

    def test_resolve_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_TERRA_PIPELINE", "fast")
        with pytest.raises(CompileError, match="REPRO_TERRA_PIPELINE"):
            resolve_level(None)

    def test_resolve_env_vec_level(self, monkeypatch):
        monkeypatch.setenv("REPRO_TERRA_PIPELINE", "3")
        assert resolve_level(None) == PIPELINE_VEC

    @pytest.mark.parametrize("value", ["5", "-1", "4"])
    def test_resolve_env_out_of_range(self, monkeypatch, value):
        """Out-of-range levels raise like non-integers do, instead of
        silently clamping a typo'd configuration."""
        monkeypatch.setenv("REPRO_TERRA_PIPELINE", value)
        with pytest.raises(CompileError, match="REPRO_TERRA_PIPELINE"):
            resolve_level(None)

    def test_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_TERRA_PIPELINE", "2")
        with pipeline_override(PIPELINE_NONE):
            assert resolve_level(None) == PIPELINE_NONE
        assert resolve_level(None) == PIPELINE_FULL


class TestCaching:
    def test_pipeline_runs_once(self):
        fn = typed_fn("terra f(x : int) : int return x + (1 + 1) end")
        assert fn.typed.pipeline_level == 0
        assert run_pipeline(fn.typed, PIPELINE_FULL) is True
        assert fn.typed.pipeline_level == PIPELINE_FULL
        # re-entry at the same or lower level is a no-op
        assert run_pipeline(fn.typed, PIPELINE_FULL) is False
        assert run_pipeline(fn.typed, PIPELINE_CANON) is False

    def test_level_upgrades(self):
        fn = typed_fn("terra f(x : int) : int return x + (1 + 1) end")
        assert run_pipeline(fn.typed, PIPELINE_CANON) is True
        assert fn.typed.pipeline_level == PIPELINE_CANON
        assert run_pipeline(fn.typed, PIPELINE_FULL) is True
        assert fn.typed.pipeline_level == PIPELINE_FULL

    def test_level_zero_is_identity(self):
        fn = typed_fn("terra f(x : int) : int return x + (1 + 1) end")
        before = sum(1 for _ in tast.walk(fn.typed.body))
        with pipeline_override(PIPELINE_NONE):
            assert run_pipeline(fn.typed) is False
        assert sum(1 for _ in tast.walk(fn.typed.body)) == before
        assert fn.typed.pipeline_level == 0

    def test_compile_shares_pipelined_tree(self):
        """Both backends see the same canonicalized tree: compiling on the
        interpreter first and gcc second does not re-run the passes."""
        fn = typed_fn("terra f(x : int) : int return x + 2 * 3 end")
        assert fn.compile("interp")(1) == 7
        level_after_interp = fn.typed.pipeline_level
        body_ids = [id(s) for s in fn.typed.body.statements]
        assert fn.compile("c")(1) == 7
        assert fn.typed.pipeline_level == level_after_interp == PIPELINE_FULL
        assert [id(s) for s in fn.typed.body.statements] == body_ids

    def test_pipelined_body_serves_lower_levels_after_full(self):
        """Once the in-place tree is at FULL, a lower-level request is
        rebuilt from the pre-advance snapshot, not served the FULL tree."""
        from repro.passes import pipelined_body
        fn = typed_fn("terra f(x : int) : int return x + (1 + 1) end")
        raw_count = sum(1 for _ in tast.walk(fn.typed.body))
        assert run_pipeline(fn.typed, PIPELINE_FULL) is True
        assert sum(1 for _ in tast.walk(fn.typed.body)) < raw_count
        raw = pipelined_body(fn.typed, PIPELINE_NONE)
        assert sum(1 for _ in tast.walk(raw)) == raw_count
        # the in-place tree and its level are untouched by the read
        assert fn.typed.pipeline_level == PIPELINE_FULL


class TestBackendsUsePipeline:
    def test_interp_backend_has_no_private_optimizer(self):
        """Acceptance: the interpreter must obtain IR exclusively through
        the pass manager — no direct optimize_function import."""
        import repro.backend.interp.machine as machine
        path = machine.__file__
        with open(path) as f:
            source = f.read()
        assert "optimize_function" not in source

    def test_backends_declare_pipeline_level(self):
        """The interpreter wants the FULL pipeline (nothing optimizes
        downstream of it); the C backend stops at CANON because gcc -O3
        subsumes LICM and pre-hoisted temps only enlarge the unit."""
        from repro.backend.base import get_backend
        assert get_backend("interp").pipeline_level == PIPELINE_FULL
        assert get_backend("c").pipeline_level == PIPELINE_CANON

    def test_emitted_c_independent_of_compile_order(self):
        """The C backend gets the CANON tree even when the interpreter
        (FULL, including LICM) compiled the function first: equivalent
        stagings emit byte-identical C in any compile order, so the
        buildd artifact cache hits deterministically."""
        src = """
        terra f(a : int, n : int) : int
          var s = 0
          for i = 0, n do s = s + a * 3 end
          return s
        end
        """
        c_first = typed_fn(src).get_c_source()
        fn = typed_fn(src)
        assert fn.compile("interp")(2, 4) == 24
        assert fn.typed.pipeline_level == PIPELINE_FULL
        assert fn.get_c_source() == c_first

    def test_emitted_c_reflects_pipeline(self):
        fn = typed_fn("terra f(x : int) : int return x + 2 * 3 end",
                      env={})
        source = fn.get_c_source()
        assert "6" in source          # 2 * 3 folded before emission
        assert "2 * 3" not in source

    def test_get_optimized_ir(self):
        fn = typed_fn("terra f(x : int) : int return (x + 0) + 2 * 3 end")
        text = fn.get_optimized_ir()
        assert "terra f" in text
        assert "6" in text and "2 * 3" not in text
