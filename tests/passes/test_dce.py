"""Dead-local/dead-store elimination: removes husks, preserves effects."""

import pytest

from repro import terra
from repro.core import tast
from repro.errors import TrapError
from repro.passes import PIPELINE_CANON, pipeline_override, run_pipeline
from repro.passes.dce import DeadCodePass
from repro.passes.fold import FoldPass


def typed_fn(source, env=None):
    fn = terra(source, env=env or {})
    fn.ensure_typechecked()
    return fn


def decls(body):
    return [n for n in tast.walk(body) if isinstance(n, tast.TVarDecl)]


class TestElimination:
    def test_never_read_local_removed(self):
        fn = typed_fn("""
        terra f(x : int) : int
          var dead = 42
          return x
        end
        """)
        assert DeadCodePass().run(fn.typed) is True
        assert decls(fn.typed.body) == []

    def test_read_local_kept(self):
        fn = typed_fn("""
        terra f(x : int) : int
          var y = x + 1
          return y
        end
        """)
        assert DeadCodePass().run(fn.typed) is False
        assert len(decls(fn.typed.body)) == 1

    def test_dead_store_chain_fixpoint(self):
        """y is only read by the store to z; z is never read — both go."""
        fn = typed_fn("""
        terra f(x : int) : int
          var y = x + 1
          var z = y * 2
          z = z + y
          return x
        end
        """)
        assert DeadCodePass().run(fn.typed) is True
        assert decls(fn.typed.body) == []
        assert not any(isinstance(n, tast.TAssign)
                       for n in tast.walk(fn.typed.body))

    def test_address_taken_pins_variable(self):
        fns = terra("""
        terra g(p : &int) : int return @p end
        terra f(x : int) : int
          var y = x
          return g(&y)
        end
        """, env={})
        fn = fns["f"]
        fn.ensure_typechecked()
        assert DeadCodePass().run(fn.typed) is False
        assert len(decls(fn.typed.body)) == 1

    def test_partial_store_keeps_variable(self):
        """arr[0] = ... is not a whole-variable kill; arr stays."""
        fn = typed_fn("""
        terra f(x : int) : int
          var arr : int[4]
          arr[0] = x
          return x
        end
        """)
        DeadCodePass().run(fn.typed)
        assert len(decls(fn.typed.body)) == 1

    def test_impure_initializer_survives(self):
        """var y = 1/0 must still trap even though y is dead."""
        fn = typed_fn("""
        terra f(x : int) : int
          var y = x / (x - x)
          return x
        end
        """)
        assert DeadCodePass().run(fn.typed) is True
        assert decls(fn.typed.body) == []
        # the divide survives as a bare expression statement
        assert isinstance(fn.typed.body.statements[0], tast.TExprStat)
        with pytest.raises(TrapError):
            fn.compile("interp")(3)

    def test_call_initializer_survives(self):
        fns = terra("""
        terra tick(p : &int) : int p[0] = p[0] + 1 return p[0] end
        terra f(p : &int) : int
          var unused = tick(p)
          return p[0]
        end
        """, env={})
        fn = fns["f"]
        fn.ensure_typechecked()
        DeadCodePass().run(fn.typed)
        assert decls(fn.typed.body) == []
        assert any(isinstance(n, tast.TCall)
                   for n in tast.walk(fn.typed.body))
        # the side effect still happens: tick increments before the read
        import numpy as np
        buf = np.array([5], dtype=np.int32)
        assert fn.compile("c")(buf) == 6

    def test_folding_creates_dce_fodder(self):
        """After folding `if false` away, its would-be inputs die too."""
        fn = typed_fn("""
        terra f(x : int) : int
          var scratch = x * 3
          if false then x = scratch end
          return x
        end
        """)
        with pipeline_override(PIPELINE_CANON):
            run_pipeline(fn.typed)
        assert decls(fn.typed.body) == []

    def test_partially_dead_multi_assign_keeps_declaration(self):
        """x, y = ... with x dead and y live is removed all-or-nothing,
        so `var x` must survive alongside the retained store (regression:
        the declaration was once dropped while the assignment stayed,
        emitting C that referenced an undeclared symbol)."""
        fn = typed_fn("""
        terra f(a : int) : int
          var x : int
          var y : int
          x, y = a + 1, a + 2
          return y
        end
        """)
        assert DeadCodePass().run(fn.typed) is False
        assert len(decls(fn.typed.body)) == 2
        assert fn.compile("c")(3) == 5
        assert fn.compile("interp")(3) == 5

    def test_loop_counter_not_removed(self):
        fn = typed_fn("""
        terra f(n : int) : int
          var acc = 0
          for i = 0, n do acc = acc + i end
          return acc
        end
        """)
        assert DeadCodePass().run(fn.typed) is False


class TestSemantics:
    def test_results_unchanged(self):
        src = """
        terra f(x : int) : int
          var dead1 = x * 7
          var keep = x + 1
          var dead2 = keep - 2
          return keep
        end
        """
        fn_raw = typed_fn(src)
        fn_opt = typed_fn(src)
        FoldPass().run(fn_opt.typed)
        DeadCodePass().run(fn_opt.typed)
        for x in (-5, 0, 3, 100):
            assert fn_raw.compile("interp")(x) == fn_opt.compile("interp")(x)
