"""Image(PixelType) tests — the §2 parameterized type example."""

import numpy as np
import pytest

from repro import float32, float64, terra, uint8
from repro.core import types as T
from repro.lib.image import Image, read_image_file, write_image_file


class TestTypeFactory:
    def test_memoized(self):
        assert Image(float32) is Image(float32)

    def test_distinct_per_pixel_type(self):
        assert Image(float32) is not Image(float64)

    def test_layout(self):
        img = Image(float32)
        assert img.entry_type("data") is T.pointer(float32)
        assert img.entry_type("N") is T.int32

    def test_methods_present(self):
        img = Image(uint8)
        for m in ("init", "get", "set", "free", "load", "save", "fill"):
            assert m in img.methods, m


class TestInMemory:
    @pytest.mark.parametrize("pixel,pyval", [(float32, 2.5), (uint8, 200)])
    def test_init_set_get(self, pixel, pyval, backend):
        Img = Image(pixel)
        f = terra("""
        terra f(n : int) : PT
          var img : Img
          img:init(n)
          img:fill([PT](0))
          img:set(1, 2, [v])
          var out = img:get(1, 2)
          img:free()
          return out
        end
        """, env={"Img": Img, "PT": pixel, "v": pyval})
        assert f.compile(backend)(8) == pyval

    def test_get_uses_row_major(self, backend):
        Img = Image(float32)
        f = terra("""
        terra f() : float
          var img : Img
          img:init(4)
          for i = 0, 16 do img.data[i] = [float](i) end
          var v = img:get(2, 3)    -- row 2, col 3 -> index 11
          img:free()
          return v
        end
        """, env={"Img": Img})
        assert f.compile(backend)() == 11.0


class TestFileIO:
    def test_python_roundtrip(self, tmp_path):
        data = np.arange(16, dtype=np.float32).reshape(4, 4)
        path = str(tmp_path / "img.timg")
        write_image_file(path, data)
        assert np.array_equal(read_image_file(path), data)

    def test_terra_save_python_read(self, tmp_path):
        Img = Image(float32)
        path = str(tmp_path / "saved.timg")
        f = terra("""
        terra f(path : rawstring, n : int) : bool
          var img : Img
          img:init(n)
          for i = 0, n * n do img.data[i] = [float](i) * 0.5f end
          var ok = img:save(path)
          img:free()
          return ok
        end
        """, env={"Img": Img})
        assert f(path, 4) is True
        loaded = read_image_file(path)
        assert np.allclose(loaded, np.arange(16).reshape(4, 4) * 0.5)

    def test_python_write_terra_read(self, tmp_path):
        Img = Image(float32)
        path = str(tmp_path / "tosum.timg")
        data = np.ones((8, 8), dtype=np.float32) * 2.0
        write_image_file(path, data)
        f = terra("""
        terra f(path : rawstring) : float
          var img : Img
          if not img:load(path) then return -1.f end
          var s = 0.f
          for i = 0, img.N * img.N do s = s + img.data[i] end
          img:free()
          return s
        end
        """, env={"Img": Img})
        assert f(path) == 128.0

    def test_load_missing_file(self):
        Img = Image(float32)
        f = terra("""
        terra f(path : rawstring) : bool
          var img : Img
          return img:load(path)
        end
        """, env={"Img": Img})
        assert f("/nonexistent/path.timg") is False

    def test_load_wrong_pixel_size(self, tmp_path):
        path = str(tmp_path / "f64.timg")
        write_image_file(path, np.zeros((4, 4), dtype=np.float64))
        Img = Image(float32)
        f = terra("""
        terra f(path : rawstring) : bool
          var img : Img
          return img:load(path)
        end
        """, env={"Img": Img})
        assert f(path) is False
