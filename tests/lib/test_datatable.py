"""DataTable tests — §6.3.2: one interface, two layouts."""

import pytest

from repro import float_, int_, terra
from repro.core import types as T
from repro.errors import TypeCheckError
from repro.lib.datatable import DataTable

FIELDS = {"vx": float_, "vy": float_, "pressure": float_, "density": float_}


def sum_prog(Table):
    return terra("""
    terra prog(n : int64) : float
      var t : FluidData
      t:init(n)
      for i = 0, n do
        var r = t:row(i)
        r:setvx([float](i))
        r:setvy(0.5f)
        r:setpressure(0.0f)
        r:setdensity(1.0f)
      end
      var s = 0.0f
      for i = 0, n do
        var r = t:row(i)
        s = s + r:vx() * r:vy() + r:density()
      end
      t:free()
      return s
    end
    """, env={"FluidData": Table})


class TestBothLayouts:
    @pytest.mark.parametrize("layout", ["AoS", "SoA"])
    def test_roundtrip(self, layout, backend):
        table = DataTable(dict(FIELDS), layout)
        prog = sum_prog(table)
        n = 50
        expected = sum(0.5 * i + 1.0 for i in range(n))
        assert prog.compile(backend)(n) == pytest.approx(expected)

    def test_layouts_agree(self):
        aos = sum_prog(DataTable(dict(FIELDS), "AoS"))
        soa = sum_prog(DataTable(dict(FIELDS), "SoA"))
        assert aos(100) == soa(100)

    def test_interface_identical(self):
        """Paper: 'it can be changed just by replacing AoS with SoA' —
        the method surface must match exactly."""
        aos = DataTable(dict(FIELDS), "AoS")
        soa = DataTable(dict(FIELDS), "SoA")
        aos_rows = set(aos.metadata["row"].methods)
        soa_rows = set(soa.metadata["row"].methods)
        assert aos_rows == soa_rows
        assert set(aos.methods) == set(soa.methods)


class TestLayoutShapes:
    def test_aos_is_one_array_of_records(self):
        aos = DataTable(dict(FIELDS), "AoS")
        assert aos.entry_names() == ["data", "n"]
        record = aos.metadata["record"]
        assert record.entry_names() == list(FIELDS)
        assert record.sizeof() == 16

    def test_soa_is_parallel_arrays(self):
        soa = DataTable(dict(FIELDS), "SoA")
        assert soa.entry_names() == list(FIELDS) + ["n"]
        for name in FIELDS:
            assert soa.entry_type(name).ispointer()

    def test_mixed_field_types(self):
        t = DataTable({"a": T.int64, "b": T.int8}, "AoS")
        prog = terra("""
        terra prog() : int64
          var t : Tbl
          t:init(4)
          var r = t:row(2)
          r:seta(1000)
          r:setb(7)
          var v = r:a() + r:b()
          t:free()
          return v
        end
        """, env={"Tbl": t})
        assert prog() == 1007

    def test_bad_layout(self):
        with pytest.raises(TypeCheckError, match="AoS"):
            DataTable({"x": float_}, "AOS")

    def test_bad_field_type(self):
        with pytest.raises(TypeCheckError):
            DataTable({"x": "float"}, "AoS")


class TestAoSoA:
    def test_roundtrip(self, backend):
        table = DataTable(dict(FIELDS), "AoSoA")
        prog = sum_prog(table)
        n = 50
        expected = sum(0.5 * i + 1.0 for i in range(n))
        assert prog.compile(backend)(n) == pytest.approx(expected)

    def test_matches_other_layouts(self):
        n = 100
        results = {layout: sum_prog(DataTable(dict(FIELDS), layout))(n)
                   for layout in ("AoS", "SoA", "AoSoA")}
        assert len(set(results.values())) == 1

    @pytest.mark.parametrize("block", [1, 4, 16])
    def test_block_sizes(self, block):
        table = DataTable(dict(FIELDS), "AoSoA", block=block)
        assert table.metadata["block"] == block
        assert sum_prog(table)(37) == sum_prog(
            DataTable(dict(FIELDS), "AoS"))(37)

    def test_mixed_field_sizes(self):
        t = DataTable({"a": T.int8, "b": T.int64, "c": T.int16}, "AoSoA",
                      block=4)
        prog = terra("""
        terra prog() : int64
          var t : Tbl
          t:init(10)
          for i = 0, 10 do
            var r = t:row(i)
            r:seta([int8](i))
            r:setb(i * 1000)
            r:setc([int16](i * 10))
          end
          var s : int64 = 0
          for i = 0, 10 do
            var r = t:row(i)
            s = s + r:a() + r:b() + r:c()
          end
          t:free()
          return s
        end
        """, env={"Tbl": t})
        assert prog() == sum(i + i * 1000 + i * 10 for i in range(10))

    def test_non_multiple_of_block(self):
        # n not a multiple of the tile size: the last partial tile works
        table = DataTable(dict(FIELDS), "AoSoA", block=8)
        assert sum_prog(table)(13) == pytest.approx(
            sum(0.5 * i + 1.0 for i in range(13)))

    def test_interface_identical_to_other_layouts(self):
        a = DataTable(dict(FIELDS), "AoS")
        h = DataTable(dict(FIELDS), "AoSoA")
        assert set(a.metadata["row"].methods) == set(h.metadata["row"].methods)
