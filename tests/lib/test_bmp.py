"""BMP codec tests: round trips, padding, formats, error handling."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TerraError
from repro.lib.bmp import from_float, read_bmp, to_float, write_bmp


class TestRoundTrip:
    @pytest.mark.parametrize("shape", [(4, 4), (5, 7), (1, 1), (3, 17)])
    def test_uint8(self, shape, tmp_path):
        rng = np.random.RandomState(sum(shape))
        img = rng.randint(0, 256, size=shape, dtype=np.uint8)
        path = str(tmp_path / "rt.bmp")
        write_bmp(path, img)
        assert np.array_equal(read_bmp(path), img)

    def test_float_written_as_grey(self, tmp_path):
        img = np.linspace(0, 1, 16, dtype=np.float32).reshape(4, 4)
        path = str(tmp_path / "f.bmp")
        write_bmp(path, img)
        back = read_bmp(path)
        assert back.dtype == np.uint8
        assert np.allclose(to_float(back), img, atol=1 / 255 + 1e-6)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 33), st.integers(1, 17), st.integers(0, 2**31 - 1))
    def test_property_any_size(self, w, h, seed):
        import tempfile
        rng = np.random.RandomState(seed)
        img = rng.randint(0, 256, size=(h, w), dtype=np.uint8)
        with tempfile.NamedTemporaryFile(suffix=".bmp") as f:
            write_bmp(f.name, img)
            assert np.array_equal(read_bmp(f.name), img)

    def test_row_padding_multiple_of_four(self, tmp_path):
        img = np.arange(15, dtype=np.uint8).reshape(3, 5)
        path = str(tmp_path / "pad.bmp")
        write_bmp(path, img)
        raw = open(path, "rb").read()
        data_offset = struct.unpack_from("<I", raw, 10)[0]
        assert (len(raw) - data_offset) == 3 * 8  # rows of 5 pad to 8


class Test24Bit:
    def _write_24(self, path, pixels):
        """Hand-roll a 24-bit BMP (BGR, bottom-up)."""
        h, w, _ = pixels.shape
        row_size = (w * 3 + 3) & ~3
        data = bytearray()
        for row in pixels[::-1]:
            data += row.tobytes()
            data += bytes(row_size - w * 3)
        header = struct.pack("<2sIHHI", b"BM", 54 + len(data), 0, 0, 54)
        info = struct.pack("<IiiHHIIiiII", 40, w, h, 1, 24, 0, len(data),
                           0, 0, 0, 0)
        with open(path, "wb") as f:
            f.write(header + info + data)

    def test_grey_24bit(self, tmp_path):
        grey = np.zeros((2, 3, 3), dtype=np.uint8)
        grey[..., :] = np.arange(6, dtype=np.uint8).reshape(2, 3, 1) * 40
        path = str(tmp_path / "c24.bmp")
        self._write_24(path, grey)
        out = read_bmp(path)
        assert np.array_equal(out, np.arange(6, dtype=np.uint8).reshape(2, 3) * 40)

    def test_luma_weights(self, tmp_path):
        # pure red / green / blue pixels convert by integer luma
        px = np.array([[[0, 0, 255], [0, 255, 0], [255, 0, 0]]],
                      dtype=np.uint8)  # BGR!
        path = str(tmp_path / "rgb.bmp")
        self._write_24(path, px)
        out = read_bmp(path)
        assert list(out[0]) == [255 * 299 // 1000, 255 * 587 // 1000,
                                255 * 114 // 1000]


class TestErrors:
    def test_not_a_bmp(self, tmp_path):
        path = tmp_path / "no.bmp"
        path.write_bytes(b"PNG....")
        with pytest.raises(TerraError, match="not a BMP"):
            read_bmp(str(path))

    def test_3d_input_rejected(self, tmp_path):
        with pytest.raises(TerraError, match="2-D"):
            write_bmp(str(tmp_path / "x.bmp"), np.zeros((2, 2, 3)))

    def test_float_conversions(self):
        img = np.array([[0, 128, 255]], dtype=np.uint8)
        f = to_float(img)
        assert f.dtype == np.float32 and f.max() == 1.0
        assert np.array_equal(from_float(f), img)


class TestWithTerraPipeline:
    def test_bmp_through_laplace(self, tmp_path):
        """BMP in, Terra stencil, BMP out — the §2 user experience."""
        from repro import float32, terra
        from repro.lib.image import Image

        Img = Image(float32)
        blur = terra("""
        terra blur(img : &Img, out : &Img) : {}
          var n = img.N
          out:init(n)
          for i = 0, n do
            for j = 0, n do
              out:set(i, j, img:get(i, j) * 0.5f)
            end
          end
        end
        """, env={"Img": Img})

        src = np.random.RandomState(0).randint(0, 256, (16, 16),
                                               dtype=np.uint8)
        in_bmp = str(tmp_path / "in.bmp")
        write_bmp(in_bmp, src)

        loaded = to_float(read_bmp(in_bmp))
        from repro.lib.image import read_image_file, write_image_file
        timg = str(tmp_path / "t.timg")
        write_image_file(timg, loaded)

        runner = terra("""
        terra run(inp : rawstring, outp : rawstring) : bool
          var i = Img {}
          var o = Img {}
          if not i:load(inp) then return false end
          blur(&i, &o)
          var ok = o:save(outp)
          i:free() o:free()
          return ok
        end
        """, env={"Img": Img, "blur": blur})
        out_timg = str(tmp_path / "o.timg")
        assert runner(timg, out_timg)
        result = read_image_file(out_timg)
        out_bmp = str(tmp_path / "out.bmp")
        write_bmp(out_bmp, result)
        back = read_bmp(out_bmp)
        assert np.allclose(to_float(back), loaded * 0.5, atol=2 / 255)
