"""terralib compatibility namespace tests — paper-style code reads as-is."""

import pytest

from repro import int_, functype, terra
from repro.core import types as T
from repro.lib.stdlib import List, newlist, terralib


class TestTerralibNamespace:
    def test_includec_through_namespace(self):
        std = terralib.includec("stdlib.h")
        f = terra("""
        terra f() : int
          var p = [&int](std.malloc(4))
          @p = 7
          var v = @p
          std.free(p)
          return v
        end
        """, env={"std": std})
        assert f() == 7

    def test_newlist_insert_like_the_paper(self):
        # Fig. 5: loadc:insert(quote ... end)
        from repro import quote_, symbol
        acc = symbol(int_, "acc")
        loadc = terralib.newlist()
        for i in range(3):
            loadc.insert(quote_("[acc] = [acc] + [i]"))
        f = terra("""
        terra f() : int
          var [acc] = 0
          [loadc]
          return [acc]
        end
        """)
        assert f() == 3

    def test_list_map(self):
        params = newlist([T.int32, T.float64])
        from repro import symbol
        syms = params.map(symbol)
        assert all(terralib.issymbol(s) for s in syms)
        assert syms[0].type is T.int32

    def test_predicates(self):
        f = terra("terra f() : int return 1 end")
        assert terralib.isfunction(f)
        assert not terralib.isfunction(42)
        assert terralib.istype(T.int32)
        from repro import expr, symbol
        assert terralib.isquote(expr("1"))
        assert terralib.issymbol(symbol())
        assert terralib.israwlist([1, 2])

    def test_offsetof(self):
        S = terralib.struct("struct OffS { a : int8, b : int64 }")
        assert terralib.offsetof(S, "b") == 8

    def test_cast_wraps_python_function(self):
        cb = terralib.cast(functype([int_], int_), lambda x: x + 100)
        f = terra("terra f(v : int) : int return cb(v) end", env={"cb": cb})
        assert f(1) == 101

    def test_types_table(self):
        tt = terralib.types
        assert tt.pointer(T.int32).ispointer()
        fp = tt.funcpointer([T.int32], [T.int32])
        assert fp.ispointer() and fp.pointee.isfunction()

    def test_namespace_sugar_from_terra(self):
        # terralib itself resolves through the nested-table sugar
        from repro.lib.stdlib import terralib as tl
        c = tl.constant(T.int32, 9)
        f = terra("terra f() : int return [c] end")
        assert f() == 9
