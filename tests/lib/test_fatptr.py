"""Fat-pointer interface tests (§6.3.1's alternative implementation)."""

import pytest

from repro import float_, struct, terra
from repro.errors import TypeCheckError
from repro.lib import fatptr


def make():
    Area = fatptr.interface({"area": ([], float_)}, name="FArea")
    Circle = struct("struct FCircle { r : float }")
    circle_area = terra(
        "terra(self : &FCircle) : float return 3.0f * self.r * self.r end",
        env={"FCircle": Circle})
    Area.implement(Circle, {"area": circle_area})
    Square = struct("struct FSquare { l : float }")
    square_area = terra(
        "terra(self : &FSquare) : float return self.l * self.l end",
        env={"FSquare": Square})
    Area.implement(Square, {"area": square_area})
    return Area, Circle, Square


class TestFatPointers:
    def test_dispatch(self):
        Area, Circle, Square = make()
        f = terra("""
        terra total() : float
          var c = FCircle { 2.0f }
          var s = FSquare { 3.0f }
          var objs : IFace[2]
          objs[0] = [Area.wrap(Circle)](&c)
          objs[1] = [Area.wrap(Square)](&s)
          var sum = 0.0f
          for i = 0, 2 do
            sum = sum + objs[i]:area()
          end
          return sum
        end
        """, env={"FCircle": Circle, "FSquare": Square, "Area": Area,
                  "IFace": Area.type})
        assert f() == pytest.approx(3.0 * 4 + 9.0)

    def test_fat_pointer_is_two_words(self):
        Area, _, _ = make()
        assert Area.type.sizeof() == 16  # object pointer + vtable pointer

    def test_no_per_object_overhead(self):
        _, Circle, _ = make()
        Circle.complete()
        assert Circle.entry_names() == ["r"]  # unlike javalike's layout

    def test_missing_method_rejected(self):
        Area = fatptr.interface({"area": ([], float_)}, name="FA2")
        S = struct("struct FS2 { x : float }")
        with pytest.raises(TypeCheckError, match="missing"):
            Area.implement(S, {})

    def test_wrap_unknown_class_rejected(self):
        Area, _, _ = make()
        S = struct("struct FS3 { x : float }")
        with pytest.raises(TypeCheckError, match="does not implement"):
            Area.wrap(S)
