"""Class-system tests — paper §6.3.1 behaviours."""

import pytest

from repro import float_, struct, terra
from repro.core import types as T
from repro.lib import javalike as J


def make_shapes():
    Area = J.interface({"area": ([], float_)}, name="Area")
    Shape = struct("struct Shape { tag : int }")
    terra("terra Shape:area() : float return 0.f end", env={"Shape": Shape})
    Square = struct("struct Square { len : float }")
    J.extends(Square, Shape)
    J.implements(Square, Area)
    terra("terra Square:area() : float return self.len * self.len end",
          env={"Square": Square})
    return Area, Shape, Square


class TestDispatch:
    def test_virtual_through_class(self):
        _, _, Square = make_shapes()
        f = terra("""
        terra f(l : float) : float
          var s : Square
          s:init()
          s.len = l
          return s:area()
        end
        """, env={"Square": Square})
        assert f(4.0) == 16.0

    def test_virtual_through_parent_pointer(self):
        """A child override must be reached through a parent pointer —
        true virtual dispatch."""
        _, Shape, Square = make_shapes()
        f = terra("""
        terra callit(p : &Shape) : float return p:area() end
        terra f(l : float) : float
          var s : Square
          s:init()
          s.len = l
          return callit([&Shape](&s))
        end
        """, env={"Square": Square, "Shape": Shape})
        assert f.f(3.0) == 9.0

    def test_implicit_upcast(self):
        """&Square converts implicitly to &Shape via __cast."""
        _, Shape, Square = make_shapes()
        f = terra("""
        terra callit(p : &Shape) : float return p:area() end
        terra f(l : float) : float
          var s : Square
          s:init()
          s.len = l
          return callit(&s)   -- implicit &Square -> &Shape
        end
        """, env={"Square": Square, "Shape": Shape})
        assert f.f(5.0) == 25.0

    def test_interface_dispatch(self):
        Area, _, Square = make_shapes()
        f = terra("""
        terra throughiface(d : &Iface) : float return d:area() end
        terra f(l : float) : float
          var s : Square
          s:init()
          s.len = l
          var d : &Iface = &s
          return throughiface(d)
        end
        """, env={"Square": Square, "Iface": Area.type})
        assert f.f(6.0) == 36.0

    def test_invalid_downcast_rejected(self):
        from repro.errors import TypeCheckError
        _, Shape, Square = make_shapes()
        fn = terra("""
        terra f(p : &Shape) : &Square
          return p     -- parent to child is not implicit
        end
        """, env={"Square": Square, "Shape": Shape})
        with pytest.raises(TypeCheckError):
            fn.ensure_typechecked()


class TestLayout:
    def test_parent_prefix(self):
        """The paper: the beginning of each object has the same layout as
        an object of the parent."""
        _, Shape, Square = make_shapes()
        Square.complete()
        Shape.complete()
        Shape.layout()
        Square.layout()
        assert Square.offsetof("__vtable") == Shape.offsetof("__vtable") == 0
        assert Square.offsetof("tag") == Shape.offsetof("tag")

    def test_interface_pointer_field_present(self):
        Area, _, Square = make_shapes()
        Square.complete()
        assert Square.has_entry(f"__if_{Area.name}")

    def test_finalize_runs_via_typechecker(self):
        """__finalizelayout is triggered by type *use*, not manually."""
        _, _, Square = make_shapes()
        assert not Square._finalized
        terra("terra g() : int return [int](sizeof(Square)) end",
              env={"Square": Square})()
        assert Square._finalized


class TestInheritanceChains:
    def test_grandparent(self):
        A = struct("struct A_ { x : int }")
        terra("terra A_:get() : int return self.x end", env={"A_": A})
        B = struct("struct B_ { y : int }")
        J.extends(B, A)
        C = struct("struct C_ { z : int }")
        J.extends(C, B)
        terra("terra C_:get() : int return self.x + self.z end",
              env={"C_": C})
        f = terra("""
        terra callit(a : &A_) : int return a:get() end
        terra f() : int
          var c : C_
          c:init()
          c.x = 10
          c.z = 5
          return callit(&c)
        end
        """, env={"C_": C, "A_": A})
        assert f.f() == 15

    def test_inherited_method_callable_on_child(self):
        A = struct("struct A2 { x : int }")
        terra("terra A2:twice() : int return self.x * 2 end", env={"A2": A})
        B = struct("struct B2 { }")
        J.extends(B, A)
        f = terra("""
        terra f() : int
          var b : B2
          b:init()
          b.x = 21    -- inherited field
          return b:twice()
        end
        """, env={"B2": B})
        assert f() == 42
