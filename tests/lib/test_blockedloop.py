"""blockedloop tests — the §2 staged loop-nest generator."""

import numpy as np
import pytest

from repro import quote_, symbol, terra
from repro.lib.blockedloop import blockedloop


def make_sum(N, blocks):
    acc = symbol(None, "acc")
    arr = symbol(None, "arr")
    # note: quotes made inside a lambda must name their environment
    # explicitly (a Python lambda called elsewhere does not lexically see
    # these locals the way a Lua closure would)
    body = lambda i, j: quote_(  # noqa: E731
        "[acc] = [acc] + [arr][[i] * [N] + [j]]",
        env=dict(acc=acc, arr=arr, N=N, i=i, j=j))
    loop = blockedloop(N, blocks, body)
    return terra("""
    terra f([arr] : &double) : double
      var [acc] = 0.0
      [loop]
      return [acc]
    end
    """)


class TestBlockedLoop:
    @pytest.mark.parametrize("blocks", [[1], [8, 1], [16, 4, 1], [32, 8, 1]])
    def test_covers_every_cell_once(self, blocks):
        N = 32
        f = make_sum(N, blocks)
        data = np.random.RandomState(0).rand(N, N)
        assert f(data) == pytest.approx(data.sum(), rel=1e-9)

    def test_non_dividing_block_sizes(self):
        # N not a multiple of the block size: min() clamps the edges
        N = 30
        f = make_sum(N, [16, 4, 1])
        data = np.random.RandomState(1).rand(N, N)
        assert f(data) == pytest.approx(data.sum(), rel=1e-9)

    @pytest.mark.parametrize("N,blocks", [
        (12, [6, 4, 1]),   # 4 does not divide 6: sub-block must stop at
        (10, [6, 4, 1]),   # the parent block edge, not at min(+4, N)
        (7, [5, 3, 1]),
        (20, [7, 3, 1]),
    ])
    def test_non_divisor_chain_visits_each_cell_once(self, N, blocks):
        # regression: levels used to clamp against the global N instead
        # of the enclosing block's clamped limit, double-visiting the
        # cells between a sub-block edge and its parent block edge
        f = make_sum(N, blocks)
        data = np.random.RandomState(N).rand(N, N)
        assert f(data) == pytest.approx(data.sum(), rel=1e-9)

    def test_non_divisor_chain_exact_visit_counts(self):
        # count writes per cell: exactly one each, even on edge blocks
        N = 12
        out = symbol(None, "out")
        body = lambda i, j: quote_(  # noqa: E731
            "[out][[i] * [N] + [j]] = [out][[i] * [N] + [j]] + 1",
            env=dict(out=out, N=N, i=i, j=j))
        loop = blockedloop(N, [6, 4, 1], body)
        f = terra("""
        terra f([out] : &int) : {}
          [loop]
        end
        """)
        buf = np.zeros(N * N, dtype=np.int32)
        f(buf)
        assert np.array_equal(buf, np.ones(N * N, dtype=np.int32))

    def test_body_sees_correct_indices(self):
        N = 8
        out = symbol(None, "out")
        body = lambda i, j: quote_(  # noqa: E731
            "[out][[i] * [N] + [j]] = [i] * 100 + [j]",
            env=dict(out=out, N=N, i=i, j=j))
        loop = blockedloop(N, [4, 1], body)
        f = terra("""
        terra f([out] : &int) : {}
          [loop]
        end
        """)
        buf = np.zeros(N * N, dtype=np.int32)
        f(buf)
        expected = np.add.outer(np.arange(N) * 100,
                                np.arange(N)).reshape(-1)
        assert np.array_equal(buf, expected)

    def test_single_level_equals_plain_loop(self):
        N = 16
        f = make_sum(N, [1])
        data = np.ones((N, N))
        assert f(data) == N * N
