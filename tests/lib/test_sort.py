"""Staged-sort tests, with model-based checking against numpy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import terra
from repro.core import types as T
from repro.lib.sort import Sort


class TestBasics:
    def test_ints(self):
        sort = Sort(T.int32)
        data = np.array([5, 3, 9, 1, 1, -4, 7], dtype=np.int32)
        sort(data, len(data))
        assert list(data) == sorted([5, 3, 9, 1, 1, -4, 7])

    def test_doubles(self):
        sort = Sort(T.float64)
        rng = np.random.RandomState(0)
        data = rng.randn(1000)
        expected = np.sort(data)
        sort(data, len(data))
        assert np.array_equal(data, expected)

    def test_empty_and_single(self):
        sort = Sort(T.int32)
        data = np.array([], dtype=np.int32)
        sort(data, 0)
        one = np.array([42], dtype=np.int32)
        sort(one, 1)
        assert one[0] == 42

    def test_already_sorted(self):
        sort = Sort(T.int64)
        data = np.arange(500, dtype=np.int64)
        sort(data, 500)
        assert np.array_equal(data, np.arange(500))

    def test_reverse_sorted(self):
        sort = Sort(T.int64)
        data = np.arange(500, dtype=np.int64)[::-1].copy()
        sort(data, 500)
        assert np.array_equal(data, np.arange(500))

    def test_all_equal(self):
        sort = Sort(T.int32)
        data = np.full(100, 7, dtype=np.int32)
        sort(data, 100)
        assert np.all(data == 7)

    def test_custom_comparator_descending(self):
        desc = Sort(T.int32, compare=lambda a, b: b.lt(a))
        data = np.array([3, 1, 4, 1, 5, 9, 2, 6], dtype=np.int32)
        desc(data, len(data))
        assert list(data) == sorted([3, 1, 4, 1, 5, 9, 2, 6], reverse=True)

    def test_comparator_on_key(self):
        # order by absolute value, via an inlined comparator macro
        from repro import expr

        def by_abs(a, b):
            return expr(
                "(av * av) < (bv * bv)", env={"av": a, "bv": b})

        sort = Sort(T.int32, compare=by_abs)
        data = np.array([-5, 2, -1, 4], dtype=np.int32)
        sort(data, 4)
        assert [abs(v) for v in data] == [1, 2, 4, 5]

    def test_memoized(self):
        assert Sort(T.int32) is Sort(T.int32)
        assert Sort(T.int32) is not Sort(T.int64)


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(-2**31, 2**31 - 1), max_size=300))
    def test_matches_sorted(self, values):
        sort = Sort(T.int32)
        data = np.array(values, dtype=np.int32)
        sort(data, len(data))
        assert list(data) == sorted(values)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              width=32), max_size=200))
    def test_floats_match(self, values):
        sort = Sort(T.float32)
        data = np.array(values, dtype=np.float32)
        expected = np.sort(data)
        sort(data, len(data))
        assert np.array_equal(data, expected)

    def test_interp_agrees_small(self):
        sort = Sort(T.int32)
        data_c = np.array([4, 2, 8, 6, 1], dtype=np.int32)
        data_i = data_c.copy()
        sort.compile("c")(data_c, 5)
        sort.compile("interp")(data_i, 5)
        assert np.array_equal(data_c, data_i)
