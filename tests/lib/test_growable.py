"""GrowableArray(T) tests, including hypothesis model-based checking."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import struct, terra
from repro.core import types as T
from repro.errors import TypeCheckError
from repro.lib.growable import GrowableArray


class TestBasics:
    def test_push_get(self, backend):
        Arr = GrowableArray(T.int32)
        f = terra("""
        terra f(n : int) : int
          var a : Arr
          a:init()
          for i = 0, n do a:push(i * i) end
          var s = 0
          for i = 0, a:size() do s = s + a:get(i) end
          a:free()
          return s
        end
        """, env={"Arr": Arr})
        assert f.compile(backend)(10) == sum(i * i for i in range(10))

    def test_growth_doubles(self):
        Arr = GrowableArray(T.int64)
        f = terra("""
        terra f(n : int64) : int64
          var a : Arr
          a:init()
          for i = 0, n do a:push(i) end
          var cap = a:capacity()
          a:free()
          return cap
        end
        """, env={"Arr": Arr})
        cap = f(100)
        assert cap >= 100 and cap <= 256  # amortized doubling, not linear

    def test_pop(self):
        Arr = GrowableArray(T.float64)
        f = terra("""
        terra f() : double
          var a : Arr
          a:init()
          a:push(1.5)
          a:push(2.5)
          var top = a:pop()
          var rest = a:pop()
          a:free()
          return top * 10.0 + rest
        end
        """, env={"Arr": Arr})
        assert f() == 26.5

    def test_struct_elements(self):
        Pt = struct("struct GPt { x : int, y : int }")
        Arr = GrowableArray(Pt)
        f = terra("""
        terra f() : int
          var a : Arr
          a:init()
          a:push(GPt { 1, 2 })
          a:push(GPt { 30, 40 })
          var p = a:get(1)
          a:free()
          return p.x + p.y
        end
        """, env={"Arr": Arr, "GPt": Pt})
        assert f() == 70

    def test_memoized(self):
        assert GrowableArray(T.int32) is GrowableArray(T.int32)
        assert GrowableArray(T.int32) is not GrowableArray(T.int64)

    def test_python_builtin_coerced(self):
        assert GrowableArray(int) is GrowableArray(T.int32)

    def test_bad_type(self):
        with pytest.raises(TypeCheckError):
            GrowableArray("int")

    def test_free_without_alloc_ok(self):
        Arr = GrowableArray(T.int32)
        f = terra("""
        terra f() : int
          var a : Arr
          a:init()
          a:free()
          a:free()
          return 1
        end
        """, env={"Arr": Arr})
        assert f() == 1


class TestModelBased:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.one_of(
        st.integers(-1000, 1000),           # push value
        st.just("pop"), st.just("clear")),
        min_size=1, max_size=40))
    def test_against_python_list(self, ops):
        """Drive the Terra array and a Python list with the same operation
        sequence; all observations must match."""
        Arr = GrowableArray(T.int64)
        driver = terra("""
        terra new() : &Arr
          var a = [&Arr](std.malloc(sizeof(Arr)))
          a:init()
          return a
        end
        terra push(a : &Arr, v : int64) : {} a:push(v) end
        terra pop(a : &Arr) : int64 return a:pop() end
        terra size(a : &Arr) : int64 return a:size() end
        terra get(a : &Arr, i : int64) : int64 return a:get(i) end
        terra clear(a : &Arr) : {} a:clear() end
        terra destroy(a : &Arr) : {} a:free() std.free(a) end
        """, env={"Arr": Arr, "std": __import__("repro").includec("stdlib.h")})
        handle = driver.new()
        model: list[int] = []
        try:
            for op in ops:
                if op == "pop":
                    if model:
                        assert driver.pop(handle) == model.pop()
                elif op == "clear":
                    driver.clear(handle)
                    model.clear()
                else:
                    driver.push(handle, op)
                    model.append(op)
                assert driver.size(handle) == len(model)
                for i, expected in enumerate(model):
                    assert driver.get(handle, i) == expected
        finally:
            driver.destroy(handle)
