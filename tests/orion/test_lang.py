"""Orion front-end unit tests: IR construction via operator overloading."""

import pytest

from repro.errors import TerraError
from repro.orion import lang as L


class TestExpressionBuilding:
    def test_image_is_stage(self):
        f = L.image("f")
        assert f.is_input and f.name == "f"

    def test_shift_creates_read(self):
        f = L.image("f")
        r = f(1, -2)
        assert isinstance(r, L.Read)
        assert (r.dx, r.dy) == (1, -2) and r.stage is f

    def test_shift_composition(self):
        f = L.image("f")
        r = f(1, 0)(2, 3)
        assert (r.dx, r.dy) == (3, 3)
        assert r.stage is f  # no new stage created

    def test_arithmetic_builds_binops(self):
        f = L.image("f")
        e = f(0, 0) * 2 + 1
        assert isinstance(e, L.BinOp) and e.op == "+"
        assert isinstance(e.lhs, L.BinOp) and e.lhs.op == "*"
        assert isinstance(e.rhs, L.Const) and e.rhs.value == 1.0

    def test_reflected_operators(self):
        f = L.image("f")
        e = 2.0 / (1 - f(0, 0))
        assert isinstance(e, L.BinOp) and e.op == "/"
        assert isinstance(e.lhs, L.Const)

    def test_negation(self):
        f = L.image("f")
        e = -f(0, 0)
        assert isinstance(e, L.BinOp) and e.op == "-"
        assert e.lhs.value == 0.0

    def test_stage_arithmetic_reads_origin(self):
        f = L.image("f")
        s = L.stage(f(0, 0) + 1, "s")
        e = s * 2  # bare stage in arithmetic = s(0,0)
        assert isinstance(e.lhs, L.Read)
        assert (e.lhs.dx, e.lhs.dy) == (0, 0)

    def test_min_max_clamp(self):
        f = L.image("f")
        e = L.clamp(f(0, 0), 0.0, 1.0)
        assert e.op == "min" and e.lhs.op == "max"

    def test_shifting_expr_stages_it(self):
        """The paper's diffuse pattern: x(-1,0) on a compound expression
        implicitly makes it a schedulable stage."""
        f = L.image("f")
        e = f(0, 0) * 0.5
        r = e(-1, 0)
        assert isinstance(r, L.Read)
        assert not r.stage.is_input
        assert r.stage.expr is e

    def test_as_stage_idempotent_on_origin_read(self):
        f = L.image("f")
        assert L.as_stage(f(0, 0)) is f

    def test_named_stage_policy(self):
        f = L.image("f")
        s = L.stage(f(0, 0) + 1, "blur", policy=L.LINEBUFFER)
        assert s.default_policy == L.LINEBUFFER

    def test_bounded_flag(self):
        f = L.image("f")
        s = L.stage(f(0, 0) + 1, "b", bounded=True)
        assert s.bounded

    def test_bad_policy_rejected(self):
        f = L.image("f")
        with pytest.raises(TerraError, match="policy"):
            L.stage(f(0, 0), "x", policy="cache")

    def test_bad_operand(self):
        f = L.image("f")
        with pytest.raises(TerraError):
            f(0, 0) + "nope"

    def test_param(self):
        p = L.param("gain")
        assert isinstance(p, L.Param)
        e = L.image("f")(0, 0) * p
        assert isinstance(e.rhs, L.Param)

    def test_unique_stage_ids(self):
        ids = {L.image(f"im{i}").id for i in range(10)}
        assert len(ids) == 10
