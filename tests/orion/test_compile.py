"""Orion compiler tests: schedule equivalence is THE invariant —
"the schedule can be changed independently of the algorithm" (§6.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TerraError
from repro.orion import lang as L
from repro.orion.compile import compile_pipeline

N = 24


def zero_pad_ref(img, fn):
    """Apply fn over a zero-padded copy to compute reference reads."""
    P = 4
    padded = np.zeros((N + 2 * P, N + 2 * P), dtype=np.float64)
    padded[P:-P, P:-P] = img

    def read(dx, dy):
        return padded[P + dy:P + dy + N, P + dx:P + dx + N]
    return fn(read).astype(np.float32)


@pytest.fixture
def img():
    return np.random.RandomState(0).rand(N, N).astype(np.float32)


class TestCorrectness:
    def test_identity(self, img):
        f = L.image("f")
        out = compile_pipeline(f(0, 0), N).run(img)
        assert np.allclose(out, img)

    def test_shift_reads_zero_boundary(self, img):
        f = L.image("f")
        out = compile_pipeline(f(1, 0), N).run(img)
        ref = zero_pad_ref(img, lambda r: r(1, 0))
        assert np.allclose(out, ref)

    def test_negative_shifts(self, img):
        f = L.image("f")
        out = compile_pipeline(f(-2, -1), N).run(img)
        ref = zero_pad_ref(img, lambda r: r(-2, -1))
        assert np.allclose(out, ref)

    def test_composed_shift(self, img):
        f = L.image("f")
        shifted = f(1, 0)(1, 1)  # compose offsets without a new stage
        out = compile_pipeline(shifted, N).run(img)
        ref = zero_pad_ref(img, lambda r: r(2, 1))
        assert np.allclose(out, ref)

    def test_arithmetic(self, img):
        f = L.image("f")
        e = (f(0, 0) * 2.0 + 1.0) / 4.0 - f(1, 0)
        out = compile_pipeline(e, N).run(img)
        ref = zero_pad_ref(img, lambda r: (r(0, 0) * 2 + 1) / 4 - r(1, 0))
        assert np.allclose(out, ref, atol=1e-6)

    def test_min_max_clamp(self, img):
        f = L.image("f")
        e = L.clamp(f(0, 0) * 3.0, 0.25, 0.75)
        out = compile_pipeline(e, N).run(img)
        ref = np.clip(img * np.float32(3.0), 0.25, 0.75)
        assert np.allclose(out, ref)

    def test_two_inputs(self, img):
        a, b = L.image("a"), L.image("b")
        pipe = compile_pipeline(a(0, 0) * b(0, 0), N)
        assert set(pipe.input_names) == {"a", "b"}
        other = np.random.RandomState(1).rand(N, N).astype(np.float32)
        args = {name: (img if name == "a" else other)
                for name in pipe.input_names}
        out = pipe.run(*[args[n] for n in pipe.input_names])
        assert np.allclose(out, img * other)

    def test_diamond_dependency(self, img):
        f = L.image("f")
        base = L.stage(f(0, 0) * 2.0, "base")
        left = L.stage(base(-1, 0) + 1.0, "left")
        right = L.stage(base(1, 0) - 1.0, "right")
        out = compile_pipeline(left(0, 0) * right(0, 0), N).run(img)
        # numpy reference computed directly:
        P = 2
        padded = np.zeros((N + 2 * P, N + 2 * P), dtype=np.float32)
        padded[P:-P, P:-P] = img * np.float32(2.0)

        def rd(dx, dy):
            return padded[P + dy:P + dy + N, P + dx:P + dx + N]
        expect = (rd(-1, 0) + 1) * (rd(1, 0) - 1)
        assert np.allclose(out, expect, atol=1e-5)


class TestScheduleEquivalence:
    SCHEDULES = [
        dict(default_policy=L.MATERIALIZE, vectorize=0),
        dict(default_policy=L.MATERIALIZE, vectorize=4),
        dict(default_policy=L.INLINE, vectorize=0),
        dict(default_policy=L.INLINE, vectorize=8),
    ]

    def _pipeline(self):
        f = L.image("f")
        s1 = L.stage((f(-1, 0) + f(1, 0) + f(0, -1) + f(0, 1)) / 4.0, "s1")
        s2 = L.stage(s1(0, 0) * 0.5 + f(0, 0) * 0.5, "s2")
        return s2(1, 1) - s2(-1, -1)

    def test_all_schedules_identical(self, img):
        results = []
        for kwargs in self.SCHEDULES:
            out = compile_pipeline(self._pipeline(), N, **kwargs).run(img)
            results.append(out)
        for other in results[1:]:
            assert np.allclose(results[0], other, atol=1e-6)

    def test_linebuffer_matches(self, img):
        base = compile_pipeline(self._pipeline(), N).run(img)
        f = L.image("f")
        s1 = L.stage((f(-1, 0) + f(1, 0) + f(0, -1) + f(0, 1)) / 4.0, "s1",
                     policy=L.LINEBUFFER)
        s2 = L.stage(s1(0, 0) * 0.5 + f(0, 0) * 0.5, "s2")
        out = compile_pipeline(s2(1, 1) - s2(-1, -1), N).run(img)
        assert np.allclose(base, out, atol=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(-2, 2), st.integers(-2, 2),
                              st.sampled_from(["+", "-", "*"])),
                    min_size=1, max_size=4),
           st.integers(0, 2))
    def test_property_random_chains(self, steps, which_schedule):
        """Random stencil chains give the same image under every schedule."""
        rng = np.random.RandomState(7)
        image = rng.rand(N, N).astype(np.float32)
        f = L.image("f")
        e = f(0, 0)
        for i, (dx, dy, op) in enumerate(steps):
            stage = L.stage(e, f"st{i}")
            read = stage(dx, dy)
            if op == "+":
                e = read + f(0, 0)
            elif op == "-":
                e = read - 0.5
            else:
                e = read * 0.5
        base = compile_pipeline(e, N).run(image)
        schedule = [dict(default_policy=L.INLINE),
                    dict(vectorize=4),
                    dict(default_policy=L.LINEBUFFER)][which_schedule]
        # linebuffering the output stage itself is not allowed; the
        # compiler forces materialize on outputs, so this always compiles
        out = compile_pipeline(e, N, **schedule).run(image)
        assert np.allclose(base, out, atol=1e-5)


class TestErrors:
    def test_non_constant_offset(self):
        f = L.image("f")
        with pytest.raises(TerraError, match="constant"):
            f(0.5, 0)

    def test_unknown_schedule_entry(self):
        f = L.image("f")
        with pytest.raises(TerraError, match="not in the pipeline"):
            compile_pipeline(f(0, 0), N, schedule={"ghost": "inline"})

    def test_bad_vector_width(self):
        f = L.image("f")
        with pytest.raises(TerraError, match="width"):
            compile_pipeline(f(0, 0), N, vectorize=3)

    def test_bad_policy(self):
        f = L.image("f")
        s = L.stage(f(0, 0) + 1.0, "s")
        with pytest.raises(TerraError, match="policy"):
            compile_pipeline(s(0, 0), N, schedule={s: "cached"})

    def test_wrong_image_size(self, img):
        f = L.image("f")
        pipe = compile_pipeline(f(0, 0), N)
        with pytest.raises(TerraError, match="image"):
            pipe.run(np.zeros((N + 1, N + 1), dtype=np.float32))


class TestRuntimeParams:
    def test_param_changes_result_without_recompile(self, img):
        f = L.image("f")
        a = L.param("gain")
        pipe = compile_pipeline(f(0, 0) * a, N)
        assert pipe.param_names == ["gain"]
        assert np.allclose(pipe.run(img, gain=2.0), img * 2, atol=1e-6)
        assert np.allclose(pipe.run(img, gain=0.5), img * np.float32(0.5),
                           atol=1e-6)

    def test_param_in_vectorized_stencil(self, img):
        f = L.image("f")
        a = L.param("a")
        out = (f(0, 0) + a * (f(-1, 0) + f(1, 0))) / (1 + 2 * a)
        pipe = compile_pipeline(out, N, vectorize=4)
        assert np.allclose(pipe.run(img, a=0.0), img, atol=1e-6)

    def test_missing_param_rejected(self, img):
        f = L.image("f")
        pipe = compile_pipeline(f(0, 0) * L.param("k"), N)
        with pytest.raises(TerraError, match="missing"):
            pipe.run(img)

    def test_unknown_param_rejected(self, img):
        f = L.image("f")
        pipe = compile_pipeline(f(0, 0) * L.param("k"), N)
        with pytest.raises(TerraError, match="unknown"):
            pipe.run(img, k=1.0, zz=2.0)

    def test_param_cannot_be_shifted(self):
        with pytest.raises(TerraError, match="shifted"):
            L.param("p")(1, 0)


class TestMultiOutput:
    def test_two_outputs(self, img):
        f = L.image("f")
        shared = L.stage((f(-1, 0) + f(1, 0)) * 0.5, "shared")
        a = shared(0, 0) + 1.0
        b = shared(0, 0) * 2.0
        pipe = compile_pipeline([a, b], N)
        assert pipe.output_names == ["out0", "out1"]
        oa, ob = pipe.run(img)
        # the shared producer is computed once, feeding both outputs
        pad = np.zeros((N, N + 2), np.float32)
        pad[:, 1:1 + N] = img
        shared_ref = (pad[:, :N] + pad[:, 2:2 + N]) * np.float32(0.5)
        assert np.allclose(oa, shared_ref + 1, atol=1e-6)
        assert np.allclose(ob, shared_ref * 2, atol=1e-6)

    def test_multi_output_matches_separate(self, img):
        f = L.image("f")
        e1 = f(1, 0) - f(-1, 0)
        e2 = f(0, 1) - f(0, -1)
        sep1 = compile_pipeline(f(1, 0) - f(-1, 0), N).run(img)
        sep2 = compile_pipeline(f(0, 1) - f(0, -1), N).run(img)
        both = compile_pipeline([e1, e2], N, vectorize=4).run(img)
        assert np.allclose(both[0], sep1, atol=1e-6)
        assert np.allclose(both[1], sep2, atol=1e-6)

    def test_output_consumed_by_other_output(self, img):
        f = L.image("f")
        first = L.stage(f(0, 0) * 2.0, "first")
        second = first(1, 0) + 1.0
        pipe = compile_pipeline([first, second], N)
        o1, o2 = pipe.run(img)
        assert np.allclose(o1, img * 2, atol=1e-6)
        pad = np.zeros((N, N + 2), np.float32)
        pad[:, 1:1 + N] = o1
        assert np.allclose(o2, pad[:, 2:2 + N] + 1, atol=1e-6)

    def test_linebuffer_into_multi_output(self, img):
        f = L.image("f")
        mid = L.stage((f(0, -1) + f(0, 1)) * 0.5, "mid", policy=L.LINEBUFFER)
        a = mid(0, 0) + f(0, 0)
        b = mid(0, 0) - f(0, 0)
        base = compile_pipeline([a, b], N).run(img)
        fused = compile_pipeline([a, b], N, vectorize=4).run(img)
        assert np.allclose(base[0], fused[0], atol=1e-6)
        assert np.allclose(base[1], fused[1], atol=1e-6)


class TestTileSchedule:
    """Orion loop directives as first-class repro.schedule objects.

    ``tile_schedule=Schedule([Vectorize("x", V), Parallel("y", NT)])``
    must be pure sugar for the legacy ``vectorize=``/``parallel=``
    arguments: byte-identical C (modulo the per-compile function-name
    counter) and identical results."""

    @staticmethod
    def normalize(source):
        import re
        return re.sub(r"orionfn\d+", "orionfn", source)

    def blur(self):
        f = L.image("f")
        return L.stage((f(-1, 0) + f(0, 0) + f(1, 0)) / 3.0, "blur")

    def test_vectorize_byte_identical(self, img):
        from repro.schedule import Schedule, Vectorize
        blur = self.blur()  # one pipeline, compiled under both spellings
        legacy = compile_pipeline(blur, N, vectorize=4)
        new = compile_pipeline(
            blur, N, tile_schedule=Schedule([Vectorize("x", 4)]))
        assert self.normalize(new.source) == self.normalize(legacy.source)
        assert np.array_equal(new.run(img), legacy.run(img))

    def test_parallel_byte_identical(self, img):
        from repro.schedule import Parallel, Schedule, Vectorize
        blur = self.blur()
        legacy = compile_pipeline(blur, N, vectorize=4, parallel=2)
        new = compile_pipeline(
            blur, N,
            tile_schedule=Schedule([Vectorize("x", 4), Parallel("y", 2)]))
        assert self.normalize(new.source) == self.normalize(legacy.source)
        assert new.parallel_plan is not None
        assert np.array_equal(new.run(img), legacy.run(img))

    def test_legacy_args_record_a_schedule(self):
        from repro.schedule import Parallel, Vectorize
        s = compile_pipeline(self.blur(), N, vectorize=8)
        assert s.tile_schedule.of_kind(Vectorize) == [Vectorize("x", 8)]
        assert compile_pipeline(self.blur(), N).tile_schedule.key() \
            == "naive"

    def test_mixing_spellings_rejected(self):
        from repro.schedule import Schedule, ScheduleError, Vectorize
        with pytest.raises(ScheduleError, match="not both"):
            compile_pipeline(self.blur(), N, vectorize=4,
                             tile_schedule=Schedule([Vectorize("x", 4)]))

    def test_unsupported_directives_rejected(self):
        from repro.schedule import Block, Schedule, ScheduleError, \
            Vectorize
        with pytest.raises(ScheduleError, match="scanline axis 'x'"):
            compile_pipeline(self.blur(), N,
                             tile_schedule=Schedule([Vectorize("y", 4)]))
        with pytest.raises(ScheduleError, match="Block"):
            compile_pipeline(self.blur(), N,
                             tile_schedule=Schedule([Block("x", 8)]))
