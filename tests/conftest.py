"""Shared fixtures for the test suite."""

import pytest

from repro import get_backend


@pytest.fixture(params=["c", "interp"])
def backend(request):
    """Both execution backends; differential tests run everything twice."""
    return get_backend(request.param)


@pytest.fixture
def cbackend():
    return get_backend("c")


@pytest.fixture
def interp():
    return get_backend("interp")
