"""Tests for the Figure-5 staged GEMM kernel and the full blocked GEMM."""

import numpy as np
import pytest

from repro import double, float_
from repro.autotune.genkernel import genkernel
from repro.autotune.matmul import blocked_matmul, make_gemm, naive_matmul


def _abc(n, dtype, seed=0):
    rng = np.random.RandomState(seed)
    A = np.ascontiguousarray(rng.rand(n, n).astype(dtype))
    B = np.ascontiguousarray(rng.rand(n, n).astype(dtype))
    C = np.zeros((n, n), dtype=dtype)
    return A, B, C


class TestL1Kernel:
    @pytest.mark.parametrize("NB,RM,RN,V", [
        (8, 1, 1, 4), (8, 2, 1, 4), (8, 2, 2, 4), (16, 4, 2, 2),
        (16, 4, 1, 8), (8, 1, 2, 2),
    ])
    def test_single_block_alpha0(self, NB, RM, RN, V):
        k = genkernel(NB, RM, RN, V, 0.0)
        A, B, C = _abc(NB, np.float64)
        k(A, B, C, NB, NB, NB)
        assert np.allclose(C, A @ B)

    def test_alpha1_accumulates(self):
        NB = 8
        k0 = genkernel(NB, 2, 1, 4, 0.0)
        k1 = genkernel(NB, 2, 1, 4, 1.0)
        A, B, C = _abc(NB, np.float64)
        k0(A, B, C, NB, NB, NB)
        k1(A, B, C, NB, NB, NB)
        assert np.allclose(C, 2 * (A @ B))

    def test_alpha0_ignores_garbage(self):
        """The alpha=0 kernel must not read C (0*NaN would poison it)."""
        NB = 8
        k0 = genkernel(NB, 2, 2, 4, 0.0)
        A, B, _ = _abc(NB, np.float64)
        C = np.full((NB, NB), np.nan)
        k0(A, B, C, NB, NB, NB)
        assert np.allclose(C, A @ B)

    def test_alpha_scales(self):
        NB = 8
        k = genkernel(NB, 1, 1, 4, 0.5)
        A, B, C = _abc(NB, np.float64)
        C[:] = 2.0
        k(A, B, C, NB, NB, NB)
        assert np.allclose(C, 1.0 + A @ B)

    def test_strided_block_within_larger_matrix(self):
        """The kernel works on an NB-block inside a larger row-major
        matrix via the ld* strides."""
        NB, N = 8, 16
        k = genkernel(NB, 2, 1, 4, 0.0)
        rng = np.random.RandomState(3)
        A = rng.rand(N, N)
        B = rng.rand(N, N)
        C = np.zeros((N, N))
        # multiply the top-left NB-block of A with the top-left of B
        k(A, B, C, N, N, N)
        assert np.allclose(C[:NB, :NB], A[:NB, :NB] @ B[:NB, :NB])
        assert np.all(C[NB:, :] == 0) and np.all(C[:, NB:] == 0)

    def test_float32_kernel(self):
        NB = 8
        k = genkernel(NB, 2, 2, 4, 0.0, elem=float_)
        A, B, C = _abc(NB, np.float32)
        k(A, B, C, NB, NB, NB)
        assert np.allclose(C, A @ B, atol=1e-4)

    def test_invalid_blocking_rejected(self):
        with pytest.raises(AssertionError):
            genkernel(8, 3, 1, 4, 0.0)  # 8 % 3 != 0

    def test_prefetch_off_same_result(self):
        NB = 8
        A, B, C1 = _abc(NB, np.float64)
        C2 = C1.copy()
        genkernel(NB, 2, 1, 4, 0.0, use_prefetch=True)(A, B, C1, NB, NB, NB)
        genkernel(NB, 2, 1, 4, 0.0, use_prefetch=False)(A, B, C2, NB, NB, NB)
        assert np.array_equal(C1, C2)


class TestFullGemm:
    @pytest.mark.parametrize("N", [32, 64, 96])
    def test_multi_block(self, N):
        gemm = make_gemm(NB=32, RM=4, RN=2, V=4)
        A, B, C = _abc(N, np.float64, seed=N)
        gemm(C, A, B, N)
        assert np.allclose(C, A @ B)

    @pytest.mark.parametrize("N", [30, 69, 100])
    def test_non_divisible_sizes(self, N):
        # regression: the unpacked GEMM used to march full NB-blocks past
        # the matrix edge for N % NB != 0 (out-of-bounds reads/writes and
        # silently wrong results); it now runs a blocked interior plus
        # naive k-tail/edge loops like the packed driver
        gemm = make_gemm(NB=32, RM=4, RN=2, V=4)
        A, B, C = _abc(N, np.float64, seed=N)
        gemm(C, A, B, N)
        assert np.allclose(C, A @ B)

    @pytest.mark.parametrize("N", [30, 69])
    def test_blocked_baseline_non_divisible(self, N):
        A, B, C = _abc(N, np.float64, seed=N)
        blocked_matmul(16)(C, A, B, N)
        assert np.allclose(C, A @ B)

    def test_sgemm(self):
        gemm = make_gemm(NB=32, RM=4, RN=2, V=8, elem=float_)
        A, B, C = _abc(64, np.float32)
        gemm(C, A, B, 64)
        assert np.allclose(C, A @ B, atol=1e-3)

    def test_overwrites_c(self):
        gemm = make_gemm(NB=32, RM=2, RN=2, V=4)
        A, B, C = _abc(32, np.float64)
        C[:] = 123.0  # stale contents must be overwritten, not accumulated
        gemm(C, A, B, 32)
        assert np.allclose(C, A @ B)

    def test_baselines(self):
        A, B, C = _abc(32, np.float64)
        naive_matmul()(C, A, B, 32)
        assert np.allclose(C, A @ B)
        C2 = np.zeros_like(C)
        blocked_matmul(16)(C2, A, B, 32)
        assert np.allclose(C2, A @ B)


class TestTuner:
    def test_small_search(self):
        from repro.autotune.tuner import candidates, tune
        cands = candidates(double, NBs=(32,), RMs=(2, 4), RNs=(1,), Vs=(4,))
        result = tune(test_size=128, candidate_list=cands, repeats=1)
        assert result.gflops > 0
        assert result.best in [c for c, _ in result.trials]
        # the returned gemm actually works
        A, B, C = _abc(128, np.float64)
        result.gemm(C, A, B, 128)
        assert np.allclose(C, A @ B)

    def test_constraints_respected(self):
        from repro.autotune.tuner import candidates
        for c in candidates(double):
            assert c.NB % c.RM == 0
            assert c.NB % (c.RN * c.V) == 0
            assert c.RM * c.RN + c.RM + c.RN <= 16

    def test_non_divisible_test_size_times_every_candidate(self):
        # regression: the tuner used to silently drop every candidate
        # whose NB did not divide the test size (for 100 that was all of
        # them, raising "no feasible candidate"); the GEMM makers handle
        # any N via edge loops, so all candidates must be timed
        from repro.autotune.tuner import Candidate, tune
        cands = [Candidate(32, 2, 1, 4), Candidate(48, 2, 1, 4)]
        result = tune(test_size=100,  # not a multiple of 32 or 48
                      candidate_list=cands, repeats=1)
        assert len(result.trials) == len(cands)
        A, B, C = _abc(100, np.float64)
        result.gemm(C, A, B, 100)
        assert np.allclose(C, A @ B)

    def test_empty_candidate_list_raises(self):
        from repro.autotune.tuner import tune
        with pytest.raises(ValueError):
            tune(test_size=64, candidate_list=[], repeats=1)


class TestPackedGemm:
    def test_matches_unpacked(self):
        from repro.autotune.matmul import make_gemm_packed
        N = 128
        rng = np.random.RandomState(5)
        A = np.ascontiguousarray(rng.rand(N, N))
        B = np.ascontiguousarray(rng.rand(N, N))
        C1 = np.zeros((N, N)); C2 = np.zeros((N, N))
        make_gemm(NB=32, RM=4, RN=2, V=4)(C1, A, B, N)
        make_gemm_packed(NB=32, RM=4, RN=2, V=4)(C2, A, B, N)
        assert np.allclose(C1, A @ B) and np.allclose(C2, A @ B)

    @pytest.mark.parametrize("N", [64, 100, 130, 257])
    def test_edge_sizes(self, N):
        """The packed driver handles sizes that are not multiples of NB
        via naive edge cleanup."""
        from repro.autotune.matmul import make_gemm_packed
        gemm = make_gemm_packed(NB=64, RM=4, RN=2, V=4)
        rng = np.random.RandomState(N)
        A = np.ascontiguousarray(rng.rand(N, N))
        B = np.ascontiguousarray(rng.rand(N, N))
        C = np.zeros((N, N))
        gemm(C, A, B, N)
        assert np.allclose(C, A @ B)

    def test_sgemm_packed(self):
        from repro.autotune.matmul import make_gemm_packed
        N = 96
        gemm = make_gemm_packed(NB=32, RM=4, RN=2, V=8, elem=float_)
        rng = np.random.RandomState(1)
        A = rng.rand(N, N).astype(np.float32)
        B = rng.rand(N, N).astype(np.float32)
        C = np.zeros((N, N), dtype=np.float32)
        gemm(C, A, B, N)
        assert np.allclose(C, A @ B, atol=1e-3)


class TestScheduleMigration:
    """The tuner's candidate vocabulary as first-class schedules:
    ``Candidate.schedule()`` → ``make_gemm_from_schedule`` must produce
    byte-identical C to the legacy (NB, RM, RN, V) makers."""

    def test_packed_byte_identical(self):
        from repro.autotune.matmul import (make_gemm_from_schedule,
                                           make_gemm_packed)
        from repro.autotune.tuner import Candidate
        cand = Candidate(32, 4, 2, 4)
        legacy = make_gemm_packed(32, 4, 2, 4)
        migrated = make_gemm_from_schedule(cand.schedule(packed=True))
        assert migrated.get_c_source() == legacy.get_c_source()

    def test_unpacked_byte_identical(self):
        from repro.autotune.matmul import make_gemm, make_gemm_from_schedule
        from repro.autotune.tuner import Candidate
        cand = Candidate(16, 2, 1, 4)
        legacy = make_gemm(16, 2, 1, 4)
        migrated = make_gemm_from_schedule(cand.schedule(packed=False))
        assert migrated.get_c_source() == legacy.get_c_source()

    def test_candidate_schedule_shape(self):
        from repro.autotune.tuner import Candidate
        from repro.schedule import Pack, Tile, Unroll, Vectorize
        s = Candidate(48, 4, 2, 4).schedule()
        assert s.of_kind(Tile) == [Tile(("i", "j"), (48, 48))]
        assert s.of_kind(Vectorize) == [Vectorize("j", 4)]
        assert set(s.of_kind(Unroll)) == {Unroll("i", 4), Unroll("jj", 2)}
        assert {p.operand for p in s.packs} == {"a", "b"}
        # RM=RN=1 candidates carry no Unrolls at all
        assert Candidate(32, 1, 1, 4).schedule(packed=False).of_kind(
            Unroll) == []

    def test_schedule_correctness_non_divisible(self):
        from repro.autotune.matmul import make_gemm_from_schedule
        from repro.autotune.tuner import Candidate
        gemm = make_gemm_from_schedule(Candidate(32, 2, 2, 4).schedule())
        A, B, C = _abc(69, np.float64, seed=2)
        gemm(C, A, B, 69)
        assert np.allclose(C, A @ B)

    def test_invalid_gemm_schedules_rejected(self):
        from repro.autotune.matmul import make_gemm_from_schedule
        from repro.schedule import (Block, Pack, Schedule, ScheduleError,
                                    Tile, Unroll, Vectorize)
        base = [Tile(("i", "j"), (32, 32)), Vectorize("j", 4)]
        with pytest.raises(ScheduleError, match="Tile"):
            make_gemm_from_schedule(Schedule([Vectorize("j", 4)]))
        with pytest.raises(ScheduleError, match="square"):
            make_gemm_from_schedule(
                Schedule([Tile(("i", "j"), (32, 16)), Vectorize("j", 4)]))
        with pytest.raises(ScheduleError, match="Vectorize"):
            make_gemm_from_schedule(Schedule([Tile(("i", "j"), (32, 32))]))
        with pytest.raises(ScheduleError, match="'jj'"):
            make_gemm_from_schedule(Schedule(base + [Unroll("k", 2)]))
        with pytest.raises(ScheduleError, match="divide"):
            make_gemm_from_schedule(
                Schedule([Tile(("i", "j"), (32, 32)), Vectorize("j", 4),
                          Unroll("i", 5)]))
        with pytest.raises(ScheduleError, match="both"):
            make_gemm_from_schedule(Schedule(base + [Pack("a", "panel")]))
        with pytest.raises(ScheduleError, match="no GEMM staging"):
            make_gemm_from_schedule(Schedule(base + [Block("k", 8)]))

    def test_parallel_schedule_dispatches(self):
        from repro.autotune.matmul import (make_gemm_from_schedule,
                                           make_gemm_packed)
        from repro.autotune.tuner import Candidate
        from repro.schedule import Parallel, Schedule
        cand = Candidate(32, 2, 2, 4)
        s = Schedule(list(cand.schedule()) + [Parallel("i_o")])
        par = make_gemm_from_schedule(s)
        N = 70
        A, B, C = _abc(N, np.float64, seed=3)
        par(C, A, B, N)
        C2 = np.zeros_like(C)
        make_gemm_packed(32, 2, 2, 4)(C2, A, B, N)
        assert np.array_equal(C, C2)  # bit-identical to serial packed
