"""Respecialization unit tests: value profiling, constant selection
(safety rules), variant construction, and the entry guard."""

from repro import terra
from repro.exec import respec
from repro.trace import profile

SCALE = """
terra scale(n : int32, k : int32) : int32
  return n * k
end
"""

MUTATES = """
terra bump(x : int32, y : int32) : int32
  x = x + 1
  return x * y
end
"""

MIXED = """
terra mixed(n : int32, a : double, flag : bool) : double
  if flag then return a * [double](n) end
  return a
end
"""


def _profiled(fn, calls):
    profile.clear_args(fn)
    for args in calls:
        profile.note_args(fn, args)
    return profile.arg_stats(fn)


def test_guardable_types():
    fn = terra(MIXED)
    n_ty, a_ty, flag_ty = fn.param_types
    assert respec.guardable_type(n_ty)         # int32
    assert respec.guardable_type(flag_ty)      # bool
    assert not respec.guardable_type(a_ty)     # double: -0.0/NaN hazards


def test_arg_stats_stability():
    fn = terra(SCALE)
    stats = _profiled(fn, [(8, 3), (8, 4), (8, 5)])
    assert stats[0] == {"observations": 3, "stable": True, "value": 8}
    assert stats[1]["stable"] is False
    assert stats[1]["value"] is None


def test_stable_consts_picks_only_safe_params():
    fn = terra(MIXED)
    # every argument repeats: n and flag qualify, the double never does
    stats = _profiled(fn, [(6, 2.5, True)] * 3)
    consts = respec.stable_consts(fn, stats)
    assert consts == {0: 6, 2: True}


def test_stable_consts_rejects_mutated_params():
    fn = terra(MUTATES)
    stats = _profiled(fn, [(5, 7), (5, 7)])
    consts = respec.stable_consts(fn, stats)
    assert 0 not in consts          # x is assigned in the body
    assert consts == {1: 7}


def test_min_observations_threshold():
    fn = terra(SCALE)
    stats = _profiled(fn, [(8, 3)])
    assert respec.stable_consts(fn, stats, min_observations=2) == {}
    assert 0 in respec.stable_consts(fn, stats, min_observations=1)


def test_variant_is_bit_identical_on_guard_values(backend):
    fn = terra(SCALE)
    variant = respec.specialize_variant(fn, {0: 6})
    assert variant is not None
    assert variant.name.startswith("scale_spec")
    # same arity: generic and specialized entries are interchangeable
    assert len(variant.param_types) == len(fn.param_types)
    for k in (-3, 0, 41):
        assert variant.compile(backend)(6, k) == fn.compile(backend)(6, k)


def test_guard_compares_converted_machine_values():
    fn = terra(SCALE)
    variant = respec.specialize_variant(fn, {0: 6})
    rs = respec.Respecialized(fn, variant, {0: 6}, handle=lambda *a: None)
    assert rs.ready()
    assert rs.matches((6, 99))
    assert not rs.matches((7, 99))
    assert not rs.matches((6,))                 # arity mismatch
    # int32 wraps: 2**32 + 6 converts to the same machine value as 6,
    # exactly like the generic entry would receive it
    assert rs.matches((2 ** 32 + 6, 99))
    assert not rs.matches(("6", 99))            # conversion error = miss


def test_varying_args_produce_no_variant():
    fn = terra(SCALE)
    stats = _profiled(fn, [(1, 1), (2, 2), (3, 3)])
    variant, consts = respec.respecialize(fn, stats)
    assert variant is None and consts == {}


EXTREME = """
terra low(x : int64, y : int64) : int64
  if x < y then return x end
  return y
end
"""

EXTREME32 = """
terra low32(x : int32, y : int32) : int32
  if x < y then return x end
  return y
end
"""

BOOLSEL = """
terra sel(flag : bool, a : int32, b : int32) : int32
  if flag then return a end
  return b
end
"""


def test_splice_int64_min_compiles_and_runs(backend):
    # INT64_MIN as a bare C literal overflows long long (the grammar is
    # unary minus applied to 9223372036854775808LL); the emitter must
    # spell it (min+1) - 1.  Splicing it is the easiest way to force the
    # literal into generated code.
    lo = -(2 ** 63)
    fn = terra(EXTREME)
    variant = respec.specialize_variant(fn, {0: lo})
    assert variant is not None
    assert variant.compile(backend)(lo, 5) == lo
    assert variant.compile(backend)(lo, lo) == lo


def test_splice_int32_min_compiles_and_runs(backend):
    lo = -(2 ** 31)
    fn = terra(EXTREME32)
    variant = respec.specialize_variant(fn, {0: lo})
    assert variant is not None
    assert variant.compile(backend)(lo, 7) == lo


def test_splice_bool_param_as_zero_one(backend):
    # a spliced bool must reach C as 0/1, never Python's repr
    fn = terra(BOOLSEL)
    stats = _profiled(fn, [(True, 10, 20), (True, 11, 21)])
    consts = respec.stable_consts(fn, stats)
    assert consts[0] is True
    for flag_const in (True, False):
        variant = respec.specialize_variant(fn, {0: flag_const})
        assert variant is not None
        got = variant.compile(backend)(flag_const, 10, 20)
        assert got == (10 if flag_const else 20)


def test_emitted_c_spells_extreme_constants():
    from repro import get_backend
    c = get_backend("c")
    fn = terra(EXTREME)
    variant = respec.specialize_variant(fn, {0: -(2 ** 63)})
    src = c.emit_source(variant)
    assert "-9223372036854775808" not in src
    assert "-9223372036854775807LL - 1" in src
    flagged = respec.specialize_variant(terra(BOOLSEL), {0: True})
    src = c.emit_source(flagged)
    assert "True" not in src
