"""Respecialization unit tests: value profiling, constant selection
(safety rules), variant construction, and the entry guard."""

from repro import terra
from repro.exec import respec
from repro.trace import profile

SCALE = """
terra scale(n : int32, k : int32) : int32
  return n * k
end
"""

MUTATES = """
terra bump(x : int32, y : int32) : int32
  x = x + 1
  return x * y
end
"""

MIXED = """
terra mixed(n : int32, a : double, flag : bool) : double
  if flag then return a * [double](n) end
  return a
end
"""


def _profiled(fn, calls):
    profile.clear_args(fn)
    for args in calls:
        profile.note_args(fn, args)
    return profile.arg_stats(fn)


def test_guardable_types():
    fn = terra(MIXED)
    n_ty, a_ty, flag_ty = fn.param_types
    assert respec.guardable_type(n_ty)         # int32
    assert respec.guardable_type(flag_ty)      # bool
    assert not respec.guardable_type(a_ty)     # double: -0.0/NaN hazards


def test_arg_stats_stability():
    fn = terra(SCALE)
    stats = _profiled(fn, [(8, 3), (8, 4), (8, 5)])
    assert stats[0] == {"observations": 3, "stable": True, "value": 8}
    assert stats[1]["stable"] is False
    assert stats[1]["value"] is None


def test_stable_consts_picks_only_safe_params():
    fn = terra(MIXED)
    # every argument repeats: n and flag qualify, the double never does
    stats = _profiled(fn, [(6, 2.5, True)] * 3)
    consts = respec.stable_consts(fn, stats)
    assert consts == {0: 6, 2: True}


def test_stable_consts_rejects_mutated_params():
    fn = terra(MUTATES)
    stats = _profiled(fn, [(5, 7), (5, 7)])
    consts = respec.stable_consts(fn, stats)
    assert 0 not in consts          # x is assigned in the body
    assert consts == {1: 7}


def test_min_observations_threshold():
    fn = terra(SCALE)
    stats = _profiled(fn, [(8, 3)])
    assert respec.stable_consts(fn, stats, min_observations=2) == {}
    assert 0 in respec.stable_consts(fn, stats, min_observations=1)


def test_variant_is_bit_identical_on_guard_values(backend):
    fn = terra(SCALE)
    variant = respec.specialize_variant(fn, {0: 6})
    assert variant is not None
    assert variant.name.startswith("scale_spec")
    # same arity: generic and specialized entries are interchangeable
    assert len(variant.param_types) == len(fn.param_types)
    for k in (-3, 0, 41):
        assert variant.compile(backend)(6, k) == fn.compile(backend)(6, k)


def test_guard_compares_converted_machine_values():
    fn = terra(SCALE)
    variant = respec.specialize_variant(fn, {0: 6})
    rs = respec.Respecialized(fn, variant, {0: 6}, handle=lambda *a: None)
    assert rs.ready()
    assert rs.matches((6, 99))
    assert not rs.matches((7, 99))
    assert not rs.matches((6,))                 # arity mismatch
    # int32 wraps: 2**32 + 6 converts to the same machine value as 6,
    # exactly like the generic entry would receive it
    assert rs.matches((2 ** 32 + 6, 99))
    assert not rs.matches(("6", 99))            # conversion error = miss


def test_varying_args_produce_no_variant():
    fn = terra(SCALE)
    stats = _profiled(fn, [(1, 1), (2, 2), (3, 3)])
    variant, consts = respec.respecialize(fn, stats)
    assert variant is None and consts == {}
