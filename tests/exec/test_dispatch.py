"""Dispatcher + policy-registry unit tests: the state that used to live
on TerraFunction (compiled handles, pending tickets, backend choice) now
lives on one per-function Dispatcher, consulted through a process-wide
execution policy."""

import pytest

from repro import terra
from repro.exec import (AheadOfTimePolicy, TieredPolicy, current_policy,
                        make_policy, policy_override, set_policy)

ADD = """
terra add(a : int32, b : int32) : int32
  return a + b
end
"""


def _fresh():
    return terra(ADD)


def test_every_function_owns_a_dispatcher():
    fn = _fresh()
    assert fn.dispatcher.fn is fn
    assert fn.dispatcher.handles == {}
    assert fn.dispatcher.pending == {}


def test_compiled_handle_caches_per_backend():
    fn = _fresh()
    h1 = fn.dispatcher.compiled_handle("interp")
    h2 = fn.dispatcher.compiled_handle("interp")
    assert h1 is h2
    assert set(fn.dispatcher.handles) == {"interp"}
    assert h1(2, 3) == 5


def test_install_first_wins():
    fn = _fresh()
    handle = fn.dispatcher.compiled_handle("interp")
    sentinel = object()
    assert fn.dispatcher.install("interp", sentinel) is handle
    assert fn.dispatcher.compiled_handle("interp") is handle


def test_compile_async_joins_pending(cbackend):
    fn = _fresh()
    t1 = fn.dispatcher.compile_async(cbackend)
    t2 = fn.dispatcher.compile_async(cbackend)
    assert t1 is t2                      # one in-flight build, not two
    handle = fn.dispatcher.compiled_handle(cbackend)
    assert handle is t1.result()
    assert "c" not in fn.dispatcher.pending   # resolved tickets are popped
    assert handle(20, 22) == 42


def test_function_facade_delegates():
    """fn.compile / fn() / the _compiled & _pending compat views all hit
    the same dispatcher state."""
    fn = _fresh()
    handle = fn.compile("interp")
    assert fn._compiled is fn.dispatcher.handles
    assert fn._pending is fn.dispatcher.pending
    assert fn._compiled["interp"] is handle


def test_tier_info_defaults_without_tier_state():
    fn = _fresh()
    assert fn.dispatcher.tier_info() == {
        "tier": 0, "calls": 0, "respecialized": False, "deopts": 0}


# -- the policy registry ------------------------------------------------------

def test_make_policy_names():
    assert isinstance(make_policy(""), AheadOfTimePolicy)
    assert make_policy("aot").backend_name is None
    assert make_policy("c").backend_name == "c"
    assert make_policy("interp").backend_name == "interp"
    assert isinstance(make_policy("tiered"), TieredPolicy)
    with pytest.raises(ValueError, match="unknown execution policy"):
        make_policy("jit")


def test_policy_override_restores():
    before = current_policy()
    with policy_override("interp") as p:
        assert current_policy() is p
        assert p.name == "interp"
    assert current_policy() is before


def test_set_policy_rejects_non_policies():
    before = current_policy()
    try:
        with pytest.raises(TypeError):
            set_policy(42)
    finally:
        set_policy(before)


def test_pinned_policies_agree_bitwise():
    fn = _fresh()
    with policy_override("interp"):
        via_interp = fn(7, -9)
    with policy_override("c"):
        via_c = fn(7, -9)
    assert via_interp == via_c == -2


def test_tiered_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_TERRA_TIER_THRESHOLD", "3")
    monkeypatch.setenv("REPRO_TERRA_TIER_SYNC", "1")
    monkeypatch.setenv("REPRO_TERRA_TIER_RESPEC", "0")
    p = TieredPolicy.from_env()
    assert (p.threshold, p.sync, p.respec) == (3, True, False)
    monkeypatch.setenv("REPRO_TERRA_TIER_THRESHOLD", "many")
    with pytest.raises(ValueError, match="TIER_THRESHOLD"):
        TieredPolicy.from_env()
