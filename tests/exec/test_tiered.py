"""Tiered-policy behavior tests, centered on the correctness contract:
whatever tier a call lands on — interp tier 0, generic C, respecialized
variant, or a guard-miss deoptimization — the observable result is
bit-identical to the reference interpreter, traps included."""

import pytest

from repro import terra
from repro.errors import TrapError
from repro.exec import TieredPolicy, policy_override
from repro.trace import profile
from repro.trace.metrics import registry

ADD = """
terra add(a : int32, b : int32) : int32
  return a + b
end
"""

DIV = """
terra div(a : int32, b : int32) : int32
  return a / b
end
"""

FMA = """
terra fma(x : double, m : int32, c : int32) : double
  return x * [double](m) + [double](c)
end
"""


def _fresh(src):
    fn = terra(src)
    profile.clear_args(fn)
    return fn


def test_tier_up_exactly_at_threshold():
    fn = _fresh(ADD)
    with policy_override(TieredPolicy(threshold=3, sync=True)):
        for i in range(1, 6):
            assert fn(i, 10) == i + 10
            info = fn.dispatcher.tier_info()
            assert info["tier"] == (0 if i < 3 else 1), f"call {i}"
    # the counter stops at the threshold-crossing call
    assert fn.dispatcher.tier_info()["calls"] == 3


def test_results_bit_identical_across_the_transition():
    fn = _fresh(FMA)
    ref = _fresh(FMA)
    argsets = [(0.1, 3, -7)] * 4 + [(-0.0, 3, -7), (1e300, 3, -7)]
    with policy_override("interp"):
        expected = [ref(*a) for a in argsets]
    with policy_override(TieredPolicy(threshold=2, sync=True)):
        got = [fn(*a) for a in argsets]
    assert [g.hex() for g in got] == [e.hex() for e in expected]
    assert fn.dispatcher.tier_info()["tier"] == 1


def test_respecialization_hit_then_guarded_deopt():
    fn = _fresh(ADD)
    with policy_override(TieredPolicy(threshold=2, sync=True)):
        assert fn(40, 2) == 42
        assert fn(40, 2) == 42          # crosses the threshold, respecs
        info = fn.dispatcher.tier_info()
        assert info["tier"] == 1 and info["respecialized"]
        st = fn.dispatcher.tier
        assert st.respec.consts == {0: 40, 1: 2}
        assert fn(40, 2) == 42          # guard hit -> specialized entry
        assert st.respec.hits >= 1
        before = registry().get("exec.deopt")
        assert fn(1, 2) == 3            # guard miss -> generic entry
        assert fn.dispatcher.tier_info()["deopts"] == 1
        assert registry().get("exec.deopt") == before + 1


def test_trap_parity_at_every_tier():
    """The trap cases: tier-0 interp, the respecialized variant's guard
    miss, and the generic C entry must all trap with the identical
    message the reference interpreter produces."""
    ref = _fresh(DIV)
    with policy_override("interp"):
        with pytest.raises(TrapError) as ref_exc:
            ref(100, 0)
    fn = _fresh(DIV)
    with policy_override(TieredPolicy(threshold=3, sync=True)):
        # a trap at tier 0 (interpreted)
        with pytest.raises(TrapError) as t0:
            fn(100, 0)
        assert str(t0.value) == str(ref_exc.value)
        assert fn(100, 5) == 20
        assert fn(100, 5) == 20         # tier-up; b profiled as varying/5
        assert fn.dispatcher.tier_info()["tier"] == 1
        # a trap at tier 1: guard miss (or no respec) -> generic C entry
        with pytest.raises(TrapError) as t1:
            fn(100, 0)
        assert str(t1.value) == str(ref_exc.value)
        assert fn(100, 5) == 20         # the pool survives the trap


def test_respec_disabled_by_knob():
    fn = _fresh(ADD)
    with policy_override(TieredPolicy(threshold=2, sync=True,
                                      respec=False)):
        for _ in range(3):
            assert fn(20, 22) == 42
        info = fn.dispatcher.tier_info()
        assert info["tier"] == 1 and not info["respecialized"]
        assert fn.dispatcher.tier.respec is None


def test_background_tier_up_eventually_lands():
    fn = _fresh(ADD)
    import time
    with policy_override(TieredPolicy(threshold=2, sync=False)):
        deadline = time.time() + 30.0
        while (fn.dispatcher.tier_info()["tier"] == 0
               and time.time() < deadline):
            assert fn(21, 21) == 42     # correct on every tier, every call
            time.sleep(0.01)
    assert fn.dispatcher.tier_info()["tier"] == 1
    from repro.buildd import get_service
    assert get_service().stats.tier_ups >= 1


def test_failed_tier_up_parks_interpreted(monkeypatch):
    fn = _fresh(ADD)
    policy = TieredPolicy(threshold=2, sync=True)
    monkeypatch.setattr(
        TieredPolicy, "_stage",
        lambda self, dispatcher: (_ for _ in ()).throw(RuntimeError("boom")))
    before = registry().get("exec.tier_up_failed")
    with policy_override(policy):
        for _ in range(5):
            assert fn(1, 2) == 3        # semantics unchanged: stays interp
    assert fn.dispatcher.tier_info()["tier"] == 0
    assert fn.dispatcher.tier.failed
    assert registry().get("exec.tier_up_failed") == before + 1


def test_on_tier_up_hook_fires_and_cannot_break_execution():
    fn = _fresh(ADD)
    seen = []

    def hook(dispatcher):
        seen.append(dispatcher)
        raise RuntimeError("observability bugs must not surface")

    fn.dispatcher.on_tier_up = hook
    with policy_override(TieredPolicy(threshold=2, sync=True)):
        assert fn(1, 1) == 2
        assert fn(2, 2) == 4            # tier-up: hook fires, raise ignored
    assert seen == [fn.dispatcher]
    assert fn.dispatcher.tier_info()["tier"] == 1


def test_externals_bypass_tiering():
    """Externals have no interpretable body: the tiered policy routes
    them straight to the ahead-of-time path, bit-for-bit — including the
    (historical) error for direct Python calls of a bare external."""
    from repro.cinterop import libc
    from repro.core import types as T
    ext = libc.external("floor", [T.float64], T.float64)
    with policy_override("aot"):
        with pytest.raises(Exception) as via_aot:
            ext(2.9)
    with policy_override(TieredPolicy(threshold=1, sync=True)):
        with pytest.raises(Exception) as via_tiered:
            ext(2.9)
    assert type(via_tiered.value) is type(via_aot.value)
    assert str(via_tiered.value) == str(via_aot.value)
    assert ext.dispatcher.tier is None      # no tier state ever created
