"""Chrome trace_event export, validation, and the tree renderer."""

import json

from repro import trace
from repro.trace.export import (format_tree, summarize, to_chrome,
                                validate_chrome)


def _record_sample():
    trace.enable()
    with trace.span("terra", cat="stage", filename="<t>"):
        with trace.span("parse", cat="stage"):
            pass
    trace.instant("buildd.cache_hit", cat="buildd", key="abc123")


def test_export_is_valid_and_json_serializable():
    _record_sample()
    doc = trace.export_chrome()
    assert validate_chrome(doc) == []
    text = json.dumps(doc)                      # round-trips
    assert validate_chrome(json.loads(text)) == []


def test_export_structure():
    _record_sample()
    doc = trace.export_chrome()
    events = doc["traceEvents"]
    metas = [e for e in events if e["ph"] == "M"]
    assert any(e["name"] == "process_name" for e in metas)
    assert any(e["name"] == "thread_name" for e in metas)
    spans = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in spans} == {"terra", "parse"}
    for e in spans:
        assert isinstance(e["ts"], float) and e["dur"] >= 0
        assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
    instants = [e for e in events if e["ph"] == "i"]
    assert instants[0]["name"] == "buildd.cache_hit"
    assert instants[0]["args"]["key"] == "abc123"


def test_non_json_args_are_stringified():
    trace.enable()
    with trace.span("s", cat="t", obj=object(), ok=1):
        pass
    doc = trace.export_chrome()
    args = [e for e in doc["traceEvents"] if e["ph"] == "X"][0]["args"]
    assert isinstance(args["obj"], str)
    assert args["ok"] == 1
    json.dumps(doc)


def test_write_chrome_is_a_file(tmp_path):
    _record_sample()
    path = str(tmp_path / "out.json")
    assert trace.export_chrome(path) == path
    doc = json.loads(open(path).read())
    assert validate_chrome(doc) == []


def test_validate_rejects_malformed_documents():
    assert validate_chrome([]) != []
    assert validate_chrome({}) == ["missing 'traceEvents' list"]
    bad_phase = {"traceEvents": [{"name": "x", "ph": "ZZ"}]}
    assert any("unknown phase" in e for e in validate_chrome(bad_phase))
    no_dur = {"traceEvents": [
        {"name": "x", "ph": "X", "ts": 0.0, "pid": 1, "tid": 0}]}
    assert any("dur" in e for e in validate_chrome(no_dur))
    no_name = {"traceEvents": [
        {"ph": "i", "ts": 0.0, "pid": 1, "tid": 0}]}
    assert any("name" in e for e in validate_chrome(no_name))


def test_tree_reconstructs_nesting_from_timestamps():
    _record_sample()
    text = trace.tree()
    lines = text.splitlines()
    terra_line = next(l for l in lines if "terra" in l)
    parse_line = next(l for l in lines if "parse" in l)
    # parse renders as a child (deeper indent) of terra
    assert len(parse_line) - len(parse_line.lstrip("│ ├└─")) or \
        parse_line.index("parse") > terra_line.index("terra")
    assert "• buildd.cache_hit" in text
    assert "{key=abc123}" in text


def test_tree_collapses_excess_children():
    trace.enable()
    for i in range(30):
        with trace.span(f"s{i}", cat="t"):
            pass
    text = format_tree(trace.export_chrome(), max_children=5)
    assert "more" in text
    assert "s29" not in text


def test_tree_of_empty_trace():
    assert "empty trace" in format_tree({"traceEvents": []})


def test_summarize_counts_spans_and_instants():
    _record_sample()
    summary = summarize(trace.export_chrome())
    assert summary["spans"] == 2
    assert summary["by_category"]["stage"]["count"] == 2
    # instants show up in the category counts with zero time
    assert summary["by_category"]["buildd"] == {"count": 1, "ms": 0.0}
    assert summary["by_name"]["parse"]["count"] == 1


def test_open_spans_export_with_zero_duration():
    trace.enable()
    trace.collector().begin("still-open", "t", None)
    doc = to_chrome(trace.events())
    ev = [e for e in doc["traceEvents"] if e["ph"] == "X"][0]
    assert ev["dur"] == 0
    assert validate_chrome(doc) == []
