"""python -m repro.trace — run / view / validate."""

import json
import sys

import pytest

from repro import trace
from repro.trace.__main__ import main

SCRIPT = '''
import repro
fn = repro.terra("""
terra clidemo(a : int) : int
  return a * 2
end
""")
assert fn(21) == 42
'''


@pytest.fixture()
def traced_json(tmp_path):
    script = tmp_path / "demo.py"
    script.write_text(SCRIPT)
    out = tmp_path / "trace.json"
    argv_before = list(sys.argv)
    try:
        assert main(["run", "-o", str(out), str(script)]) == 0
    finally:
        sys.argv = argv_before
    return str(out)


def test_run_writes_a_valid_trace(traced_json, capsys):
    doc = json.load(open(traced_json))
    assert trace.validate_chrome(doc) == []
    names = {e.get("name") for e in doc["traceEvents"]}
    assert any(n and n.startswith("specialize:clidemo") for n in names)
    assert any(n and n.startswith("call:clidemo") for n in names)


def test_validate_accepts_and_reports(traced_json, capsys):
    assert main(["validate", traced_json]) == 0
    out = capsys.readouterr().out
    assert out.startswith("OK:")
    assert "categories:" in out


def test_validate_rejects_garbage(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["validate", str(bad)]) == 1
    assert "INVALID" in capsys.readouterr().out

    malformed = tmp_path / "malformed.json"
    malformed.write_text(json.dumps(
        {"traceEvents": [{"name": "x", "ph": "??"}]}))
    assert main(["validate", str(malformed)]) == 1


def test_view_summary_and_tree(traced_json, capsys):
    assert main(["view", traced_json]) == 0
    summary = capsys.readouterr().out
    assert "category" in summary and "stage" in summary
    assert main(["view", traced_json, "--tree"]) == 0
    tree_text = capsys.readouterr().out
    assert "specialize:clidemo" in tree_text


def test_run_with_profile_prints_table(tmp_path, capsys):
    script = tmp_path / "demo.py"
    script.write_text(SCRIPT)
    out = tmp_path / "trace.json"
    argv_before = list(sys.argv)
    try:
        assert main(["run", "-o", str(out), "--profile",
                     str(script)]) == 0
    finally:
        sys.argv = argv_before
    text = capsys.readouterr().out
    assert "clidemo" in text
