"""End-to-end: the real compile lifecycle produces the documented spans."""

import uuid

import pytest

import repro
from repro import trace
from repro.buildd.cache import ArtifactCache
from repro.buildd.service import CompileService
from repro.trace.export import validate_chrome


def _unique_fn():
    """A function whose C unit has never been compiled in any process
    (unique constant -> unique cache key)."""
    tag = uuid.uuid4().int % 1_000_000
    return repro.terra(f'''
    terra traced{tag}(a : int) : int
      return a + {tag}
    end
    ''')


def _names():
    return [e.name for e in trace.events()]


def test_full_lifecycle_spans_present():
    trace.enable()
    fn = _unique_fn()
    assert fn(1) == 1 + int(fn.name[len("traced"):])
    names = _names()
    for prefix in ("terra", "parse", f"specialize:{fn.name}",
                   f"link:{fn.name}", f"component:{fn.name}",
                   f"typecheck:{fn.name}", f"pipeline:{fn.name}",
                   "pass:fold", "pass:simplify", "pass:dce",
                   f"emit:{fn.name}", "buildd.submit", "buildd.compile",
                   f"bind:{fn.name}", f"call:{fn.name}"):
        assert any(n.startswith(prefix) for n in names), f"missing {prefix}"
    doc = trace.export_chrome()
    assert validate_chrome(doc) == []


def test_lifecycle_span_nesting():
    """specialize nests under terra; typecheck and passes under link."""
    trace.enable()
    fn = _unique_fn()
    fn(0)
    evs = {e.name: e for e in trace.events()}
    by_index = {e.index: e for e in trace.events()}

    def parent_of(name):
        return by_index[evs[name].parent]

    assert parent_of(f"specialize:{fn.name}").name == "terra"
    assert parent_of(f"typecheck:{fn.name}").name == f"component:{fn.name}"
    assert parent_of(f"component:{fn.name}").name == f"link:{fn.name}"
    assert parent_of("pass:fold").name == f"pipeline:{fn.name}"


def test_compile_spans_cross_buildd_threads():
    """The gcc run happens on a buildd worker thread; its span lands in
    that thread's lane without corrupting the main thread's nesting."""
    trace.enable()
    fn = _unique_fn()
    ticket = fn.compile_async()
    handle = ticket.result()
    assert handle(1) > 0
    evs = {e.name: e for e in trace.events()}
    compile_span = evs["buildd.compile"]
    emit_span = evs[f"emit:{fn.name}"]
    assert compile_span.tid != emit_span.tid
    assert compile_span.thread_name.startswith("buildd")
    assert compile_span.parent is None  # a root in the worker's lane
    assert compile_span.args["key"]
    assert "artifact_bytes" in compile_span.args


def test_cache_hit_vs_compile(tmp_path):
    """First build compiles; the identical source again is a cache hit —
    and the trace shows exactly that."""
    service = CompileService(jobs=1,
                             cache=ArtifactCache(root=str(tmp_path / "c")))
    source = "int life(void) { return 42; }\n"
    trace.enable()
    service.compile(source)
    service.compile(source)
    names = _names()
    assert names.count("buildd.submit") == 1
    assert names.count("buildd.compile") == 1
    assert names.count("buildd.cache_hit") == 1
    assert service.stats.snapshot()["hit_rate"] == 0.5
    service._pool.shutdown(wait=True)


def test_pass_spans_record_changed_flag():
    trace.enable()
    tag = uuid.uuid4().int % 1_000_000
    fn = repro.terra(f'''
    terra foldme{tag}() : int
      return 2 + 3 + {tag}
    end
    ''')
    fn.get_optimized_ir()
    fold = next(e for e in trace.events() if e.name == "pass:fold")
    assert fold.args["function"] == fn.name
    assert fold.args["changed"] is True


def test_interp_backend_emits_spans_too():
    trace.enable()
    fn = _unique_fn()
    handle = fn.compile(repro.get_backend("interp"))
    handle(1)
    names = _names()
    emit = next(e for e in trace.events()
                if e.name == f"emit:{fn.name}")
    assert emit.args["backend"] == "interp"
    assert f"call:{fn.name}" in names


def test_pass_timings_flow_into_metrics_registry():
    from repro.trace.metrics import registry
    before = (registry().timing("pass.fold") or {}).get("runs", 0)
    fn = _unique_fn()
    fn.get_optimized_ir()
    after = registry().timing("pass.fold")["runs"]
    assert after > before


def test_disabled_tracing_records_nothing_across_lifecycle():
    fn = _unique_fn()
    assert fn(1) > 0
    assert trace.events() == []
