"""The metrics registry, and BuildStats as a view over it."""

import threading

from repro.buildd.stats import BuildStats
from repro.trace.metrics import MetricsRegistry, registry as global_registry


def test_counters_add_get_prefix():
    reg = MetricsRegistry()
    assert reg.add("a.x") == 1
    assert reg.add("a.x", 2) == 3
    reg.add("b.y", 5)
    assert reg.get("a.x") == 3
    assert reg.get("missing", -1) == -1
    assert reg.counters("a.") == {"a.x": 3}


def test_track_max_keeps_high_water_mark():
    reg = MetricsRegistry()
    reg.track_max("q", 3)
    reg.track_max("q", 1)
    assert reg.get("q") == 3


def test_timings_fold_min_max_runs():
    reg = MetricsRegistry()
    reg.record_time("t", 0.5)
    reg.record_time("t", 0.1)
    reg.record_time("t", 0.9)
    entry = reg.timing("t")
    assert entry == {"runs": 3, "seconds": 1.5, "min": 0.1, "max": 0.9}
    assert reg.timing("missing") is None
    assert list(reg.timings("t")) == ["t"]


def test_rings_are_bounded():
    reg = MetricsRegistry()
    for i in range(10):
        reg.append("r", i, maxlen=4)
    assert reg.ring("r") == [6, 7, 8, 9]
    assert reg.ring("missing") == []


def test_reset_by_prefix():
    reg = MetricsRegistry()
    reg.add("a.x")
    reg.add("b.x")
    reg.record_time("a.t", 1.0)
    reg.append("a.r", 1)
    reg.reset("a.")
    assert reg.get("a.x") == 0
    assert reg.get("b.x") == 1
    assert reg.timing("a.t") is None
    assert reg.ring("a.r") == []


def test_snapshot_is_a_deep_copy():
    reg = MetricsRegistry()
    reg.add("c", 2)
    reg.record_time("t", 1.0)
    reg.append("r", {"k": 1})
    snap = reg.snapshot()
    reg.add("c")
    snap["timings"]["t"]["runs"] = 99
    assert reg.get("c") == 3
    assert snap["counters"]["c"] == 2
    assert reg.timing("t")["runs"] == 1


def test_registry_is_thread_safe():
    reg = MetricsRegistry()

    def bump():
        for _ in range(1000):
            reg.add("n")
            reg.record_time("t", 0.001)

    threads = [threading.Thread(target=bump) for _ in range(4)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    assert reg.get("n") == 4000
    assert reg.timing("t")["runs"] == 4000


# -- BuildStats as a view -----------------------------------------------------

def test_buildstats_counters_are_per_instance():
    a, b = BuildStats(), BuildStats()
    a.record_submit()
    a.record_compile("k", 0.5, 100)
    assert (a.submitted, a.compiles) == (1, 1)
    assert (b.submitted, b.compiles) == (0, 0)


def test_buildstats_hit_and_queue_accounting():
    st = BuildStats()
    st.record_hit()
    st.record_submit()
    st.record_submit()
    assert st.queue_depth == 2
    assert st.max_queue_depth == 2
    st.record_compile("k1", 0.1, 10)
    st.record_failure("k2", 0.2)
    assert st.queue_depth == 0
    assert st.cache_hits == 1
    assert st.cache_misses == 2
    assert st.hit_rate() == 1 / 3
    assert st.compile_seconds == 0.30000000000000004 or \
        abs(st.compile_seconds - 0.3) < 1e-12
    assert st.recent == [{"key": "k1", "seconds": 0.1, "bytes": 10}]


def test_buildstats_cross_cutting_series_are_process_wide():
    """pass.* and fuzz.* live in the global registry: every view sees them."""
    reg = global_registry()
    before = int(reg.get("fuzz.programs"))
    pass_runs_before = (reg.timing("pass.__viewtest__") or {}).get("runs", 0)
    a, b = BuildStats(), BuildStats()
    a.record_fuzz(programs=7, divergences=1, traps=2, crashes=3)
    a.record_pass("__viewtest__", 0.25)
    assert b.fuzz_programs == before + 7
    assert b.pass_runs["__viewtest__"]["runs"] == pass_runs_before + 1
    snap = b.snapshot()
    assert snap["fuzz"]["programs"] == before + 7
    assert "__viewtest__" in snap["passes"]
    reg.reset("pass.__viewtest__")


def test_buildstats_snapshot_shape():
    st = BuildStats()
    snap = st.snapshot()
    for key in ("submitted", "cache_hits", "cache_misses", "inflight_dedup",
                "compiles", "failures", "compile_seconds", "queue_depth",
                "max_queue_depth", "hit_rate", "recent_builds", "fuzz",
                "passes"):
        assert key in snap
    assert snap["hit_rate"] is None  # no requests yet
