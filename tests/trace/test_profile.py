"""The per-call runtime profiler and fn.report()."""

import repro
from repro import trace
from repro.trace import profile


def _fresh_add():
    return repro.terra('''
    terra padd(a : int, b : int) : int
      return a + b
    end
    ''')


def test_profile_records_calls_without_tracing():
    fn = _fresh_add()
    fn(1, 2)                       # compile + one unprofiled call
    profile.enable()
    assert trace._runtime_active   # the hook is armed by profiling alone
    fn(3, 4)
    fn(5, 6)
    stats = profile.stats_for(fn)
    assert stats["calls"] == 2
    assert stats["seconds"] >= stats["min"] > 0
    assert stats["min"] <= stats["mean"] <= stats["max"]
    assert trace.events() == []    # profiling alone records no spans


def test_profile_disabled_records_nothing():
    fn = _fresh_add()
    fn(1, 2)
    assert profile.stats_for(fn) is None
    assert profile.all_stats() == {}


def test_fn_report_returns_stats_and_prints(capsys):
    fn = _fresh_add()
    profile.enable()
    assert fn(2, 2) == 4
    stats = fn.report()
    out = capsys.readouterr().out
    assert stats["calls"] == 1
    assert "padd" in out and "1 calls" in out


def test_fn_report_on_unprofiled_function(capsys):
    fn = _fresh_add()
    assert fn.report() is None
    assert "no profiled calls" in capsys.readouterr().out


def test_report_table_sorts_and_formats():
    fn = _fresh_add()
    profile.enable()
    fn(0, 0)
    text = profile.report()
    assert "padd" in text
    assert "calls" in text
    profile.clear()
    assert "no profiled calls" in profile.report()


def test_profile_works_on_interp_backend():
    fn = _fresh_add()
    profile.enable()
    handle = fn.compile(repro.get_backend("interp"))
    assert handle(7, 8) == 15
    assert profile.stats_for(fn)["calls"] == 1


def test_tracing_plus_profiling_records_call_spans():
    fn = _fresh_add()
    fn(0, 0)   # compile outside the traced window
    trace.enable()
    profile.enable()
    fn(1, 1)
    names = [e.name for e in trace.events()]
    assert "call:padd" in names
    assert profile.stats_for(fn)["calls"] == 1
