"""The span collector: nesting, thread lanes, instants, error capture."""

import threading

import pytest

from repro import trace
from repro.trace.collector import Collector, NULL_SPAN


def test_disabled_span_is_the_shared_null_span():
    assert not trace.enabled()
    sp = trace.span("anything", cat="x", k=1)
    assert sp is NULL_SPAN
    # the null span absorbs the whole protocol without recording
    with sp as s:
        s.set(more=2)
    assert trace.events() == []


def test_enable_disable_roundtrip():
    assert not trace.enabled()
    trace.enable()
    assert trace.enabled()
    trace.disable()
    assert not trace.enabled()


def test_spans_nest_on_one_thread():
    trace.enable()
    with trace.span("outer", cat="t") as outer:
        with trace.span("inner", cat="t") as inner:
            pass
    evs = trace.events()
    assert [e.name for e in evs] == ["outer", "inner"]
    assert inner.parent == outer.index
    assert outer.parent is None
    assert outer.dur_ns >= inner.dur_ns >= 0


def test_set_attaches_attributes_mid_span():
    trace.enable()
    with trace.span("s", cat="t", a=1) as sp:
        sp.set(b=2)
    assert trace.events()[0].args == {"a": 1, "b": 2}


def test_exception_records_error_attribute_and_closes():
    trace.enable()
    with pytest.raises(ValueError):
        with trace.span("boom", cat="t"):
            raise ValueError("no")
    ev = trace.events()[0]
    assert ev.args["error"] == "ValueError"
    assert ev.dur_ns is not None
    # the stack is clean: a following span is a root, not a child
    with trace.span("after", cat="t"):
        pass
    assert trace.events()[1].parent is None


def test_instants_record_but_do_not_nest():
    trace.enable()
    with trace.span("parent", cat="t") as parent:
        trace.instant("marker", cat="t", key="abc")
    evs = trace.events()
    assert evs[1].name == "marker"
    assert evs[1].dur_ns == -1
    assert evs[1].parent == parent.index


def test_instant_when_disabled_is_a_noop():
    trace.instant("nothing")
    assert trace.events() == []


def test_clear_resets_events_and_epoch():
    trace.enable()
    with trace.span("s", cat="t"):
        pass
    assert len(trace.events()) == 1
    trace.clear()
    assert trace.events() == []
    with trace.span("s2", cat="t"):
        pass
    assert trace.events()[0].start_ns >= 0


def test_threads_get_independent_stacks():
    """Spans on different threads never parent across threads."""
    trace.enable()
    ready = threading.Barrier(2)
    done = []

    def worker(tag):
        ready.wait()
        with trace.span(f"outer-{tag}", cat="t"):
            with trace.span(f"inner-{tag}", cat="t"):
                pass
        done.append(tag)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(2)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    assert sorted(done) == [0, 1]
    evs = {e.name: e for e in trace.events()}
    by_index = {e.index: e for e in trace.events()}
    for tag in (0, 1):
        inner, outer = evs[f"inner-{tag}"], evs[f"outer-{tag}"]
        assert inner.tid == outer.tid
        assert by_index[inner.parent] is outer


def test_escaped_child_does_not_corrupt_later_nesting():
    """Closing a parent pops any children left open on the stack."""
    trace.enable()
    outer = trace.collector().begin("outer", "t", None)
    trace.collector().begin("leaked", "t", None)   # never ended
    trace.collector().end(outer)
    with trace.span("next", cat="t"):
        pass
    assert trace.events()[2].name == "next"
    assert trace.events()[2].parent is None


def test_event_cap_drops_but_keeps_stack_sane():
    c = Collector(max_events=2)
    a = c.begin("a", "t", None)
    b = c.begin("b", "t", None)
    d = c.begin("dropped", "t", None)   # over the cap
    c.end(d)
    c.end(b)
    c.end(a)
    assert len(c) == 2
    assert c.dropped == 1
    assert [s.name for s in c.events()] == ["a", "b"]
    assert all(s.dur_ns is not None for s in c.events())
