"""Every trace test leaves the process exactly as it found it: tracing
and profiling off, collector and profile tables empty."""

import pytest

from repro import trace
from repro.trace import profile


@pytest.fixture(autouse=True)
def clean_trace_state():
    trace.disable()
    trace.clear()
    profile.disable()
    profile.clear()
    yield
    trace.disable()
    trace.clear()
    profile.disable()
    profile.clear()
