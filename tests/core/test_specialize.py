"""Specialization semantics — the paper's Section 4.1 design decisions.

These tests replay the design-decision examples of the paper (eager
specialization vs. meta-level mutation, hygiene, shared lexical
environment, separate evaluation) against the real implementation.
"""

import pytest

from repro import (Quote, expr, global_, int_, macro, quote_, symbol, terra,
                   float_)
from repro.core import sast
from repro.errors import SpecializeError


class TestSharedLexicalEnvironment:
    def test_free_variable_from_python_scope(self):
        x1 = 41
        f = terra("terra f() : int return x1 + 1 end")
        assert f() == 42

    def test_escape_sees_locals(self):
        values = {"a": 10}
        f = terra("terra f() : int return [values['a']] end")
        assert f() == 10

    def test_nested_namespace_sugar(self):
        # the paper: "lookups into nested Lua tables of the form
        # x.id1.id2...idn ... as if they were escaped"
        ns = {"inner": {"value": 7}}
        f = terra("terra f() : int return ns.inner.value end")
        assert f() == 7

    def test_terra_vars_visible_to_escapes(self):
        # the paper: Terra variables "behave as if they were escaped";
        # escapes see them as quoted references
        double_it = lambda q: q + q  # noqa: E731
        f = terra("""
        terra f(x : int) : int
          return [double_it(x)]
        end
        """)
        assert f(21) == 42


class TestEagerSpecialization:
    def test_mutation_after_definition_is_invisible(self):
        """Paper §4.1: 'let x1 = 0 in let y = ter tdecl(x2:int):int { x1 }
        in x1 := 1; y(0)' evaluates to 0."""
        x1 = 0
        y = terra("terra y(x2 : int) : int return x1 end")
        x1 = 1  # noqa: F841 - mutation after definition
        assert y(0) == 0

    def test_separate_evaluation(self):
        """Paper §4.1: Terra code executes independently of the meta
        store; rebinding x1 before the call does not change the result."""
        x1 = 1
        y = terra("terra y(x2 : int) : int return x1 end")
        x1 = 2  # noqa: F841
        assert y(0) == 1

    def test_quote_specializes_eagerly(self):
        n = 5
        q = quote_("[acc] = [acc] + [n]", env={"acc": (acc := symbol(int_, "acc")), "n": n})
        n = 99  # noqa: F841 - must not affect the existing quote
        f = terra("""
        terra f() : int
          var [acc] = 0
          [q]
          return [acc]
        end
        """)
        assert f() == 5


class TestHygiene:
    def test_no_accidental_capture(self):
        """The paper's hygiene example: a quote's variable must not
        capture a same-named variable at the splice site."""
        inner = quote_("var y : int = 1 in y")
        f = terra("""
        terra f(y : int) : int
          return y + [inner]
        end
        """)
        assert f(10) == 11

    def test_two_splices_dont_collide(self):
        q = quote_("var t : int = 1 in t")
        f = terra("terra f() : int return [q] + [q] end")
        assert f() == 2

    def test_symbol_violates_hygiene_deliberately(self):
        """§6.1: symbol() creates an identifier 'that will not be renamed'
        so separately-created quotes can share a variable."""
        s = symbol(int_, "shared")
        declare_q = quote_("var [s] = 10")
        use_q = quote_("[s] = [s] * 2")
        f = terra("""
        terra f() : int
          [declare_q]
          [use_q]
          return [s]
        end
        """)
        assert f() == 20

    def test_shadowing_in_nested_scopes(self):
        f = terra("""
        terra f() : int
          var x = 1
          do
            var x = 2
          end
          return x
        end
        """)
        assert f() == 1


class TestEscapes:
    def test_list_splice_in_statements(self):
        acc = symbol(int_, "acc")
        qs = [quote_("[acc] = [acc] + [i]") for i in range(4)]
        f = terra("""
        terra f() : int
          var [acc] = 0
          [qs]
          return [acc]
        end
        """)
        assert f() == 6

    def test_list_splice_in_args(self):
        g = terra("terra g(a : int, b : int, c : int) : int return a*100 + b*10 + c end")
        args = [expr("1"), expr("2"), expr("3")]
        f = terra("terra f() : int return g([args]) end")
        assert f() == 123

    def test_empty_statement_splice(self):
        nothing = []
        f = terra("""
        terra f() : int
          [nothing]
          return 1
        end
        """)
        assert f() == 1

    def test_escape_none_rejected(self):
        with pytest.raises(SpecializeError):
            terra("terra f() : int return [None] end")

    def test_plain_callable_rejected(self):
        fn = lambda x: x  # noqa: E731
        with pytest.raises(SpecializeError, match="macro|pycallback"):
            terra("terra f() : int return fn(1) end")

    def test_undefined_variable(self):
        with pytest.raises(SpecializeError, match="not defined"):
            terra("terra f() : int return no_such_thing_xyz end")

    def test_type_escape_with_ampersand(self):
        f = terra("""
        terra f(x : int) : int
          var p = [&int](&x)
          return @p
        end
        """)
        assert f(11) == 11

    def test_escape_error_wrapped(self):
        with pytest.raises(SpecializeError, match="ZeroDivision"):
            terra("terra f() : int return [1//0] end")


class TestMacros:
    def test_macro_receives_quotes(self):
        received = []

        @macro
        def twice(x):
            received.append(x)
            return x + x

        f = terra("terra f(v : int) : int return twice(v) end")
        assert f(4) == 8
        assert isinstance(received[0], Quote)

    def test_macro_runs_at_specialization(self):
        calls = []

        @macro
        def tracked(x):
            calls.append(1)
            return x

        terra("terra f(v : int) : int return tracked(v) end")
        assert calls == [1]  # ran eagerly, before any call

    def test_macro_error_wrapped(self):
        @macro
        def boom(x):
            raise RuntimeError("nope")

        with pytest.raises(SpecializeError, match="nope"):
            terra("terra f(v : int) : int return boom(v) end")


class TestSizeof:
    def test_sizeof_in_terra(self):
        f = terra("terra f() : int return [int](sizeof(double)) end")
        assert f() == 8

    def test_sizeof_struct(self):
        from repro import struct
        S = struct("struct S2 { a : int, b : double }")
        f = terra("terra f() : int return [int](sizeof(S))  end", env={"S": S})
        assert f() == 16


class TestTypeAnnotations:
    def test_type_from_meta_function(self):
        # the paper's Image(PixelType) pattern: types from meta calls
        def BoxType(elem):
            from repro import struct
            return struct(f"Box_{elem}").add_entry("v", elem)

        f = terra("""
        terra f(x : float) : float
          var b : [BoxType(float_)]
          b.v = x
          return b.v
        end
        """, env={"BoxType": BoxType, "float_": float_})
        assert f(2.5) == 2.5

    def test_bad_annotation(self):
        with pytest.raises(SpecializeError, match="not a Terra type"):
            terra("terra f(x : [42]) : int return 0 end")


class TestForLoopStaging:
    def test_escaped_loop_variable(self):
        # Fig 5 pattern: for [mm] = 0, NB, RM
        mm = symbol(None, "mm")
        body = quote_("[total] = [total] + [mm]",
                      env={"total": (total := symbol(int_, "total")), "mm": mm})
        f = terra("""
        terra f() : int
          var [total] = 0
          for [mm] = 0, 10, 2 do
            [body]
          end
          return [total]
        end
        """)
        assert f() == 0 + 2 + 4 + 6 + 8


class TestEscapeBlocks:
    """`escape ... emit(...) end` — multi-statement Python generators
    inline in Terra code (Terra's escape/emit)."""

    def test_emit_loop(self):
        acc = symbol(int_, "acc")
        f = terra('''
        terra f() : int
          var [acc] = 0
          escape
            for i in range(5):
                emit(quote_("[acc] = [acc] + [i]",
                            env=dict(acc=acc, i=i)))
          end
          return [acc]
        end
        ''')
        assert f() == 10

    def test_emit_sees_terra_scope(self):
        double_up = lambda q: q + q  # noqa: E731
        f = terra('''
        terra f(x : int) : int
          var out = 0
          escape
            emit(quote_("out = [double_up(x)]",
                        env=dict(double_up=double_up, x=x, out=out)))
          end
          return out
        end
        ''')
        assert f(21) == 42

    def test_emit_nothing_is_fine(self):
        f = terra('''
        terra f() : int
          escape
            pass
          end
          return 7
        end
        ''')
        assert f() == 7

    def test_conditional_generation(self):
        for flag, expected in ((True, 100), (False, 1)):
            f = terra('''
            terra f() : int
              var v = 1
              escape
                if flag:
                    emit(quote_("v = 100", env=dict(v=v)))
              end
              return v
            end
            ''', env={"flag": flag})
            assert f() == expected

    def test_python_error_wrapped(self):
        with pytest.raises(SpecializeError, match="boom"):
            terra('''
            terra f() : int
              escape
                raise RuntimeError("boom")
              end
              return 0
            end
            ''')

    def test_end_inside_python_string_ok(self):
        f = terra('''
        terra f() : int
          var v = 0
          escape
            label = "the end marker"
            emit(quote_("v = [len(label)]", env=dict(v=v, label=label)))
          end
          return v
        end
        ''')
        assert f() == len("the end marker")
