"""TerraFunction lifecycle tests: declare/define, compile caching,
cross-backend behaviour, globals and constants."""

import pytest

from repro import (Constant, GlobalVar, constant, declare, get_backend,
                   global_, terra)
from repro.core import types as T
from repro.errors import LinkError, SpecializeError, TypeCheckError


class TestLifecycle:
    def test_states(self):
        f = declare("st")
        assert not f.isdefined() and f.state == "undefined"
        terra("terra st() : int return 1 end", env={"st": f})
        assert f.isdefined()
        assert f.typed is None  # lazy: not typechecked yet
        f()
        assert f.typed is not None

    def test_gettype_triggers_typecheck(self):
        f = terra("terra g(x : int) return x * 2 end")
        assert f.typed is None
        ftype = f.gettype()
        assert ftype.returns == (T.int32,)
        assert f.typed is not None

    def test_peektype_no_typecheck(self):
        f = terra("terra g2(x : int) return x end")
        assert f.peektype() is None
        f2 = terra("terra g3(x : int) : int return x end")
        assert f2.peektype() is not None  # annotated: type known eagerly

    def test_compile_caches_handle(self):
        f = terra("terra h() : int return 1 end")
        assert f.compile("c") is f.compile("c")

    def test_call_dispatches_default_backend(self):
        f = terra("terra h2() : int return 5 end")
        assert f() == 5

    def test_both_backends_from_one_function(self):
        f = terra("terra h3(x : int) : int return x + 1 end")
        assert f.compile("c")(1) == f.compile("interp")(1) == 2

    def test_define_twice_rejected(self):
        f = terra("terra once() : int return 1 end")
        with pytest.raises(SpecializeError, match="already defined"):
            f.define(f.param_symbols, f.param_types, T.int32, f.body)

    def test_external_has_no_body(self):
        from repro import includec
        malloc = includec("stdlib.h")["malloc"]
        assert malloc.is_external and malloc.isdefined()
        assert malloc.body is None

    def test_repr(self):
        f = terra("terra shown(x : int) : int return x end")
        assert "shown" in repr(f) and "defined" in repr(f)


class TestGlobals:
    def test_types_enforced(self):
        with pytest.raises(TypeCheckError):
            global_("not a type")
        with pytest.raises(TypeCheckError):
            constant("not a type", 1)

    def test_global_struct(self):
        from repro import struct
        S = struct("struct GS { a : int, b : double }")
        g = global_(S, {"a": 3, "b": 1.5}, "gs")
        f = terra("terra f() : double return g.a + g.b end", env={"g": g})
        assert f() == 4.5

    def test_global_array(self):
        g = global_(T.array(T.int32, 4), [1, 2, 3, 4], "ga")
        f = terra("""
        terra f() : int
          var s = 0
          for i = 0, 4 do s = s + g[i] end
          return s
        end
        """, env={"g": g})
        assert f() == 10

    def test_read_global_aggregate_from_python(self):
        g = global_(T.array(T.int32, 2), [7, 8], "gr")
        backend = get_backend("c")
        value = g.get(backend)
        assert value.totuple() == (7, 8)

    def test_constant_is_immutable_value(self):
        c = constant(T.float64, 2.5)
        assert isinstance(c, Constant)
        f = terra("terra f() : double return [c] * 2.0 end")
        assert f() == 5.0


class TestLinking:
    def test_component_compiled_together(self):
        fns = terra("""
        terra a1(x : int) : int return x + 1 end
        terra b1(x : int) : int return a1(x) * 2 end
        terra c1(x : int) : int return b1(x) + a1(x) end
        """)
        # calling the root compiles the whole component; all get handles
        assert fns.c1(1) == 4 + 2
        assert "c" in fns.a1._compiled

    def test_deep_chain(self):
        prev = terra("terra base(x : int) : int return x end")
        env = {"prev": prev}
        for i in range(20):
            prev = terra("terra lnk(x : int) : int return prev(x) + 1 end",
                         env={"prev": prev})
        assert prev(0) == 20

    def test_link_error_names_the_function(self):
        ghost = declare("the_missing_one")
        f = terra("terra f() : int return ghost() end", env={"ghost": ghost})
        with pytest.raises((LinkError, TypeCheckError),
                           match="the_missing_one"):
            f()
