"""Specialized-tree utilities: copy_tree isolation and node basics."""

from repro import expr, int_, quote_, symbol, terra
from repro.core import sast


class TestCopyTree:
    def test_nodes_fresh_symbols_shared(self):
        s = symbol(int_, "s")
        tree = sast.SBinOp("+", sast.SVar(s), sast.SConst(1, None))
        clone = sast.copy_tree(tree)
        assert clone is not tree
        assert clone.lhs is not tree.lhs
        assert clone.lhs.symbol is s  # symbols keep identity

    def test_nested_lists_copied(self):
        call = sast.SApply(sast.SConst(0, None),
                           [sast.SConst(1, None), sast.SConst(2, None)])
        clone = sast.copy_tree(call)
        assert clone.args is not call.args
        assert clone.args[0] is not call.args[0]

    def test_blocks_and_branch_tuples(self):
        body = sast.SBlock([sast.SBreak()])
        stmt = sast.SIf([(sast.SConst(True, None), body)], None)
        clone = sast.copy_tree(stmt)
        assert clone.branches[0][1] is not body
        assert isinstance(clone.branches[0][1].statements[0], sast.SBreak)

    def test_ctor_fields_copied(self):
        ctor = sast.SCtor(None, [sast.SCtorField("x", sast.SConst(1, None))])
        clone = sast.copy_tree(ctor)
        assert clone.fields[0] is not ctor.fields[0]
        assert clone.fields[0].name == "x"

    def test_locations_preserved(self):
        from repro.errors import SourceLocation
        loc = SourceLocation("f.t", 3, 1)
        node = sast.SConst(5, None, loc)
        assert sast.copy_tree(node).location is loc


class TestQuoteTyping:
    def test_typed_loop_variable(self):
        """`for i : uint64 = ...` gives the loop variable the declared
        type, not the start expression's."""
        f = terra("""
        terra f(n : uint64) : uint64
          var total : uint64 = 0
          for i : uint64 = 0, n do
            total = total + i
          end
          return total
        end
        """)
        assert f(10) == 45
        text = f.get_source(typed=True)
        assert ": uint64 =" in text

    def test_typed_symbol_loop_var(self):
        from repro import uint64 as u64
        i = symbol(u64, "i")
        body = quote_("[acc] = [acc] + [i]",
                      env={"acc": (acc := symbol(u64, "acc")), "i": i})
        f = terra("""
        terra f(n : uint64) : uint64
          var [acc] = 0
          for [i] = 0, n do
            [body]
          end
          return [acc]
        end
        """)
        assert f(5) == 10
