"""Typechecker tests: conversions, operators, methods, metamethods,
lazy/monotonic checking — the Section 4.1 type-system behaviours."""

import pytest

from repro import (declare, expr, float_, functype, int_, pointer, quote_,
                   struct, terra, unit)
from repro.core import types as T
from repro.errors import LinkError, SpecializeError, TypeCheckError


def tc_error(source, match=None, env=None):
    fn = terra(source, env=env or {})
    with pytest.raises(TypeCheckError, match=match):
        fn.ensure_typechecked()
    return fn


class TestConversions:
    def test_implicit_numeric_widening(self):
        f = terra("terra f(x : int8) : int64 return x end")
        assert f(5) == 5

    def test_implicit_int_to_float(self):
        f = terra("terra f(x : int) : double return x end")
        assert f(3) == 3.0

    def test_implicit_float_narrowing(self):
        # C-style implicit double -> float (like Terra)
        f = terra("terra f(x : double) : float return x end")
        assert f(2.5) == 2.5

    def test_bool_not_implicitly_numeric(self):
        tc_error("terra f(b : bool) : int return b end")

    def test_explicit_bool_cast(self):
        f = terra("terra f(b : bool) : int return [int](b) end")
        assert f(True) == 1 and f(False) == 0

    def test_pointer_conversion_needs_cast(self):
        tc_error("terra f(p : &int) : &float return p end",
                 match="explicit cast")

    def test_explicit_pointer_cast(self):
        f = terra("terra f(p : &int) : int64 return [int64](p) end")
        assert f(0x1000) == 0x1000

    def test_nil_adopts_pointer_type(self):
        f = terra("terra f() : &float return nil end")
        assert f().isnull()

    def test_no_truthiness(self):
        tc_error("terra f(x : int) : int if x then return 1 end return 0 end",
                 match="bool")

    def test_condition_must_not_be_pointer(self):
        tc_error("terra f(p : &int) : int if p then return 1 end return 0 end")


class TestOperators:
    def test_pointer_arithmetic(self):
        f = terra("terra f(p : &int, i : int) : &int return p + i end")
        assert int(f(1000, 3)) == 1000 + 12

    def test_pointer_difference(self):
        f = terra("terra f(a : &double, b : &double) : int64 return a - b end")
        assert f(1600, 1568) == 4

    def test_pointer_diff_type_mismatch(self):
        tc_error("terra f(a : &int, b : &float) : int64 return a - b end")

    def test_comparison_produces_bool(self):
        f = terra("terra f(a : int, b : int) : bool return a < b end")
        assert f(1, 2) is True and f(2, 1) is False

    def test_and_or_on_ints_is_bitwise(self):
        # Terra: and/or are bitwise on integers
        f = terra("terra f(a : int, b : int) : int return a and b end")
        assert f(0b1100, 0b1010) == 0b1000
        g = terra("terra g(a : int, b : int) : int return a or b end")
        assert g(0b1100, 0b1010) == 0b1110

    def test_short_circuit_and(self):
        # the rhs must not be evaluated when the lhs is false
        f = terra("""
        terra deref(p : &int) : bool return @p > 0 end
        terra f(flag : bool, p : &int) : bool
          return flag and deref(p)
        end
        """)
        assert f.f(False, None) is False  # deref(NULL) would crash

    def test_xor_shift(self):
        f = terra("terra f(a : int, b : int) : int return (a ^ b) << 1 end")
        assert f(5, 3) == (5 ^ 3) << 1

    def test_not_on_bool_and_int(self):
        f = terra("terra f(b : bool) : bool return not b end")
        assert f(True) is False
        g = terra("terra g(x : int) : int return not x end")
        assert g(0) == -1

    def test_mixed_bool_int_and_rejected(self):
        tc_error("terra f(a : bool, b : int) : int return a and b end")

    def test_integer_division_truncates(self):
        f = terra("terra f(a : int, b : int) : int return a / b end")
        assert f(7, 2) == 3
        assert f(-7, 2) == -3  # C semantics: toward zero

    def test_modulo_sign(self):
        f = terra("terra f(a : int, b : int) : int return a % b end")
        assert f(-7, 3) == -1

    def test_float_modulo(self):
        f = terra("terra f(a : double, b : double) : double return a % b end")
        assert f(7.5, 2.0) == pytest.approx(1.5)


class TestLvalues:
    def test_assign_to_rvalue_rejected(self):
        tc_error("terra f(a : int) : int (a + 1) = 2 return a end") \
            if False else None
        with pytest.raises((TypeCheckError, Exception)):
            terra("terra f(a : int) : {} a + 1 = 2 end").ensure_typechecked()

    def test_address_of_rvalue_rejected(self):
        tc_error("terra f(a : int) : &int return &(a + 1) end",
                 match="rvalue")

    def test_swap_semantics(self):
        # multi-assignment evaluates all rhs first
        f = terra("""
        terra f(a : int, b : int) : int
          a, b = b, a
          return a * 10 + b
        end
        """)
        assert f(1, 2) == 21


class TestStructsAndMethods:
    def test_field_access_through_pointer(self):
        # auto-deref: img.N on &Image (used throughout the paper)
        S = struct("struct Sx { n : int }")
        f = terra("""
        terra f(s : &Sx) : int return s.n end
        terra g() : int
          var v = Sx { 42 }
          return f(&v)
        end
        """, env={"Sx": S})
        assert f.g() == 42

    def test_unknown_field(self):
        S = struct("struct Sy { n : int }")
        tc_error("terra f(s : Sy) : int return s.bogus end",
                 match="no field", env={"Sy": S})

    def test_method_on_rvalue_rejected(self):
        S = struct("struct Sz { n : int }")
        terra("terra Sz:get() : int return self.n end", env={"Sz": S})
        tc_error("terra f() : int return Sz { 1 }:get() end",
                 match="rvalue", env={"Sz": S})

    def test_methodmissing(self):
        S = struct("struct Sm { n : int }")
        S.metamethods["__methodmissing"] = \
            lambda name, obj, *args: obj.select("n") + len(name)
        f = terra("""
        terra f() : int
          var s = Sm { 10 }
          return s:four()
        end
        """, env={"Sm": S})
        assert f() == 14

    def test_entrymissing(self):
        S = struct("struct Se { n : int }")
        S.metamethods["__entrymissing"] = \
            lambda name, obj: obj.select("n") * 2
        f = terra("""
        terra f() : int
          var s = Se { 21 }
          return s.double
        end
        """, env={"Se": S})
        assert f() == 42

    def test_zero_fill_constructor(self):
        S = struct("struct Sf { a : int, b : double, p : &int }")
        f = terra("""
        terra f() : double
          var s = Sf { 1 }
          if s.p == nil then return s.b end
          return -1.0
        end
        """, env={"Sf": S})
        assert f() == 0.0

    def test_named_constructor_fields(self):
        S = struct("struct Sg { a : int, b : int }")
        f = terra("""
        terra f() : int
          var s = Sg { b = 7, a = 2 }
          return s.a * 10 + s.b
        end
        """, env={"Sg": S})
        assert f() == 27


class TestUserDefinedCast:
    def make_complex(self):
        """The paper's Complex example, built via reflection (§4.1)."""
        Complex = struct("Complex")
        Complex.entries.append(T.StructEntry("real", T.float32))
        Complex.entries.append(T.StructEntry("imag", T.float32))

        def __cast(fromtype, totype, e):
            if fromtype is T.float32:
                return expr("Complex { e, 0.f }",
                            env={"Complex": Complex, "e": e})
            raise TypeCheckError("invalid conversion")

        Complex.metamethods["__cast"] = __cast
        return Complex

    def test_implicit_promotion(self):
        Complex = self.make_complex()
        f = terra("""
        terra addc(a : Complex, b : Complex) : Complex
          return Complex { a.real + b.real, a.imag + b.imag }
        end
        terra f(x : float) : float
          -- the float argument is implicitly converted to Complex
          var c = addc(Complex { 1.f, 2.f }, x)
          return c.real * 100.f + c.imag
        end
        """, env={"Complex": Complex})
        assert f.f(2.0) == pytest.approx(300.0 + 2.0)

    def test_invalid_source_rejected(self):
        Complex = self.make_complex()
        tc_error("terra f(b : bool) : Complex return b end",
                 env={"Complex": Complex})


class TestReturnTypes:
    def test_inferred_return(self):
        f = terra("terra f(x : int) return x + 1 end")
        assert f.gettype().returns == (T.int32,)
        assert f(1) == 2

    def test_unit_inferred(self):
        f = terra("terra f(x : int) end")
        assert f.gettype().returns == ()

    def test_tuple_return(self):
        f = terra("terra f(x : int) : {int, int} return x, x + 1 end")
        assert f(5) == (5, 6)

    def test_tuple_unpack_in_terra(self):
        f = terra("""
        terra two(x : int) : {int, int} return x, x * 2 end
        terra f(x : int) : int
          var a, b = two(x)
          return a + b
        end
        """)
        assert f.f(10) == 30

    def test_missing_return_value(self):
        tc_error("terra f() : int return end", match="return")

    def test_return_in_void(self):
        f = terra("terra f(p : &int) : {} @p = 1 return end")
        import numpy as np
        buf = np.zeros(1, dtype=np.int32)
        f(buf)
        assert buf[0] == 1

    def test_recursion_needs_annotation(self):
        with pytest.raises(TypeCheckError, match="recursive"):
            terra("""
            terra f(n : int)
              if n == 0 then return 0 end
              return f(n - 1)
            end
            """).ensure_typechecked()


class TestLazyLinking:
    def test_undefined_callee_fails_at_call(self):
        g = declare("g_undefined")
        f = terra("terra f() : int return g_undefined() end",
                  env={"g_undefined": g})
        with pytest.raises((LinkError, TypeCheckError)):
            f()

    def test_monotonic_success_after_definition(self):
        """Paper §4.1: typechecking changes monotonically from type-error
        to success as referenced functions are defined."""
        g = declare("g_later")
        f = terra("terra f() : int return g_later() + 1 end",
                  env={"g_later": g})
        with pytest.raises((LinkError, TypeCheckError)):
            f()
        terra("terra g_later() : int return 41 end", env={"g_later": g})
        assert f() == 42

    def test_definition_immutable(self):
        """A defined function can never be re-defined (paper LTDEFN);
        re-using the name creates a *new* function (Lua rebinding)."""
        f = terra("terra f() : int return 1 end")
        with pytest.raises(SpecializeError, match="already defined"):
            f.define([], [], T.int32, f.body)
        g = terra("terra f() : int return 2 end", env={"f": f})
        assert g is not f
        assert f() == 1 and g() == 2


class TestDefer:
    def test_defer_runs_at_scope_exit(self):
        f = terra("""
        terra f(p : &int) : {}
          @p = 1
          defer incr(p)
          @p = @p * 10
        end
        terra incr(p : &int) : {}
          @p = @p + 5
        end
        """, env={"incr": (incr := declare("incr"))})
        # note: incr was declared then defined inside the same terra() call
        import numpy as np
        buf = np.zeros(1, dtype=np.int32)
        f.f(buf)
        assert buf[0] == 15

    def test_defer_runs_before_return(self):
        f = terra("""
        terra bump(p : &int) : {} @p = @p + 1 end
        terra f(p : &int) : int
          defer bump(p)
          return @p
        end
        """)
        import numpy as np
        buf = np.array([10], dtype=np.int32)
        assert f.f(buf) == 10  # returned value read before the defer
        assert buf[0] == 11


class TestVectors:
    def test_vector_arithmetic(self):
        import numpy as np
        f = terra("""
        terra f(p : &float, q : &float) : {}
          var a = @[&vector(float,4)](p)
          var b = @[&vector(float,4)](q)
          @[&vector(float,4)](p) = a * b + a
        end
        """)
        x = np.array([1, 2, 3, 4], dtype=np.float32)
        y = np.array([10, 10, 10, 10], dtype=np.float32)
        f(x, y)
        assert list(x) == [11, 22, 33, 44]

    def test_scalar_broadcast(self):
        import numpy as np
        f = terra("""
        terra f(p : &float, s : float) : {}
          @[&vector(float,4)](p) = @[&vector(float,4)](p) * s
        end
        """)
        x = np.array([1, 2, 3, 4], dtype=np.float32)
        f(x, 2.0)
        assert list(x) == [2, 4, 6, 8]

    def test_vector_length_mismatch(self):
        tc_error("""
        terra f(p : &float) : {}
          var a = @[&vector(float,4)](p)
          var b = @[&vector(float,8)](p)
          a = a + b
        end
        """, match="length mismatch")

    def test_vector_index(self):
        f = terra("""
        terra f(x : float) : float
          var v = [vector(float,4)](x)
          v[2] = v[2] + 1.f
          return v[0] + v[2]
        end
        """)
        assert f(2.0) == 5.0


class TestMoreNegativeCases:
    def test_shift_by_float_rejected(self):
        tc_error("terra f(a : int, b : double) : int return a << b end",
                 match="integers")

    def test_bitwise_on_floats_rejected(self):
        tc_error("terra f(a : double, b : double) : double return a ^ b end")

    def test_assignment_count_mismatch(self):
        tc_error("terra f(a : int, b : int) : {} a, b = 1 end",
                 match="targets")

    def test_var_count_mismatch(self):
        tc_error("terra f() : {} var a, b = 1 end", match="initializers")

    def test_unit_variable_rejected(self):
        ns = terra("""
        terra g() : {} end
        terra f() : {} var x = g() end
        """, env={})
        with pytest.raises(TypeCheckError, match="unit"):
            ns.f.ensure_typechecked()

    def test_untyped_uninitialized_var(self):
        tc_error("terra f() : {} var x end", match="annotation")

    def test_index_non_indexable(self):
        tc_error("terra f(x : int) : int return x[0] end", match="index")

    def test_deref_non_pointer(self):
        tc_error("terra f(x : int) : int return @x end",
                 match="dereference")

    def test_call_non_function(self):
        tc_error("terra f(x : int) : int return x(1) end",
                 match="non-function")

    def test_negate_pointer_rejected(self):
        tc_error("terra f(p : &int) : &int return -p end", match="negate")

    def test_break_outside_loop(self):
        tc_error("terra f() : {} break end", match="loop")

    def test_for_var_must_be_arithmetic(self):
        tc_error("""
        terra f(p : &int) : {}
          for i = p, p do end
        end
        """)

    def test_vector_index_oob_ok_at_typecheck(self):
        # index bounds are runtime concerns (interp traps, C is UB)
        f = terra("""
        terra f(i : int64) : float
          var v = [vector(float,4)](1.f)
          return v[i]
        end
        """)
        f.ensure_typechecked()

    def test_return_type_mismatch(self):
        tc_error("terra f(p : &int) : int return p end")

    def test_defer_non_call_rejected_at_parse(self):
        from repro.errors import TerraSyntaxError
        with pytest.raises(TerraSyntaxError, match="call"):
            terra("terra f() : {} defer 5 end")
