"""Parser tests: the Terra grammar, including every escape position the
paper's Figure 5 kernel generator uses."""

import pytest

from repro.core import ast
from repro.core.parser import (parse_expression, parse_quote, parse_toplevel,
                               parse_type)
from repro.errors import TerraSyntaxError


def expr(src):
    return parse_expression(src)


def fn(src):
    defs = parse_toplevel(src)
    assert len(defs) == 1 and isinstance(defs[0], ast.FunctionDef)
    return defs[0]


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = expr("1 + 2 * 3")
        assert isinstance(e, ast.BinOp) and e.op == "+"
        assert isinstance(e.rhs, ast.BinOp) and e.rhs.op == "*"

    def test_precedence_cmp_below_add(self):
        e = expr("a + b < c")
        assert e.op == "<"

    def test_and_or(self):
        e = expr("a and b or c")
        assert e.op == "or"
        assert e.lhs.op == "and"

    def test_left_associativity(self):
        e = expr("a - b - c")
        assert e.op == "-" and isinstance(e.lhs, ast.BinOp)
        assert e.lhs.op == "-"

    def test_unary(self):
        e = expr("-a * b")
        # unary binds tighter than *
        assert e.op == "*"
        assert isinstance(e.lhs, ast.UnOp) and e.lhs.op == "-"

    def test_address_of_and_deref(self):
        e = expr("@p")
        assert isinstance(e, ast.UnOp) and e.op == "@"
        e = expr("&x")
        assert isinstance(e, ast.UnOp) and e.op == "&"

    def test_not(self):
        e = expr("not a")
        assert isinstance(e, ast.UnOp) and e.op == "not"

    def test_select_chain(self):
        e = expr("std.malloc")
        assert isinstance(e, ast.Select) and e.field == "malloc"

    def test_method_call(self):
        e = expr("img:get(i, j)")
        assert isinstance(e, ast.MethodCall)
        assert e.name == "get" and len(e.args) == 2

    def test_index(self):
        e = expr("a[i + 1]")
        assert isinstance(e, ast.Index)

    def test_call(self):
        e = expr("f(1, 2)")
        assert isinstance(e, ast.Apply) and len(e.args) == 2

    def test_escape(self):
        e = expr("[x + 1]")
        assert isinstance(e, ast.Escape) and e.code == "x + 1"

    def test_escape_call_is_cast_shape(self):
        e = expr("[&int8](p)")
        assert isinstance(e, ast.Apply)
        assert isinstance(e.fn, ast.Escape)

    def test_computed_field(self):
        # the paper's javalike: self.__vtable.[methodname](...)
        e = expr("self.vt.[name](x)")
        assert isinstance(e, ast.Apply)
        sel = e.fn
        assert isinstance(sel, ast.Select)
        assert isinstance(sel.field, ast.Escape)

    def test_typed_constructor(self):
        e = expr("Complex { 1, 0.f }")
        assert isinstance(e, ast.Constructor)
        assert e.type_expr is not None and len(e.fields) == 2

    def test_named_constructor_fields(self):
        e = expr("{ x = 1, y = 2 }")
        assert [f.name for f in e.fields] == ["x", "y"]

    def test_nil_true_false(self):
        assert isinstance(expr("nil"), ast.Nil)
        assert expr("true").value is True
        assert expr("false").value is False

    def test_string(self):
        assert expr("'abc'").value == "abc"

    def test_parenthesized(self):
        e = expr("(1 + 2) * 3")
        assert e.op == "*" and e.lhs.op == "+"

    def test_shift_and_bitops(self):
        e = expr("a << 2 | b & c ^ d")
        assert e.op == "|"


class TestStatements:
    def block(self, src):
        return fn(f"terra f() : {{}}\n{src}\nend").body.statements

    def test_var_decl(self):
        (s,) = self.block("var x : int = 1")
        assert isinstance(s, ast.VarStat)
        assert s.targets[0].name == "x"
        assert s.inits is not None

    def test_var_multi(self):
        (s,) = self.block("var a, b = 1, 2")
        assert len(s.targets) == 2 and len(s.inits) == 2

    def test_var_escape_target(self):
        (s,) = self.block("var [sym] = 1")
        assert s.targets[0].escape is not None

    def test_assignment_multi(self):
        (s,) = self.block("a, b = b, a")
        assert isinstance(s, ast.AssignStat)
        assert len(s.lhs) == 2

    def test_deref_assignment(self):
        (s,) = self.block("@p = 5")
        assert isinstance(s, ast.AssignStat)
        assert isinstance(s.lhs[0], ast.UnOp)

    def test_if_elseif_else(self):
        (s,) = self.block("""
        if a then return 1
        elseif b then return 2
        else return 3 end
        """)
        assert isinstance(s, ast.IfStat)
        assert len(s.branches) == 2 and s.orelse is not None

    def test_while(self):
        (s,) = self.block("while x < 10 do x = x + 1 end")
        assert isinstance(s, ast.WhileStat)

    def test_repeat(self):
        (s,) = self.block("repeat x = x + 1 until x > 3")
        assert isinstance(s, ast.RepeatStat)

    def test_for_with_step(self):
        (s,) = self.block("for i = 0, N, 4 do f(i) end")
        assert isinstance(s, ast.ForNum) and s.step is not None

    def test_for_escape_var(self):
        (s,) = self.block("for [mm] = 0, NB, RM do end")
        assert s.target.escape is not None

    def test_break(self):
        (s,) = self.block("while true do break end")
        assert isinstance(s.body.statements[0], ast.BreakStat)

    def test_defer(self):
        (s,) = self.block("defer free(p)")
        assert isinstance(s, ast.DeferStat)

    def test_statement_escape(self):
        (s,) = self.block("[stmts]")
        assert isinstance(s, ast.EscapeStat)

    def test_statement_escape_with_semicolon(self):
        stmts = self.block("[loadc];\n[calcc];")
        assert len(stmts) == 2
        assert all(isinstance(s, ast.EscapeStat) for s in stmts)

    def test_escape_assignment(self):
        # Fig 5: [c[m][n]] = [c[m][n]] + [a[m]] * [b[n]]
        (s,) = self.block("[c] = [c] + [a] * [b]")
        assert isinstance(s, ast.AssignStat)
        assert isinstance(s.lhs[0], ast.Escape)

    def test_newline_escape_not_index(self):
        stmts = self.block("var x = 0\n[qs]\nreturn x")
        assert len(stmts) == 3
        assert isinstance(stmts[1], ast.EscapeStat)

    def test_same_line_index(self):
        (s,) = self.block("x = a[i]")
        assert isinstance(s.rhs[0], ast.Index)

    def test_do_block(self):
        (s,) = self.block("do var x = 1 end")
        assert isinstance(s, ast.DoStat)

    def test_expression_statement_must_be_call(self):
        with pytest.raises(TerraSyntaxError):
            self.block("x + 1")


class TestDefinitions:
    def test_named_function(self):
        d = fn("terra min(a : int, b : int) : int return a end")
        assert d.namepath == ["min"]
        assert len(d.params) == 2
        assert d.params[0].name == "a"

    def test_anonymous_function(self):
        d = fn("terra(a : int) : int return a end")
        assert d.namepath is None

    def test_method_definition(self):
        d = fn("terra Image:init(N : int) : {} end")
        assert d.namepath == ["Image"] and d.method_name == "init"

    def test_escape_params(self):
        d = fn("terra([A] : &double, [params]) end")
        assert d.params[0].escape is not None
        assert d.params[0].type_expr is not None
        assert d.params[1].type_expr is None

    def test_struct(self):
        defs = parse_toplevel(
            "struct GreyscaleImage { data : &float; N : int; }")
        (d,) = defs
        assert isinstance(d, ast.StructDef)
        assert [f for f, _t in d.entries] == ["data", "N"]

    def test_multiple_definitions(self):
        defs = parse_toplevel("""
        struct V { x : float }
        terra V:get() : float return self.x end
        terra make() : V return V { 1.f } end
        """)
        assert len(defs) == 3

    def test_dotted_name(self):
        d = fn("terra ns.helper() : int return 1 end")
        assert d.namepath == ["ns", "helper"]


class TestTypeExpressions:
    def test_pointer(self):
        t = parse_type("&int")
        assert isinstance(t, ast.UnOp) and t.op == "&"

    def test_pointer_pointer(self):
        t = parse_type("&&float")
        assert isinstance(t.operand, ast.UnOp)

    def test_array(self):
        t = parse_type("int[4]")
        assert isinstance(t, ast.Index)

    def test_vector_call(self):
        t = parse_type("vector(float, 4)")
        assert isinstance(t, ast.Apply)

    def test_unit(self):
        t = parse_type("{}")
        assert isinstance(t, ast.TupleTypeExpr) and t.elements == []

    def test_tuple(self):
        t = parse_type("{int, bool}")
        assert isinstance(t, ast.TupleTypeExpr) and len(t.elements) == 2

    def test_function_type(self):
        t = parse_type("{int, int} -> int")
        assert isinstance(t, ast.FunctionTypeExpr)
        assert len(t.parameters) == 2 and len(t.returns) == 1

    def test_escape_type(self):
        t = parse_type("[PixelType]")
        assert isinstance(t, ast.Escape)

    def test_namespaced(self):
        t = parse_type("lib.Image")
        assert isinstance(t, ast.Select)


class TestQuotes:
    def test_statements(self):
        q = parse_quote("var x = 1\nf(x)")
        assert len(q.block.statements) == 2
        assert q.in_exprs is None

    def test_in_clause(self):
        q = parse_quote("var x = 1 in x")
        assert q.in_exprs is not None and len(q.in_exprs) == 1

    def test_trailing_garbage(self):
        with pytest.raises(TerraSyntaxError):
            parse_quote("var x = 1 end")


class TestParserRobustness:
    """Fuzz: arbitrary text must raise TerraSyntaxError (or parse), never
    crash with an internal exception."""

    from hypothesis import given, settings, strategies as _st

    @settings(max_examples=200, deadline=None)
    @given(_st.lists(_st.sampled_from(
        list("abcxyz0123456789()[]{}+-*/@&:=.,<>~'\"") +
        [" ", "\n", "terra ", "end ", "var ", "if ", "then ", "for ",
         "do ", "return ", "struct ", "quote ", "in ", "and ", "not "]),
        max_size=40))
    def test_toplevel_never_crashes(self, pieces):
        from repro.errors import TerraSyntaxError
        try:
            parse_toplevel("".join(pieces))
        except TerraSyntaxError:
            pass

    @settings(max_examples=200, deadline=None)
    @given(_st.text(max_size=40))
    def test_expression_never_crashes(self, text):
        from repro.errors import TerraSyntaxError
        try:
            parse_expression(text)
        except TerraSyntaxError:
            pass
