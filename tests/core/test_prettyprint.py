"""Pretty-printer tests: the staged code is inspectable (Terra's
printpretty/disas story)."""

import pytest

from repro import quote_, symbol, terra, int_


@pytest.fixture
def staged_fn():
    n = 3
    acc = symbol(int_, "acc")
    qs = [quote_("[acc] = [acc] + [i]") for i in range(n)]
    return terra("""
    terra staged(x : int) : int
      var [acc] = x
      [qs]
      if [acc] > 10 then return [acc] end
      for i = 0, 4 do
        [acc] = [acc] * 2
      end
      return [acc]
    end
    """)


class TestSpecializedPrinting:
    def test_shows_splice_results(self, staged_fn):
        text = staged_fn.get_source()
        # the quotes were spliced: three accumulation statements exist
        assert text.count("+ 0") + text.count("+ 1") + text.count("+ 2") == 3
        # escapes are gone — constants were embedded
        assert "[" not in text.replace("] :", "")  # no escape brackets

    def test_shows_renamed_symbols(self, staged_fn):
        text = staged_fn.get_source()
        assert "acc_" in text  # hygienic unique names are visible

    def test_control_flow_rendered(self, staged_fn):
        text = staged_fn.get_source()
        assert "if" in text and "for" in text and "return" in text

    def test_declaration_only(self):
        from repro import declare
        assert "not defined" in declare("ghost").get_source()

    def test_printpretty_prints(self, staged_fn, capsys):
        staged_fn.printpretty()
        assert "terra staged" in capsys.readouterr().out


class TestTypedPrinting:
    def test_inferred_types_visible(self):
        f = terra("terra f(x : int) return x + 1.5 end")
        text = f.get_source(typed=True)
        assert ": double" in text  # the inferred return type

    def test_conversions_visible(self):
        f = terra("terra f(x : int) : double return x end")
        text = f.get_source(typed=True)
        assert "numeric" in text  # the inserted implicit cast

    def test_loop_var_type_shown(self):
        f = terra("""
        terra f(n : int64) : int64
          var s : int64 = 0
          for i = 0, n do s = s + i end
          return s
        end
        """)
        text = f.get_source(typed=True)
        assert ": int64 =" in text


class TestCSource:
    def test_c_source_contains_component(self):
        fns = terra("""
        terra helper(x : int) : int return x * 2 end
        terra main_fn(x : int) : int return helper(x) + 1 end
        """)
        text = fns.main_fn.get_c_source()
        assert "helper" in text and "main_fn" in text
        assert "#include <stdint.h>" in text

    def test_c_source_shows_vector_types(self):
        f = terra("""
        terra f(p : &float) : {}
          @[&vector(float,4)](p) = @[&vector(float,4)](p) * 2.f
        end
        """)
        assert "vector_size" in f.get_c_source()
