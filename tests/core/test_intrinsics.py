"""Intrinsics tests on both backends: math, min/max, select, prefetch."""

import math

import numpy as np
import pytest

from repro import terra
from repro.errors import TypeCheckError


class TestScalarMath:
    def test_sqrt(self, backend):
        f = terra("terra f(x : double) : double return sqrt(x) end",
                  env={"sqrt": __import__("repro").sqrt})
        assert f.compile(backend)(2.0) == pytest.approx(math.sqrt(2))

    def test_sqrt_float32(self, backend):
        from repro import sqrt
        f = terra("terra f(x : float) : float return [sqrt](x) end")
        assert f.compile(backend)(4.0) == 2.0

    def test_fabs(self, backend):
        from repro import fabs
        f = terra("terra f(x : double) : double return [fabs](x) end")
        assert f.compile(backend)(-3.5) == 3.5

    def test_floor_ceil(self, backend):
        from repro import ceil, floor
        f = terra("""
        terra f(x : double) : double
          return [floor](x) * 100.0 + [ceil](x)
        end
        """)
        assert f.compile(backend)(2.3) == 203.0

    def test_fmin_fmax(self, backend):
        from repro import fmax, fmin
        f = terra("""
        terra f(a : double, b : double) : double
          return [fmin](a, b) * 100.0 + [fmax](a, b)
        end
        """)
        assert f.compile(backend)(2.0, 5.0) == 205.0

    def test_sqrt_rejects_int(self):
        from repro import sqrt
        fn = terra("terra f(x : int) : int return [sqrt](x) end")
        with pytest.raises(TypeCheckError):
            fn.ensure_typechecked()


class TestVectorIntrinsics:
    def _run_vec(self, backend, body, a_vals, b_vals=None):
        from repro import fabs, fmax, fmin, sqrt, select  # noqa: F401
        args = "a : &float, o : &float" if b_vals is None else \
            "a : &float, b : &float, o : &float"
        f = terra(f"""
        terra f({args}) : {{}}
          var va = @[&vector(float,4)](a)
          {"var vb = @[&vector(float,4)](b)" if b_vals is not None else ""}
          @[&vector(float,4)](o) = {body}
        end
        """, env=dict(fabs=fabs, fmax=fmax, fmin=fmin, sqrt=sqrt,
                      select=select))
        a = np.array(a_vals, np.float32)
        o = np.zeros(4, np.float32)
        if b_vals is None:
            f.compile(backend)(a, o)
        else:
            f.compile(backend)(a, np.array(b_vals, np.float32), o)
        return list(o)

    def test_vector_sqrt(self, backend):
        out = self._run_vec(backend, "[sqrt](va)", [1, 4, 9, 16])
        assert out == [1, 2, 3, 4]

    def test_vector_fabs(self, backend):
        out = self._run_vec(backend, "[fabs](va)", [-1, 2, -3, 4])
        assert out == [1, 2, 3, 4]

    def test_vector_fmin(self, backend):
        out = self._run_vec(backend, "[fmin](va, vb)",
                            [1, 5, 2, 8], [4, 3, 6, 7])
        assert out == [1, 3, 2, 7]

    def test_vector_select(self, backend):
        out = self._run_vec(backend, "[select](va < vb, va, vb)",
                            [1, 5, 2, 8], [4, 3, 6, 7])
        assert out == [1, 3, 2, 7]


class TestSelect:
    def test_scalar(self, backend):
        from repro import select
        f = terra("""
        terra f(c : bool, a : int, b : int) : int
          return [select](c, a, b)
        end
        """)
        h = f.compile(backend)
        assert h(True, 1, 2) == 1 and h(False, 1, 2) == 2

    def test_both_branches_evaluated(self, backend):
        """select is branch-free: unlike and/or it evaluates both sides."""
        from repro import select
        f = terra("""
        terra bump(p : &int) : int
          @p = @p + 1
          return @p
        end
        terra f(p : &int, q : &int) : int
          return [select](true, bump(p), bump(q))
        end
        """)
        p = np.zeros(1, np.int32)
        q = np.zeros(1, np.int32)
        f.f.compile(backend)(p, q)
        assert p[0] == 1 and q[0] == 1  # the untaken branch ran too

    def test_branch_type_mismatch(self):
        from repro import select
        fn = terra("""
        terra f(c : bool) : int
          return [select](c, 1, 2.5)
        end
        """)
        with pytest.raises(TypeCheckError, match="same type"):
            fn.ensure_typechecked()


class TestPrefetchAndFence:
    def test_prefetch_is_semantically_noop(self, backend):
        from repro import prefetch
        f = terra("""
        terra f(p : &double) : double
          [prefetch](p, 0, 3, 1)
          return @p
        end
        """)
        buf = np.array([42.5])
        assert f.compile(backend)(buf) == 42.5

    def test_prefetch_needs_pointer(self):
        from repro import prefetch
        fn = terra("terra f(x : int) : {} [prefetch](x, 0, 3, 1) end")
        with pytest.raises(TypeCheckError, match="pointer"):
            fn.ensure_typechecked()

    def test_fence(self, backend):
        from repro import fence
        f = terra("""
        terra f(x : int) : int
          [fence]()
          return x
        end
        """)
        assert f.compile(backend)(7) == 7


class TestVectorof:
    def test_literal_lanes(self, backend):
        f = terra("""
        terra f(o : &float) : {}
          @[&vector(float,4)](o) = vectorof(float, 1.f, 2.f, 3.f, 4.f)
        end
        """)
        buf = np.zeros(4, np.float32)
        f.compile(backend)(buf)
        assert list(buf) == [1, 2, 3, 4]

    def test_lane_expressions(self, backend):
        f = terra("""
        terra f(x : int, o : &int) : {}
          @[&vector(int,4)](o) = vectorof(int, x, x + 1, x * 2, 0)
        end
        """)
        buf = np.zeros(4, np.int32)
        f.compile(backend)(10, buf)
        assert list(buf) == [10, 11, 20, 0]

    def test_lane_count_sets_width(self):
        from repro import vectorof
        from repro.errors import TypeCheckError
        fn = terra("""
        terra f(o : &float) : {}
          -- 2-lane literal assigned to a 4-lane slot: type error
          @[&vector(float,4)](o) = vectorof(float, 1.f, 2.f)
        end
        """)
        with pytest.raises(TypeCheckError):
            fn.ensure_typechecked()

    def test_needs_primitive_type(self):
        from repro.errors import SpecializeError
        with pytest.raises(SpecializeError):
            terra("""
            terra f() : {}
              var v = vectorof(rawstring, 'a')
            end
            """)
