"""Optimizer tests: folding is correct (differential) and actually fires."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import get_backend, terra
from repro.core import tast
from repro.core.optimize import optimize_function
from repro.core import types as T


def folded_body(source, env=None):
    fn = terra(source, env=env or {})
    fn.ensure_typechecked()
    optimize_function(fn.typed)
    return fn.typed.body


def count_nodes(tree, kind):
    return sum(1 for n in tast.walk(tree) if isinstance(n, kind))


class TestFolding:
    def test_constant_arithmetic(self):
        body = folded_body("terra f() : int return (2 + 3) * 4 end")
        ret = body.statements[-1]
        assert isinstance(ret.expr, tast.TConst) and ret.expr.value == 20

    def test_wrapping_fold(self):
        body = folded_body("terra f() : int8 return [int8](100) + [int8](100) end")
        ret = body.statements[-1]
        assert isinstance(ret.expr, tast.TConst)
        assert ret.expr.value == -56  # 200 wraps in int8

    def test_float32_fold_rounds(self):
        import numpy as np
        body = folded_body("terra f() : float return 0.1f + 0.2f end")
        ret = body.statements[-1]
        assert ret.expr.value == np.float32(np.float32(0.1) + np.float32(0.2))

    def test_division_by_zero_not_folded(self):
        body = folded_body("terra f() : int return 1 / 0 end")
        ret = body.statements[-1]
        assert isinstance(ret.expr, tast.TBinOp)  # left for runtime trap

    def test_comparison_fold(self):
        body = folded_body("""
        terra f() : int
          if 3 < 5 then return 1 end
          return 0
        end
        """)
        # the if was resolved; only `return 1` remains
        assert isinstance(body.statements[0], tast.TReturn)

    def test_dead_branch_removed(self):
        body = folded_body("""
        terra f(x : int) : int
          if false then return 111 end
          return x
        end
        """)
        assert count_nodes(body, tast.TIf) == 0

    def test_while_false_removed(self):
        body = folded_body("""
        terra f(x : int) : int
          while false do x = x + 1 end
          return x
        end
        """)
        assert count_nodes(body, tast.TWhile) == 0

    def test_zero_trip_for_removed(self):
        body = folded_body("""
        terra f(x : int) : int
          for i = 10, 10 do x = x + i end
          return x
        end
        """)
        assert count_nodes(body, tast.TForNum) == 0

    def test_unreachable_after_return(self):
        body = folded_body("""
        terra f(x : int) : int
          return x
          x = x + 1
          return x + 2
        end
        """)
        assert len(body.statements) == 1

    def test_identity_simplification(self):
        body = folded_body("terra f(x : int) : int return (x + 0) * 1 end")
        ret = body.statements[-1]
        assert isinstance(ret.expr, tast.TVar)

    def test_float_mul_zero_not_simplified(self):
        # x*0 must stay: it is NaN for x=NaN
        body = folded_body("terra f(x : double) : double return x * 0.0 end")
        ret = body.statements[-1]
        assert isinstance(ret.expr, tast.TBinOp)

    def test_short_circuit_fold(self):
        body = folded_body("""
        terra f(b : bool) : bool
          return true and b
        end
        """)
        ret = body.statements[-1]
        assert isinstance(ret.expr, tast.TVar)

    def test_cast_fold(self):
        body = folded_body("terra f() : double return [double](7) end")
        ret = body.statements[-1]
        assert isinstance(ret.expr, tast.TConst) and ret.expr.value == 7.0

    def test_staged_constants_collapse(self):
        """The motivating case: staged code full of baked meta-constants
        folds to almost nothing."""
        NB, RM = 32, 4
        body = folded_body(
            "terra f(x : int) : int return x + NB * RM + (NB / RM) end",
            env={"NB": NB, "RM": RM})
        ret = body.statements[-1]
        # one addition of x with a single folded constant remains
        consts = [n for n in tast.walk(ret) if isinstance(n, tast.TConst)]
        assert len(consts) == 1 and consts[0].value == NB * RM + NB // RM


class TestSemanticsPreserved:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_differential_after_optimization(self, a, b):
        """Both backends consume the same pipelined IR and must agree."""
        fn = terra("""
        terra f(a : int, b : int) : int
          var acc = (a + 0) * 1 + (7 - 7)
          if 2 > 1 then acc = acc + b end
          while false do acc = 999 end
          for i = 0, 3 do acc = acc + i * (4 / 2) end
          return acc and (255 or 0)
        end
        """, env={})
        assert fn.compile("c")(a, b) == fn.compile("interp")(a, b)

    def test_interp_runs_optimized(self):
        fn = terra("""
        terra f(x : int) : int
          if true then return x + (2 * 3) end
          return -1
        end
        """)
        assert fn.compile("interp")(10) == 16
        # the linker ran the full pipeline before the backend compiled
        assert fn.typed.pipeline_level == 2
