"""Quote tests: creation, splicing, and the operator-overloading API
DSLs build expression trees with."""

import pytest

from repro import Quote, expr, int_, quote_, symbol, terra
from repro.errors import SpecializeError


class TestCreation:
    def test_expression_quote(self):
        q = expr("1 + 2")
        assert q.kind == Quote.EXPRESSION

    def test_statements_quote(self):
        q = quote_("var x = 1\nvar y = 2")
        assert q.kind == Quote.STATEMENTS

    def test_in_clause_makes_expression_splicable(self):
        q = quote_("var x = 21 in x * 2")
        f = terra("terra f() : int return [q] end")
        assert f() == 42

    def test_statements_quote_without_in_rejected_as_expr(self):
        q = quote_("var x = 1")
        with pytest.raises(SpecializeError):
            terra("terra f() : int return [q] end")

    def test_expression_quote_as_statement(self):
        g = terra("terra g(x : int) : int return x end")
        q = expr("g(1)")
        f = terra("""
        terra f() : int
          [q]
          return 2
        end
        """)
        assert f() == 2


class TestOperatorOverloading:
    def test_arithmetic(self):
        a, b = expr("10"), expr("4")
        f = terra("terra f() : int return [a + b] - [a - b] + [a * b] end")
        assert f() == 14 - 6 + 40

    def test_reflected_ops_with_python_numbers(self):
        a = expr("10")
        f = terra("terra f() : int return [1 + a] + [a - 1] + [2 * a] end")
        assert f() == 11 + 9 + 20

    def test_division(self):
        a = expr("9.0")
        f = terra("terra f() : double return [a / 2] end")
        assert f() == 4.5

    def test_negation(self):
        a = expr("5")
        f = terra("terra f() : int return [-a] end")
        assert f() == -5

    def test_comparisons_via_methods(self):
        a, b = expr("1"), expr("2")
        f = terra("terra f() : bool return [a.lt(b)] end")
        assert f() is True

    def test_select_and_index(self):
        from repro import struct
        S = struct("struct QS { v : int }")
        s_sym = symbol(S, "s")
        get_v = Quote.wrap(s_sym).select("v")
        f = terra("""
        terra f() : int
          var [s_sym] = QS { 33 }
          return [get_v]
        end
        """, env={"QS": S, "s_sym": s_sym, "get_v": get_v})
        assert f() == 33

    def test_call_through_quote(self):
        g = terra("terra g(x : int) : int return x * 3 end")
        call = Quote.wrap(g)(expr("7"))
        f = terra("terra f() : int return [call] end")
        assert f() == 21

    def test_wrap_python_values(self):
        assert Quote.wrap(5).kind == Quote.EXPRESSION
        assert Quote.wrap(expr("1")) is not None

    def test_cast_builder(self):
        from repro import int64
        q = expr("300").cast(int64)
        f = terra("terra f() : int64 return [q] end")
        assert f() == 300


class TestSpliceIsolation:
    def test_same_quote_twice_no_aliasing(self):
        """Splicing one quote into two positions must not alias state
        between the copies."""
        q = quote_("var t = 1 in t + 1")
        f = terra("terra f() : int return [q] * 100 + [q] end")
        assert f() == 202

    def test_quote_spliced_into_two_functions(self):
        q = quote_("var n = 5 in n")
        f = terra("terra f() : int return [q] end")
        g = terra("terra g() : int return [q] + 1 end")
        assert f() == 5 and g() == 6

    def test_variable_outside_scope_rejected(self):
        """A quote referencing a function's local, spliced into another
        function, is a scope error at typecheck time."""
        from repro.errors import TypeCheckError
        s = symbol(int_, "loner")
        q = Quote.wrap(s)
        bad = terra("terra bad() : int return [q] end")
        with pytest.raises(TypeCheckError, match="scope"):
            bad.ensure_typechecked()
