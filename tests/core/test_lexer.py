"""Lexer tests: Lua-flavoured tokens plus Terra's extensions."""

import pytest

from repro.core.lexer import Lexer, NumberValue, Token, tokenize
from repro.errors import TerraSyntaxError


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_names_and_keywords(self):
        toks = kinds("terra foo end bar")
        assert toks == [("keyword", "terra"), ("name", "foo"),
                        ("keyword", "end"), ("name", "bar")]

    def test_all_keywords_recognized(self):
        for kw in ("and", "break", "do", "else", "elseif", "end", "false",
                   "for", "if", "in", "nil", "not", "or", "quote", "repeat",
                   "return", "struct", "terra", "then", "true", "until",
                   "var", "while", "defer"):
            assert tokenize(kw)[0].kind == Token.KEYWORD, kw

    def test_underscored_names(self):
        assert tokenize("_foo_bar2")[0].value == "_foo_bar2"

    def test_operators_maximal_munch(self):
        toks = [t.value for t in tokenize("<<= >= == ~= -> ... ..")[:-1]]
        assert toks == ["<<", "=", ">=", "==", "~=", "->", "...", ".."]

    def test_terra_specific_operators(self):
        toks = [t.value for t in tokenize("& @ ` |")[:-1]]
        assert toks == ["&", "@", "`", "|"]

    def test_eof_token(self):
        assert tokenize("")[0].kind == Token.EOF


class TestNumbers:
    def test_integer(self):
        nv = tokenize("42")[0].value
        assert nv == NumberValue(42, False, "")

    def test_float(self):
        nv = tokenize("4.25")[0].value
        assert nv == NumberValue(4.25, True, "")

    def test_float_suffix(self):
        # the paper writes float constants as 0.f
        nv = tokenize("0.f")[0].value
        assert nv == NumberValue(0.0, True, "f")

    def test_int_with_f_suffix(self):
        nv = tokenize("3f")[0].value
        assert nv.is_float and nv.value == 3.0

    def test_hex(self):
        assert tokenize("0xFF")[0].value.value == 255

    def test_exponent(self):
        assert tokenize("1e3")[0].value == NumberValue(1000.0, True, "")
        assert tokenize("1.5e-2")[0].value.value == pytest.approx(0.015)

    def test_ull_suffix(self):
        nv = tokenize("5ULL")[0].value
        assert nv.suffix == "ull" and nv.value == 5

    def test_ll_suffix(self):
        assert tokenize("5LL")[0].value.suffix == "ll"

    def test_u_suffix(self):
        assert tokenize("5u")[0].value.suffix == "u"

    def test_leading_dot(self):
        assert tokenize(".5")[0].value.value == 0.5

    def test_range_not_float(self):
        # `0,10` style: dot-dot must not absorb into the number
        toks = [t.value for t in tokenize("1..2")[:-1]]
        assert toks[0].value == 1 and toks[1] == ".." and toks[2].value == 2

    def test_dangling_exponent_rejected(self):
        # Regression: `1e` lexed silently as integer 1 + identifier `e`,
        # where C and real Terra reject the literal outright.
        for bad in ("1e", "1e+", "1E-", "2.5e", "1e+ 2"):
            with pytest.raises(TerraSyntaxError, match="exponent"):
                tokenize(bad)

    def test_well_formed_exponents_still_lex(self):
        assert tokenize("1e+2")[0].value == NumberValue(100.0, True, "")
        assert tokenize("1e-2")[0].value.value == pytest.approx(0.01)

    def test_hex_with_ull_suffix(self):
        # `0xFFull`: the trailing `ull` is a suffix, never a dangling
        # exponent (hex `e` is a digit, not an exponent marker)
        nv = tokenize("0xFFull")[0].value
        assert nv.value == 255 and nv.suffix == "ull" and not nv.is_float
        assert tokenize("0xE")[0].value.value == 14


class TestStrings:
    def test_simple(self):
        assert tokenize("'hello'")[0].value == "hello"
        assert tokenize('"hello"')[0].value == "hello"

    def test_escapes(self):
        assert tokenize(r"'a\nb\t\\'")[0].value == "a\nb\t\\"

    def test_unterminated(self):
        with pytest.raises(TerraSyntaxError):
            tokenize("'abc")

    def test_newline_rejected(self):
        with pytest.raises(TerraSyntaxError):
            tokenize("'ab\ncd'")

    def test_unknown_escape(self):
        with pytest.raises(TerraSyntaxError):
            tokenize(r"'\q'")


class TestComments:
    def test_line_comment(self):
        assert kinds("a -- comment\nb") == [("name", "a"), ("name", "b")]

    def test_block_comment(self):
        assert kinds("a --[[ x\ny ]] b") == [("name", "a"), ("name", "b")]

    def test_unterminated_block(self):
        with pytest.raises(TerraSyntaxError):
            tokenize("--[[ never ends")


class TestLocations:
    def test_line_tracking(self):
        toks = tokenize("a\nb\n  c")
        assert toks[0].location.line == 1
        assert toks[1].location.line == 2
        assert toks[2].location.line == 3
        assert toks[2].location.column == 3

    def test_first_line_offset(self):
        toks = tokenize("a", first_line=10)
        assert toks[0].location.line == 10


class TestEscapeScanning:
    def scan(self, source):
        lexer = Lexer(source)
        tok = lexer.next_token()
        assert tok.value == "["
        body, _loc = lexer.scan_escape(tok.end_offset)
        return body, lexer

    def test_simple(self):
        body, lexer = self.scan("[x + 1] rest")
        assert body == "x + 1"
        assert lexer.next_token().value == "rest"

    def test_nested_brackets(self):
        body, _ = self.scan("[caddr[m][n]]")
        assert body == "caddr[m][n]"

    def test_python_string_with_bracket(self):
        body, _ = self.scan("[f(']')]")
        assert body == "f(']')"

    def test_triple_quoted(self):
        body, _ = self.scan('[f("""][""")]')
        assert body == 'f("""][""")'

    def test_unterminated(self):
        with pytest.raises(TerraSyntaxError):
            self.scan("[f(1)")
