"""Environment-capture tests: the shared lexical environment (§4.1)."""

import pytest

from repro import int_, quote_, symbol, terra
from repro.core.env import Environment, capture, from_mapping
from repro.errors import SpecializeError

MODULE_LEVEL = 777


class TestCapture:
    def test_function_locals(self):
        local_value = 5
        f = terra("terra f() : int return local_value end")
        assert f() == 5

    def test_module_globals(self):
        f = terra("terra f() : int return MODULE_LEVEL end")
        assert f() == 777

    def test_locals_shadow_globals(self):
        MODULE_LEVEL = 1  # noqa: F841 - shadows the module global
        f = terra("terra f() : int return MODULE_LEVEL end")
        assert f() == 1

    def test_explicit_env_overlay(self):
        x = 1
        f = terra("terra f() : int return x + y end", env={"y": 10})
        assert f() == 11

    def test_explicit_env_shadows_locals(self):
        x = 1  # noqa: F841
        f = terra("terra f() : int return x end", env={"x": 2})
        assert f() == 2

    def test_comprehension_sees_enclosing_locals(self):
        base = 100
        acc = symbol(int_, "acc")
        qs = [quote_("[acc] = [acc] + [base] + [i]") for i in range(2)]
        f = terra("""
        terra f() : int
          var [acc] = 0
          [qs]
          return [acc]
        end
        """)
        assert f() == 201

    def test_nested_comprehensions(self):
        k = 3
        acc = symbol(int_, "acc")
        qs = [q for qs_ in
              [[quote_("[acc] = [acc] + [k] * [i] + [j]") for j in range(2)]
               for i in range(2)] for q in qs_]
        f = terra("""
        terra f() : int
          var [acc] = 0
          [qs]
          return [acc]
        end
        """)
        assert f() == sum(3 * i + j for i in range(2) for j in range(2))

    def test_terra_primitive_names_beat_builtins(self):
        # `int`, `float`, `bool` resolve to Terra types in type positions
        f = terra("terra f(x : float) : int return [int](x) end")
        assert f(3.5) == 3

    def test_builtins_available_in_escapes(self):
        f = terra("terra f() : int return [len([1,2,3])] end")
        assert f() == 3


class TestEnvironmentObject:
    def test_lookup_order(self):
        env = Environment({"a": 1}, {"a": 2, "b": 3})
        assert env.lookup("a") == 1
        assert env.lookup("b") == 3

    def test_missing_raises(self):
        env = Environment({}, {})
        with pytest.raises(SpecializeError, match="zzz"):
            env.lookup("zzz")

    def test_default(self):
        env = Environment({}, {})
        assert env.lookup("zzz", None) is None

    def test_child_with(self):
        env = Environment({"a": 1}, {})
        child = env.child_with({"b": 2})
        assert child.lookup("a") == 1 and child.lookup("b") == 2
        with pytest.raises(SpecializeError):
            env.lookup("b")

    def test_eval_escape_terra_scope_shadows(self):
        env = Environment({"x": 10}, {})
        assert env.eval_escape("x", {"x": 20}) == 20
        assert env.eval_escape("x") == 10

    def test_pointer_sugar(self):
        from repro.core import types as T
        env = Environment({"T_": T.int32}, {})
        assert env.eval_escape("&T_") is T.pointer(T.int32)
        assert env.eval_escape("&&T_") is T.pointer(T.pointer(T.int32))

    def test_pointer_sugar_requires_type(self):
        env = Environment({"n": 42}, {})
        with pytest.raises(SpecializeError, match="Terra type"):
            env.eval_escape("&n")

    def test_from_mapping(self):
        env = from_mapping({"k": 9})
        assert env.lookup("k") == 9
        assert from_mapping(env) is env
