"""Operator metamethods and the full Complex-number example.

The paper builds Complex via reflection (§4.1, §6.3); here it gets a
complete arithmetic via ``__add``/``__mul``/``__eq``/``__unm`` plus the
paper's ``__cast`` promotion from float.
"""

import pytest

from repro import expr, struct, terra
from repro.core import types as T
from repro.errors import TypeCheckError


def make_complex():
    Complex = struct("Complex")
    Complex.add_entry("real", T.float32)
    Complex.add_entry("imag", T.float32)
    env = {"Complex": Complex}

    def mk(re, im):
        return expr("Complex { [re], [im] }",
                    env={"Complex": Complex, "re": re, "im": im})

    Complex.metamethods["__add"] = lambda a, b: mk(
        a.select("real") + b.select("real"),
        a.select("imag") + b.select("imag"))
    Complex.metamethods["__sub"] = lambda a, b: mk(
        a.select("real") - b.select("real"),
        a.select("imag") - b.select("imag"))
    Complex.metamethods["__mul"] = lambda a, b: mk(
        a.select("real") * b.select("real")
        - a.select("imag") * b.select("imag"),
        a.select("real") * b.select("imag")
        + a.select("imag") * b.select("real"))
    Complex.metamethods["__unm"] = lambda a: mk(
        -a.select("real"), -a.select("imag"))

    def eq(a, b):
        return expr("av.real == bv.real and av.imag == bv.imag",
                    env={"av": a, "bv": b})
    Complex.metamethods["__eq"] = eq

    def cast(fromtype, totype, e):
        if fromtype is T.float32 or fromtype is T.float64 \
                or fromtype is T.int32:
            return expr("Complex { [float](e), 0.f }",
                        env={"Complex": Complex, "e": e})
        raise TypeCheckError("invalid conversion")
    Complex.metamethods["__cast"] = cast
    return Complex


class TestComplexArithmetic:
    def test_add(self):
        Complex = make_complex()
        f = terra("""
        terra f() : float
          var a = Complex { 1.f, 2.f }
          var b = Complex { 10.f, 20.f }
          var c = a + b
          return c.real * 100.f + c.imag
        end
        """, env={"Complex": Complex})
        assert f() == 1100.0 + 22.0

    def test_mul(self):
        Complex = make_complex()
        f = terra("""
        terra f() : float
          var i = Complex { 0.f, 1.f }
          var sq = i * i    -- i^2 == -1
          return sq.real * 10.f + sq.imag
        end
        """, env={"Complex": Complex})
        assert f() == -10.0

    def test_unary_minus(self):
        Complex = make_complex()
        f = terra("""
        terra f() : float
          var a = Complex { 3.f, -4.f }
          var b = -a
          return b.real * 10.f + b.imag
        end
        """, env={"Complex": Complex})
        assert f() == -30.0 + 4.0

    def test_eq(self):
        Complex = make_complex()
        f = terra("""
        terra f() : bool
          var a = Complex { 1.f, 2.f }
          var b = Complex { 1.f, 2.f }
          return a == b
        end
        """, env={"Complex": Complex})
        assert f() is True

    def test_mixed_scalar_via_cast(self):
        """The paper's promotion: a float operand converts to Complex via
        __cast inside the overloaded operator's argument position."""
        Complex = make_complex()
        f = terra("""
        terra addc(a : Complex, b : Complex) : Complex return a + b end
        terra f() : float
          var c = addc(Complex { 1.f, 5.f }, 2.5f)
          return c.real * 10.f + c.imag
        end
        """, env={"Complex": Complex})
        assert f.f() == 35.0 + 5.0

    def test_chained_expression(self):
        Complex = make_complex()
        f = terra("""
        terra f() : float
          var a = Complex { 1.f, 1.f }
          var b = Complex { 2.f, 0.f }
          var c = (a + b) * a - b    -- (3+i)(1+i) - 2 = 3+4i+i^2-2 = 4i
          return c.real * 100.f + c.imag
        end
        """, env={"Complex": Complex})
        assert f() == pytest.approx(0.0 + 4.0)


class TestMetamethodErrors:
    def test_struct_without_operators_rejected(self):
        S = struct("struct NoOps { x : int }")
        fn = terra("""
        terra f(a : NoOps, b : NoOps) : int
          var c = a + b
          return c.x
        end
        """, env={"NoOps": S})
        with pytest.raises(TypeCheckError):
            fn.ensure_typechecked()


class TestApplyMetamethod:
    """__apply: calling a struct value like a function (Terra's operator
    for array-style containers)."""

    def make_span(self):
        from repro import expr
        Span = struct("struct Span { data : &double, n : int64 }")

        def apply_(obj, index):
            return expr("[obj].data[[index]]", env={"obj": obj,
                                                    "index": index})
        Span.metamethods["__apply"] = apply_
        return Span

    def test_call_syntax_indexes(self):
        import numpy as np
        Span = self.make_span()
        f = terra("""
        terra f(p : &double, n : int64) : double
          var s = Span { p, n }
          return s(0) + s(n - 1)
        end
        """, env={"Span": Span})
        data = np.array([1.5, 2.0, 3.25])
        assert f(data, 3) == 1.5 + 3.25

    def test_apply_through_pointer(self):
        import numpy as np
        Span = self.make_span()
        f = terra("""
        terra get(s : &Span, i : int64) : double
          return (@s)(i)
        end
        terra f(p : &double) : double
          var s = Span { p, 2 }
          return get(&s, 1)
        end
        """, env={"Span": Span})
        assert f.f(np.array([5.0, 7.0])) == 7.0

    def test_missing_apply_still_errors(self):
        S = struct("struct NoApply { x : int }")
        fn = terra("""
        terra f() : int
          var s = NoApply { 1 }
          return s(0)
        end
        """, env={"NoApply": S})
        with pytest.raises(TypeCheckError, match="non-function"):
            fn.ensure_typechecked()
