"""Error reporting tests: the right error class, at the right stage, with
source locations — the §4.1 "where Terra can go wrong" taxonomy."""

import pytest

from repro import declare, struct, terra
from repro.errors import (LinkError, SourceLocation, SpecializeError,
                          TerraSyntaxError, TypeCheckError)


class TestErrorStages:
    """Each §4.1 failure mode surfaces at its own stage with its own
    exception class."""

    def test_syntax_error_at_parse(self):
        with pytest.raises(TerraSyntaxError):
            terra("terra f( : int end")

    def test_undefined_variable_at_specialization(self):
        with pytest.raises(SpecializeError):
            terra("terra f() : int return mystery_xyz end")

    def test_non_term_escape_at_specialization(self):
        with pytest.raises(SpecializeError):
            terra("terra f() : int return [object()] end")

    def test_non_type_annotation_at_specialization(self):
        with pytest.raises(SpecializeError):
            terra("terra f(x : [3 + 4]) : int return 0 end")

    def test_type_error_at_first_call_not_definition(self):
        fn = terra("terra f(p : &int) : int return p * p end")  # ill-typed
        with pytest.raises(TypeCheckError):
            fn()

    def test_link_error_for_undefined_function(self):
        g = declare("g")
        fn = terra("terra f() : int return g() end", env={"g": g})
        with pytest.raises((LinkError, TypeCheckError)):
            fn()


class TestLocations:
    def test_syntax_error_location(self):
        try:
            terra("terra f() : int\n  return @@\nend", filename="demo.t")
        except TerraSyntaxError as exc:
            assert exc.location is not None
            assert exc.location.filename == "demo.t"
            assert exc.location.line >= 2
        else:
            pytest.fail("expected a syntax error")

    def test_typecheck_error_location_line(self):
        fn = terra("""terra f(b : bool) : int
  var ok = 1
  var bad = b + 1
  return ok
end""", filename="located.t")
        try:
            fn.ensure_typechecked()
        except TypeCheckError as exc:
            assert exc.location is not None
            assert exc.location.line == 3
        else:
            pytest.fail("expected a type error")

    def test_location_str(self):
        loc = SourceLocation("x.t", 3, 7)
        assert str(loc) == "x.t:3:7"
        assert loc == SourceLocation("x.t", 3, 7)
        assert hash(loc) == hash(SourceLocation("x.t", 3, 7))

    def test_message_mentions_fields(self):
        S = struct("struct ErrS { alpha : int, beta : int }")
        fn = terra("terra f(s : ErrS) : int return s.gamma end",
                   env={"ErrS": S})
        with pytest.raises(TypeCheckError, match="alpha"):
            fn.ensure_typechecked()  # suggests the available fields

    def test_wrong_arg_count_message(self):
        fn = terra("""
        terra g(a : int, b : int) : int return a + b end
        terra f() : int return g(1) end
        """)
        with pytest.raises(TypeCheckError, match="number of arguments"):
            fn.f.ensure_typechecked()


class TestParserDiagnostics:
    CASES = [
        ("terra f() : int return 1", "end"),            # missing end
        ("terra f(x int) : int return x end", ":"),     # missing colon
        ("terra f() : int\n x + 1\nend", "statement"),  # non-statement
        ("struct S { x }", ":"),                        # field without type
        ("terra f() : int return [] end", "empty"),     # empty escape
    ]

    @pytest.mark.parametrize("source,fragment", CASES)
    def test_reasonable_messages(self, source, fragment):
        with pytest.raises(TerraSyntaxError) as excinfo:
            terra(source)
        assert fragment.lower() in str(excinfo.value).lower()
