"""In-struct union tests (Terra's ``union { ... }`` blocks)."""

import pytest

from repro import struct, terra
from repro.core import types as T


def make_value():
    return struct("""
    struct Value {
      tag : int
      union {
        i : int64
        d : double
        p : &int8
      }
    }
    """)


class TestUnionLayout:
    def test_members_share_offset(self):
        V = make_value()
        assert V.offsetof("i") == V.offsetof("d") == V.offsetof("p")

    def test_size_is_max_member(self):
        V = make_value()
        # tag(4) + pad(4) + union(8) = 16
        assert V.sizeof() == 16

    def test_union_after_field(self):
        V = make_value()
        assert V.offsetof("tag") == 0
        assert V.offsetof("i") == 8

    def test_mixed_sizes(self):
        S = struct("struct U2 { union { small : int8, big : int64[4] } }")
        assert S.sizeof() == 32
        assert S.offsetof("small") == S.offsetof("big") == 0

    def test_programmatic_add_union(self):
        S = T.StructType("PU")
        S.add_entry("tag", T.int32)
        S.add_union([("a", T.float32), ("b", T.uint32)])
        assert S.offsetof("a") == S.offsetof("b") == 4

    def test_two_unions(self):
        S = struct("""
        struct U3 {
          union { a : int32, b : float }
          union { c : int64, d : double }
        }
        """)
        assert S.offsetof("a") == S.offsetof("b") == 0
        assert S.offsetof("c") == S.offsetof("d") == 8
        assert S.sizeof() == 16


class TestUnionSemantics:
    @pytest.mark.parametrize("backend_name", ["c", "interp"])
    def test_members_alias(self, backend_name):
        V = make_value()
        f = terra("""
        terra f(x : int64) : int64
          var v : Value
          v.tag = 1
          v.i = x
          -- reinterpret through the other member and back
          var bits = v.d
          v.d = bits
          return v.i
        end
        """, env={"Value": V})
        assert f.compile(backend_name)(0x12345678) == 0x12345678

    @pytest.mark.parametrize("backend_name", ["c", "interp"])
    def test_type_punning_float_bits(self, backend_name):
        S = struct("struct Pun { union { f : float, bits : uint32 } }")
        f = terra("""
        terra f() : uint32
          var p : Pun
          p.f = 1.0f
          return p.bits
        end
        """, env={"Pun": S})
        assert f.compile(backend_name)() == 0x3F800000  # IEEE 754 for 1.0f

    def test_ffi_struct_with_union(self):
        V = make_value()
        f = terra("""
        terra f(v : Value) : int64
          if v.tag == 0 then return v.i end
          return 0
        end
        """, env={"Value": V})
        assert f({"tag": 0, "i": 99}) == 99

    def test_tagged_value_roundtrip(self, backend):
        V = make_value()
        fns = terra("""
        terra make_int(x : int64) : Value
          var v : Value
          v.tag = 0
          v.i = x
          return v
        end
        terra make_double(x : double) : Value
          var v : Value
          v.tag = 1
          v.d = x
          return v
        end
        terra as_double(v : Value) : double
          if v.tag == 1 then return v.d end
          return [double](v.i)
        end
        """, env={"Value": V})
        b = backend
        assert fns.as_double.compile(b)(
            fns.make_int.compile(b)(21)) == 21.0
        assert fns.as_double.compile(b)(
            fns.make_double.compile(b)(2.5)) == 2.5
