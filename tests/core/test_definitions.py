"""terra() definition-form tests: namespaces, methods, dotted paths,
anonymous functions, struct definitions."""

import pytest

from repro import Namespace, declare, struct, terra
from repro.core import types as T
from repro.errors import SpecializeError, TerraSyntaxError


class TestReturnShapes:
    def test_single_function(self):
        f = terra("terra one() : int return 1 end")
        assert f() == 1

    def test_namespace_for_multiple(self):
        ns = terra("""
        terra a() : int return 1 end
        terra b() : int return 2 end
        """)
        assert isinstance(ns, Namespace)
        assert ns.a() + ns.b() == 3
        assert set(ns) == {"a", "b"}

    def test_anonymous_function(self):
        f = terra("terra(x : int) : int return x * 3 end")
        assert f(4) == 12

    def test_struct_and_methods_namespace(self):
        ns = terra("""
        struct P { x : int }
        terra P:get() : int return self.x end
        """)
        assert isinstance(ns.P, T.StructType)
        assert "P_get" in ns

    def test_empty_source_rejected(self):
        with pytest.raises(TerraSyntaxError):
            terra("   ")


class TestMethods:
    def test_method_binds_into_struct(self):
        S = struct("struct MS { v : int }")
        m = terra("terra MS:double() : int return self.v * 2 end",
                  env={"MS": S})
        assert S.methods["double"] is m

    def test_method_self_is_pointer(self):
        S = struct("struct MS2 { v : int }")
        m = terra("terra MS2:get() : int return self.v end", env={"MS2": S})
        assert m.gettype().parameters[0] is T.pointer(S)

    def test_method_mutates_through_self(self):
        S = struct("struct MS3 { v : int }")
        terra("terra MS3:bump() : {} self.v = self.v + 1 end", env={"MS3": S})
        f = terra("""
        terra f() : int
          var s = MS3 { 10 }
          s:bump()
          s:bump()
          return s.v
        end
        """, env={"MS3": S})
        assert f() == 12

    def test_method_on_non_struct_rejected(self):
        with pytest.raises(SpecializeError, match="not a struct"):
            terra("terra notastruct:m() : int return 1 end",
                  env={"notastruct": 42})

    def test_methods_defined_in_same_call_as_struct(self):
        ns = terra("""
        struct Acc { total : int }
        terra Acc:add(v : int) : {} self.total = self.total + v end
        terra use() : int
          var a = Acc { 0 }
          a:add(3)
          a:add(4)
          return a.total
        end
        """)
        assert ns.use() == 7


class TestDottedPaths:
    def test_define_into_dict(self):
        lib = {}
        f = terra("terra lib.helper(x : int) : int return x + 1 end",
                  env={"lib": lib})
        assert lib["helper"] is f
        assert f(1) == 2

    def test_define_into_object(self):
        class Holder:
            pass
        holder = Holder()
        f = terra("terra holder.fn() : int return 9 end",
                  env={"holder": holder})
        assert holder.fn is f

    def test_fill_declaration_in_dict(self):
        lib = {"fwd": declare("fwd")}
        caller = terra("terra c() : int return lib.fwd() end",
                       env={"lib": lib})
        terra("terra lib.fwd() : int return 5 end", env={"lib": lib})
        assert caller() == 5


class TestSelfReference:
    def test_direct_recursion_by_name(self):
        f = terra("""
        terra tri(n : int) : int
          if n <= 0 then return 0 end
          return n + tri(n - 1)
        end
        """)
        assert f(4) == 10

    def test_later_definitions_visible_to_earlier_in_same_call(self):
        # forward use inside one terra() call: the earlier function body
        # references the later by name; linking happens lazily at call
        ns = terra("""
        terra first(x : int) : int return second(x) + 1 end
        terra second(x : int) : int return x * 2 end
        """, env={"second": declare("second")})
        # note: 'second' was pre-declared so `first` could reference it
        assert ns.first(5) == 11


class TestStructDefinition:
    def test_self_referential(self):
        Node = terra("""
        struct Node {
          value : int
          next : &Node
        }
        """)
        assert Node.entry_type("next") is T.pointer(Node)

    def test_linked_list_roundtrip(self):
        ns = terra("""
        struct LNode {
          value : int
          next : &LNode
        }
        terra sum(head : &LNode) : int
          var total = 0
          var cur = head
          while cur ~= nil do
            total = total + cur.value
            cur = cur.next
          end
          return total
        end
        terra build(n : int) : &LNode
          var head : &LNode = nil
          for i = 0, n do
            var node = [&LNode](std.malloc(sizeof(LNode)))
            node.value = i + 1
            node.next = head
            head = node
          end
          return head
        end
        terra destroy(head : &LNode) : {}
          while head ~= nil do
            var nxt = head.next
            std.free(head)
            head = nxt
          end
        end
        """, env={"std": __import__("repro").includec("stdlib.h")})
        head = ns.build(5)
        assert ns.sum(head) == 15
        ns.destroy(head)

    def test_struct_types_from_namespace_sugar(self):
        lib = {"Vec": struct("struct SVec { x : float }")}
        f = terra("""
        terra f() : float
          var v : lib.Vec
          v.x = 2.5f
          return v.x
        end
        """, env={"lib": lib})
        assert f() == 2.5
