"""Type system tests: reflection, layout, memoization, conversions."""

import ctypes

import pytest
from hypothesis import given, strategies as st

from repro.core import types as T
from repro.errors import TypeCheckError

PRIMITIVES = [T.int8, T.int16, T.int32, T.int64, T.uint8, T.uint16,
              T.uint32, T.uint64, T.float32, T.float64, T.bool_]

prims = st.sampled_from(PRIMITIVES)


class TestReflectionAPI:
    def test_primitive_queries(self):
        assert T.int32.isintegral() and T.int32.isarithmetic()
        assert T.float64.isfloat() and not T.float64.isintegral()
        assert T.bool_.islogical() and not T.bool_.isarithmetic()
        assert T.int32.isprimitive()

    def test_pointer_queries(self):
        p = T.pointer(T.float32)
        assert p.ispointer() and not p.isarithmetic()
        assert p.type is T.float32  # Terra reflection spelling

    def test_array_queries(self):
        a = T.array(T.int32, 7)
        assert a.isarray() and a.isaggregate()
        assert a.N == 7 and a.type is T.int32

    def test_vector_queries(self):
        v = T.vector(T.float32, 4)
        assert v.isvector() and v.isfloat()
        assert v.N == 4

    def test_struct_queries(self):
        s = T.struct("S", [("x", T.int32)])
        assert s.isstruct() and s.isaggregate()
        assert s.entry_type("x") is T.int32
        assert s.entry_type("nope") is None
        assert s.has_entry("x")

    def test_function_type(self):
        f = T.functype([T.int32], T.float64)
        assert f.isfunction()
        assert f.returntype is T.float64

    def test_unit(self):
        assert T.unit.isunit()
        assert T.functype([], T.unit).returntype.isunit()


class TestMemoization:
    def test_pointer_identity(self):
        assert T.pointer(T.int32) is T.pointer(T.int32)

    def test_array_identity(self):
        assert T.array(T.int8, 3) is T.array(T.int8, 3)
        assert T.array(T.int8, 3) is not T.array(T.int8, 4)

    def test_vector_identity(self):
        assert T.vector(T.float32, 4) is T.vector(T.float32, 4)

    def test_function_identity(self):
        assert T.functype([T.int32], T.int32) is T.functype([T.int32], T.int32)

    def test_structs_nominal(self):
        a = T.struct("Same", [("x", T.int32)])
        b = T.struct("Same", [("x", T.int32)])
        assert a is not b

    def test_tuple_identity(self):
        assert T.tuple_of([T.int32, T.bool_]) is T.tuple_of([T.int32, T.bool_])


class TestLayout:
    def test_primitive_sizes(self):
        assert [p.sizeof() for p in PRIMITIVES] == \
            [1, 2, 4, 8, 1, 2, 4, 8, 4, 8, 1]

    def test_pointer_size(self):
        assert T.pointer(T.int8).sizeof() == 8
        assert T.pointer(T.int8).alignof() == 8

    def test_struct_padding(self):
        s = T.struct("P", [("a", T.int8), ("b", T.int64)])
        assert s.offsetof("a") == 0
        assert s.offsetof("b") == 8
        assert s.sizeof() == 16

    def test_struct_tail_padding(self):
        s = T.struct("Q", [("a", T.int64), ("b", T.int8)])
        assert s.sizeof() == 16  # padded to alignment

    def test_array_layout(self):
        a = T.array(T.int32, 5)
        assert a.sizeof() == 20 and a.alignof() == 4

    def test_vector_size_pow2(self):
        assert T.vector(T.float32, 4).sizeof() == 16
        assert T.vector(T.float32, 3).sizeof() == 16  # padded up

    def test_vector_alignment_is_element(self):
        # under-aligned vectors support unaligned stencil loads (movups)
        assert T.vector(T.float32, 8).alignof() == 4

    def test_empty_struct(self):
        assert T.struct("E").sizeof() == 0

    @given(st.lists(prims, min_size=1, max_size=8))
    def test_struct_layout_matches_ctypes(self, field_types):
        """Property: our struct layout equals the platform C ABI layout."""
        s = T.StructType()
        cfields = []
        mapping = {1: {True: ctypes.c_int8, False: ctypes.c_uint8},
                   2: {True: ctypes.c_int16, False: ctypes.c_uint16},
                   4: {True: ctypes.c_int32, False: ctypes.c_uint32},
                   8: {True: ctypes.c_int64, False: ctypes.c_uint64}}
        for i, ft in enumerate(field_types):
            s.add_entry(f"f{i}", ft)
            if ft.isfloat():
                ct = ctypes.c_float if ft is T.float32 else ctypes.c_double
            elif ft.islogical():
                ct = ctypes.c_uint8
            else:
                ct = mapping[ft.bytes][ft.signed]
            cfields.append((f"f{i}", ct))
        cstruct = type("X", (ctypes.Structure,), {"_fields_": cfields})
        assert s.sizeof() == ctypes.sizeof(cstruct)
        for i in range(len(field_types)):
            assert s.offsetof(f"f{i}") == getattr(cstruct, f"f{i}").offset

    @given(prims, st.integers(min_value=0, max_value=64))
    def test_array_size_scales(self, elem, n):
        a = T.array(elem, n)
        assert a.sizeof() == elem.sizeof() * n
        assert a.alignof() == elem.alignof()

    @given(st.lists(prims, min_size=1, max_size=6))
    def test_offsets_aligned_and_monotone(self, field_types):
        s = T.StructType()
        for i, ft in enumerate(field_types):
            s.add_entry(f"f{i}", ft)
        prev_end = 0
        for i, ft in enumerate(field_types):
            off = s.offsetof(f"f{i}")
            assert off % ft.alignof() == 0
            assert off >= prev_end
            prev_end = off + ft.sizeof()
        assert s.sizeof() >= prev_end
        assert s.sizeof() % s.alignof() == 0


class TestFinalization:
    def test_finalize_hook_runs_once(self):
        calls = []
        s = T.struct("F")
        s.metamethods["__finalizelayout"] = lambda ty: calls.append(ty)
        s.complete()
        s.complete()
        assert calls == [s]

    def test_hook_may_add_entries(self):
        s = T.struct("G")
        s.metamethods["__finalizelayout"] = \
            lambda ty: ty.add_entry("added", T.int32)
        assert s.entry_type("added") is T.int32
        assert s.sizeof() == 4

    def test_no_entries_after_finalize(self):
        s = T.struct("H", [("x", T.int32)])
        s.layout()
        with pytest.raises(TypeCheckError):
            s.add_entry("y", T.int32)


class TestCommonPrimitive:
    def test_same(self):
        assert T.common_primitive(T.int32, T.int32) is T.int32

    def test_int_promotion(self):
        assert T.common_primitive(T.int8, T.int32) is T.int32
        assert T.common_primitive(T.int32, T.int64) is T.int64

    def test_signed_unsigned_same_size(self):
        assert T.common_primitive(T.int32, T.uint32) is T.uint32

    def test_float_wins(self):
        assert T.common_primitive(T.int64, T.float32) is T.float32
        assert T.common_primitive(T.float32, T.float64) is T.float64

    def test_bool_rejected(self):
        with pytest.raises(TypeCheckError):
            T.common_primitive(T.bool_, T.int32)

    @given(prims.filter(lambda p: p.isarithmetic()),
           prims.filter(lambda p: p.isarithmetic()))
    def test_commutative(self, a, b):
        assert T.common_primitive(a, b) is T.common_primitive(b, a)


class TestCoercion:
    def test_python_builtins(self):
        assert T.coerce_to_type(int) is T.int32
        assert T.coerce_to_type(float) is T.float32
        assert T.coerce_to_type(bool) is T.bool_
        assert T.coerce_to_type(str) is T.rawstring

    def test_passthrough(self):
        assert T.coerce_to_type(T.float64) is T.float64

    def test_non_types(self):
        assert T.coerce_to_type(42) is None
        assert T.coerce_to_type("int") is None


class TestConstructorValidation:
    def test_pointer_requires_type(self):
        with pytest.raises(TypeCheckError):
            T.pointer(42)

    def test_vector_requires_primitive(self):
        with pytest.raises(TypeCheckError):
            T.vector(T.struct("S"), 4)

    def test_negative_array(self):
        with pytest.raises(TypeCheckError):
            T.array(T.int32, -1)

    def test_integer_ranges(self):
        assert T.int8.min_value() == -128 and T.int8.max_value() == 127
        assert T.uint8.min_value() == 0 and T.uint8.max_value() == 255
        assert T.int32.max_value() == 2**31 - 1
        assert T.uint64.max_value() == 2**64 - 1
