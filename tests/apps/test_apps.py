"""Application-level correctness tests (the benchmark subjects)."""

import numpy as np
import pytest

from repro.apps.areafilter import CAreaFilter, build_area_filter, \
    reference_numpy as area_ref
from repro.apps.dispatch import build_c_dispatch, build_terra_dispatch
from repro.apps.fluid import (FluidParams, initial_conditions, make_c_fluid,
                              make_orion_fluid)
from repro.apps.mesh import (build_mesh_kernels, normals_reference,
                             random_mesh)
from repro.apps.pointwise import build_pipeline, reference_numpy as pw_ref


class TestFluid:
    N = 48

    def test_orion_matches_c_all_schedules(self):
        params = FluidParams(self.N)
        u, v, d = initial_conditions(self.N)
        ref = make_c_fluid(params)
        ref.set_state(u, v, d)
        for _ in range(2):
            ref.step()
        ru, rv, rd = ref.get_state()
        for vec, lb in [(0, False), (4, False), (0, True), (4, True)]:
            sim = make_orion_fluid(params, vectorize=vec, linebuffer=lb)
            sim.set_state(u, v, d)
            for _ in range(2):
                sim.step()
            ou, ov, od = sim.get_state()
            assert np.allclose(ou, ru, atol=1e-4), (vec, lb)
            assert np.allclose(ov, rv, atol=1e-4), (vec, lb)
            assert np.allclose(od, rd, atol=1e-4), (vec, lb)

    def test_density_is_conserved_roughly(self):
        params = FluidParams(self.N, diff=0.0)
        u, v, d = initial_conditions(self.N)
        sim = make_orion_fluid(params)
        sim.set_state(u, v, d)
        before = d.sum()
        for _ in range(3):
            sim.step()
        after = sim.get_state()[2].sum()
        assert after <= before * 1.01  # advection+zero boundary only lose mass

    def test_state_roundtrip(self):
        params = FluidParams(self.N)
        u, v, d = initial_conditions(self.N)
        sim = make_orion_fluid(params)
        sim.set_state(u, v, d)
        ou, ov, od = sim.get_state()
        assert np.array_equal(ou, u) and np.array_equal(od, d)


class TestAreaFilter:
    N = 64

    def test_c_matches_numpy(self):
        img = np.random.RandomState(0).rand(self.N, self.N).astype(np.float32)
        assert np.allclose(CAreaFilter(self.N).run(img), area_ref(img),
                           atol=1e-5)

    @pytest.mark.parametrize("vec,lb", [(0, False), (4, False), (8, True)])
    def test_orion_matches_numpy(self, vec, lb):
        img = np.random.RandomState(1).rand(self.N, self.N).astype(np.float32)
        af = build_area_filter(self.N, vectorize=vec, linebuffer=lb)
        assert np.allclose(af.run(img), area_ref(img), atol=1e-5)

    def test_constant_image_fixed_point(self):
        # interior of a constant image stays constant under a box filter
        img = np.full((self.N, self.N), 0.5, dtype=np.float32)
        out = build_area_filter(self.N).run(img)
        assert np.allclose(out[4:-4, 4:-4], 0.5, atol=1e-6)


class TestPointwise:
    N = 32

    @pytest.mark.parametrize("policy", ["materialize", "inline", "linebuffer"])
    def test_matches_numpy(self, policy):
        img = np.random.RandomState(2).rand(self.N, self.N).astype(np.float32)
        pipe = build_pipeline(self.N, policy=policy)
        assert np.allclose(pipe.run(img), pw_ref(img), atol=1e-6)

    def test_range_is_valid(self):
        img = np.random.RandomState(3).rand(self.N, self.N).astype(np.float32) * 3
        out = build_pipeline(self.N, policy="inline").run(img)
        assert out.min() >= 0.0 and out.max() <= 1.0


class TestMesh:
    def test_normals_both_layouts(self):
        nv, nt = 2000, 4000
        pos, tris = random_mesh(nv, nt, seed=9)
        ref = normals_reference(pos, tris)
        for layout in ("AoS", "SoA"):
            k = build_mesh_kernels(layout)
            t = k.alloc(nv)
            k.fill(t, np.ascontiguousarray(pos.reshape(-1)), nv)
            k.calc_normals(t, np.ascontiguousarray(tris.reshape(-1)), nt)
            outp = np.zeros(nv * 3, np.float32)
            outn = np.zeros(nv * 3, np.float32)
            k.readback(t, outp, outn, nv)
            assert np.allclose(outn.reshape(-1, 3), ref, atol=1e-3), layout
            k.release(t)

    def test_translate_both_layouts(self):
        nv = 500
        pos, _ = random_mesh(nv, 1, seed=4)
        for layout in ("AoS", "SoA"):
            k = build_mesh_kernels(layout)
            t = k.alloc(nv)
            k.fill(t, np.ascontiguousarray(pos.reshape(-1)), nv)
            k.translate(t, 1.0, 2.0, 3.0, nv)
            k.translate(t, -1.0, -2.0, -3.0, nv)
            outp = np.zeros(nv * 3, np.float32)
            outn = np.zeros(nv * 3, np.float32)
            k.readback(t, outp, outn, nv)
            assert np.allclose(outp.reshape(-1, 3), pos, atol=1e-5)
            k.release(t)


class TestDispatch:
    def test_terra_and_c_agree(self):
        tk = build_terra_dispatch()
        ck = build_c_dispatch()
        obj = tk.make(1.0001, 0.5)
        cobj = ck.c_make(1.0001, 0.5)
        for iters in (0, 1, 100, 12345):
            assert tk.loop_virtual(obj, iters) == \
                pytest.approx(ck.c_loop_virtual(cobj, iters), abs=1e-4)
        tk.free(obj)
        ck.c_release(cobj)

    def test_virtual_equals_direct_result(self):
        tk = build_terra_dispatch()
        obj = tk.make(1.5, 0.25)
        assert tk.loop_virtual(obj, 1000) == tk.loop_direct(obj, 1000)
        tk.free(obj)
