"""Decorated kernels under the tiered execution policy.

The acceptance criteria require ``@terra`` kernels to run under
``tiered`` as well — nothing frontend-specific may leak into the exec
layer, so tier-0 interpretation, the synchronous tier-up and
respecialization must all behave exactly as they do for string-defined
functions.
"""

import numpy as np

from repro import int32, ptr, terra
from repro.exec import TieredPolicy, policy_override


def test_decorated_kernel_tiers_up():
    @terra
    def triple(x: int32) -> int32:
        return x * 3

    with policy_override(TieredPolicy(threshold=3, sync=True)):
        results = [triple(i) for i in range(8)]
    assert results == [i * 3 for i in range(8)]
    assert triple.dispatcher.tier_info()["tier"] == 1  # crossed the threshold


def test_tier_transition_is_bit_identical():
    @terra
    def mix(p: ptr(int32), n: int32) -> int32:
        acc = 0
        for i in range(n):
            acc = acc + p[i] * (i + 1)
        return acc

    buf = (np.arange(19, dtype=np.int32) - 7) * 5
    with policy_override("interp"):
        expected = mix(buf, 19)
    with policy_override(TieredPolicy(threshold=2, sync=True)):
        got = [mix(buf, 19) for _ in range(6)]  # spans tier 0 -> tier 1
    assert got == [expected] * 6


def test_respecialization_applies_to_decorated_kernels():
    @terra
    def powlike(x: int32, k: int32) -> int32:
        acc = 1
        for _i in range(k):
            acc = acc * x
        return acc

    policy = TieredPolicy(threshold=2, sync=True)
    with policy_override(policy):
        # a stable constant argument makes k a respecialization candidate
        results = [powlike(2, 10) for _ in range(12)]
    assert results == [1024] * 12
