"""Error reporting from both frontends: original source locations and
the caret rendering (the PR's small-fix satellite).

The contract (docs/FRONTENDS.md): every error must carry a
SourceLocation pointing into the *user's* source — the Terra string for
the string frontend, the Python file for the decorator — and
``TerraError`` renders a two-line ``source / ^`` caret block whenever
the location knows its line text.
"""

import pytest

from repro import int32, terra
from repro.errors import (SpecializeError, TerraSyntaxError, TypeCheckError)


# -- string frontend -----------------------------------------------------------

def test_string_syntax_error_has_caret():
    src = """
terra f(x : int) : int
  return x +
end
"""
    with pytest.raises(TerraSyntaxError) as err:
        terra(src, env={})
    message = str(err.value)
    assert "<terra>:" in message
    assert "\n" in message and "^" in message
    # the caret block quotes the line the lexer stopped on (the dangling
    # `+` makes `end` the unexpected token) and points into it
    lines = message.splitlines()
    assert any(line.strip() == "^" for line in lines)
    assert any(line.strip() == "end" for line in lines)


def test_string_error_line_numbers_are_real():
    with pytest.raises(TerraSyntaxError) as err:
        terra("terra f( : int) : int return 0 end", env={})
    assert err.value.location is not None
    assert err.value.location.line == 1


# -- decorator frontend --------------------------------------------------------

def test_decorator_unsupported_statement_points_at_python_line():
    with pytest.raises(TerraSyntaxError) as err:
        @terra
        def bad(x: int32) -> int32:
            while x > 0:
                x = x - 1
            else:               # for/while else: not Terra
                x = 99
            return x

    loc = err.value.location
    assert loc is not None
    assert loc.filename.endswith("test_errors.py")
    message = str(err.value)
    assert "while/else" in message
    assert "^" in message and "while x > 0" in message


def test_decorator_missing_annotation():
    with pytest.raises(TerraSyntaxError, match="needs a Terra type"):
        @terra
        def bad(x) -> int32:
            return x


def test_decorator_chained_comparison_rejected_with_caret():
    with pytest.raises(TerraSyntaxError) as err:
        @terra
        def bad(x: int32) -> int32:
            if 0 < x < 10:
                return 1
            return 0

    assert "chained comparisons" in str(err.value)
    assert "0 < x < 10" in str(err.value)


def test_decorator_continue_rejected():
    with pytest.raises(TerraSyntaxError, match="continue"):
        @terra
        def bad(n: int32) -> int32:
            acc = 0
            for i in range(n):
                if i == 3:
                    continue
                acc = acc + i
            return acc


def test_decorator_non_range_loop_rejected():
    with pytest.raises(TerraSyntaxError, match="range"):
        @terra
        def bad(n: int32) -> int32:
            acc = 0
            for i in [1, 2, 3]:
                acc = acc + i
            return acc


def test_decorator_specialize_error_keeps_python_location():
    with pytest.raises(SpecializeError) as err:
        @terra
        def bad(x: int32) -> int32:
            return x + not_defined_anywhere  # noqa: F821

    loc = err.value.location
    assert loc is not None
    assert loc.filename.endswith("test_errors.py")
    assert "not_defined_anywhere" in str(err.value)


def test_decorator_type_errors_carry_caret():
    @terra
    def bad(p: int32) -> int32:
        return p[0]

    with pytest.raises(TypeCheckError) as err:
        bad(1)
    message = str(err.value)
    assert "test_errors.py" in message
    assert "return p[0]" in message and "^" in message


def test_locations_compare_ignoring_line_text():
    from repro.errors import SourceLocation
    a = SourceLocation("f.t", 3, 7)
    b = SourceLocation("f.t", 3, 7, "var x = 1")
    assert a == b
    assert hash(a) == hash(b)
    assert b.caret_block() == "  var x = 1\n        ^"
