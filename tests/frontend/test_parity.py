"""Frontend parity: the string and decorator frontends must be
indistinguishable downstream of ``TerraFunction.define``.

Two assertions per corpus kernel (see :mod:`tests.frontend.kernels`):

* **IR parity** — both frontends typecheck to the *same* typed IR at
  every pipeline level, compared as prettyprinted text after symbol-id
  normalization (symbols are globally unique, so raw names differ by a
  counter; nothing else may).
* **Result parity** — both produce bit-identical results on the interp
  and C backends at pipeline levels 0–3 (fresh functions per
  configuration: passes mutate typed trees in place).
"""

import re

import pytest

from repro.passes import pipeline_override

from .kernels import PAIRS

IDS = [name for name, _ in PAIRS]

LEVELS = [0, 1, 2, 3]
BACKENDS = ["interp", "c"]


def normalize_ir(text: str) -> str:
    """Rewrite globally-unique symbol ids to first-appearance ordinals
    so IR from two independently specialized functions can be compared
    textually (`acc_17` and `acc_42` both become `acc$0`)."""
    mapping = {}

    def repl(match):
        token = match.group(0)
        if token not in mapping:
            mapping[token] = f"{match.group(1)}${len(mapping)}"
        return mapping[token]

    return re.sub(r"\b([A-Za-z_]\w*?)_(\d+)\b", repl, text)


@pytest.mark.parametrize("name,factory", PAIRS, ids=IDS)
def test_identical_typed_ir_at_every_level(name, factory):
    string_fn, py_fn, _run = factory()
    assert string_fn.frontend == "string"
    assert py_fn.frontend == "pyast"
    for level in LEVELS:
        s_ir = normalize_ir(string_fn.get_optimized_ir(level))
        p_ir = normalize_ir(py_fn.get_optimized_ir(level))
        assert s_ir == p_ir, (
            f"{name}: typed IR diverges between frontends at pipeline "
            f"level {level}")


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("name,factory", PAIRS, ids=IDS)
def test_bit_identical_results(name, factory, level, backend):
    string_fn, py_fn, run = factory()
    with pipeline_override(level):
        s_handle = string_fn.compile(backend)
        p_handle = py_fn.compile(backend)
    assert run(s_handle) == run(p_handle), (
        f"{name}: results diverge between frontends on {backend} at "
        f"level {level}")


@pytest.mark.parametrize("name,factory", PAIRS, ids=IDS)
def test_byte_identical_c_source(name, factory):
    """The C emitter names locals by ordinal, so frontend parity goes
    all the way down: both twins emit the *same bytes* of C — a
    decorated kernel is a buildd artifact-cache hit whenever its string
    twin (or a previous run) compiled first."""
    string_fn, py_fn, _run = factory()
    assert string_fn.get_c_source() == py_fn.get_c_source()


def test_corpus_is_large_enough():
    # the acceptance floor: >= 12 paired kernels, including the named shapes
    assert len(PAIRS) >= 12
    names = set(IDS)
    assert "blur3" in names           # stencil
    assert {"sum_sq", "dot"} <= names  # reductions
    assert "shift_alias" in names     # pointer aliasing
    assert "unrolled" in names        # quote splicing
