"""The paired string/decorator kernel corpus for frontend parity.

Each entry is a *factory*: calling it builds a fresh ``(string_fn,
py_fn, run)`` triple — fresh because the pass pipeline mutates typed
trees in place, so every (level, backend) configuration needs its own
functions.  ``run(fn)`` executes the kernel on deterministic inputs and
returns a list of ``bytes`` capturing every observable result
bit-exactly (scalar returns via struct packing, buffers via
``tobytes``), so two runs compare with plain ``==``.

The corpus deliberately covers the shapes the acceptance criteria name:
a stencil, reductions, a pointer-aliasing case and a quote-splicing
case, plus control flow, casts, bit operations and nested loops.
"""

import struct

import numpy as np

from repro import (double, fabs, fmin, int32, int64, ptr, quote_, sqrt,
                   symbol, terra)

PAIRS = []


def pair(factory):
    PAIRS.append((factory.__name__.removeprefix("make_"), factory))
    return factory


def bits(value) -> bytes:
    """A bit-exact encoding of a scalar result (floats widen exactly)."""
    if value is None:
        return b"unit"
    if isinstance(value, bool):
        return b"\x01" if value else b"\x00"
    if isinstance(value, int):
        return struct.pack("<q", value)
    if isinstance(value, float):
        return struct.pack("<d", value)
    raise TypeError(f"unexpected result {value!r}")


@pair
def make_add():
    s = terra("""
    terra add(a : int, b : int) : int
      return a + b
    end
    """, env={})

    @terra
    def add(a: int32, b: int32) -> int32:
        return a + b

    def run(fn):
        return [bits(fn(a, b)) for a, b in
                [(0, 0), (3, 4), (-7, 19), (2147483640, 1)]]
    return s, add, run


@pair
def make_saxpy():
    s = terra("""
    terra saxpy(y : &float, x : &float, a : float, n : int) : {}
      for i = 0, n do
        y[i] = a * x[i] + y[i]
      end
    end
    """, env={})

    @terra
    def saxpy(y: ptr(float), x: ptr(float), a: float, n: int32) -> None:
        for i in range(n):
            y[i] = a * x[i] + y[i]

    def run(fn):
        rng = np.random.default_rng(11)
        y = rng.standard_normal(33).astype(np.float32)
        x = rng.standard_normal(33).astype(np.float32)
        out = [bits(fn(y, x, np.float32(1.25), 33))]
        return out + [y.tobytes(), x.tobytes()]
    return s, saxpy, run


@pair
def make_blur3():
    # the acceptance stencil: 3-point blur over the interior
    s = terra("""
    terra blur3(dst : &float, src : &float, n : int) : {}
      for i = 1, n - 1 do
        dst[i] = (src[i - 1] + src[i] + src[i + 1]) / 3.0
      end
    end
    """, env={})

    @terra
    def blur3(dst: ptr(float), src: ptr(float), n: int32) -> None:
        for i in range(1, n - 1):
            dst[i] = (src[i - 1] + src[i] + src[i + 1]) / 3.0

    def run(fn):
        rng = np.random.default_rng(5)
        src = rng.standard_normal(40).astype(np.float32)
        dst = np.zeros(40, dtype=np.float32)
        fn(dst, src, 40)
        return [dst.tobytes()]
    return s, blur3, run


@pair
def make_sum_sq():
    # an integer reduction (vectorizable at level 3)
    s = terra("""
    terra sum_sq(p : &int, n : int) : int
      var acc = 0
      for i = 0, n do
        acc = acc + p[i] * p[i]
      end
      return acc
    end
    """, env={})

    @terra
    def sum_sq(p: ptr(int32), n: int32) -> int32:
        acc = 0
        for i in range(n):
            acc = acc + p[i] * p[i]
        return acc

    def run(fn):
        p = (np.arange(37, dtype=np.int32) - 11) * 3
        return [bits(fn(p, 37)), bits(fn(p, 0))]
    return s, sum_sq, run


@pair
def make_dot():
    # a float reduction
    s = terra("""
    terra dot(a : &double, b : &double, n : int) : double
      var acc = 0.0
      for i = 0, n do
        acc = acc + a[i] * b[i]
      end
      return acc
    end
    """, env={})

    @terra
    def dot(a: ptr(double), b: ptr(double), n: int32) -> double:  # noqa: F821
        acc = 0.0
        for i in range(n):
            acc = acc + a[i] * b[i]
        return acc

    def run(fn):
        rng = np.random.default_rng(7)
        a = rng.standard_normal(29)
        b = rng.standard_normal(29)
        return [bits(fn(a, b, 29))]
    return s, dot, run


@pair
def make_shift_alias():
    # the acceptance pointer-aliasing case: read q[i + 1] while writing
    # p[i]; run() calls it with p == q so the load/store ranges overlap
    s = terra("""
    terra shift(p : &int, q : &int, n : int) : {}
      for i = 0, n - 1 do
        p[i] = q[i + 1] * 2 + p[i]
      end
    end
    """, env={})

    @terra
    def shift(p: ptr(int32), q: ptr(int32), n: int32) -> None:
        for i in range(n - 1):
            p[i] = q[i + 1] * 2 + p[i]

    def run(fn):
        buf = np.arange(26, dtype=np.int32)
        fn(buf, buf, 26)          # aliased: p and q are the same buffer
        other = np.arange(26, dtype=np.int32)
        dst = np.ones(26, dtype=np.int32)
        fn(dst, other, 26)        # and the disjoint control
        return [buf.tobytes(), dst.tobytes()]
    return s, shift, run


@pair
def make_unrolled():
    # the acceptance quote-splicing case: both frontends splice the same
    # helper-built quote list; the string twin targets an explicit
    # symbol(), the decorated twin reaches `acc` through the terra-scope
    # view escapes get (§4.1) — identical IR either way
    def steps_for(a):
        return [quote_("[a] = [a] + [i]*[i]", env={"a": a, "i": i})
                for i in range(5)]

    acc_sym = symbol(int32, "acc")
    s = terra("""
    terra unrolled(x : int) : int
      var [acc_sym] : int = 0
      [steps_for(acc_sym)]
      return [acc_sym] + x
    end
    """)

    @terra
    def unrolled(x: int32) -> int32:
        acc: int32 = 0
        {steps_for(acc)}
        return acc + x

    def run(fn):
        return [bits(fn(x)) for x in (0, 100, -30)]
    return s, unrolled, run


@pair
def make_collatz():
    # while loop, branches, augmented-style updates
    s = terra("""
    terra collatz(n : int, fuel : int) : int
      var steps = 0
      while n ~= 1 and steps < fuel do
        if n % 2 == 0 then
          n = n / 2
        else
          n = 3 * n + 1
        end
        steps = steps + 1
      end
      return steps
    end
    """, env={})

    @terra
    def collatz(n: int32, fuel: int32) -> int32:
        steps = 0
        while n != 1 and steps < fuel:
            if n % 2 == 0:
                n = n / 2
            else:
                n = 3 * n + 1
            steps = steps + 1
        return steps

    def run(fn):
        return [bits(fn(n, 200)) for n in (1, 6, 27, 97)]
    return s, collatz, run


@pair
def make_clamp():
    # if/elseif/else chains returning from branches
    s = terra("""
    terra clamp(x : int, lo : int, hi : int) : int
      if x < lo then
        return lo
      elseif x > hi then
        return hi
      else
        return x
      end
    end
    """, env={})

    @terra
    def clamp(x: int32, lo: int32, hi: int32) -> int32:
        if x < lo:
            return lo
        elif x > hi:
            return hi
        else:
            return x

    def run(fn):
        return [bits(fn(x, -5, 9)) for x in (-20, -5, 0, 9, 40)]
    return s, clamp, run


@pair
def make_bitmix():
    # shifts, bitwise and/or/xor, bitwise not, unary minus
    s = terra("""
    terra bitmix(a : int, b : int) : int
      var x = (a << 3) ^ (b >> 1)
      x = (x & 1023) | (a & b)
      return not x + (-b)
    end
    """, env={})

    @terra
    def bitmix(a: int32, b: int32) -> int32:
        x = (a << 3) ^ (b >> 1)
        x = (x & 1023) | (a & b)
        return ~x + (-b)

    def run(fn):
        return [bits(fn(a, b)) for a, b in
                [(0, 0), (5, 3), (-9, 77), (1024, -1)]]
    return s, bitmix, run


@pair
def make_cast_mix():
    # explicit casts through int64/double and narrowing back
    s = terra("""
    terra cast_mix(x : int, f : double) : double
      var wide = [int64](x) * 1000000
      var d = [double](wide) + f
      return d + [double]([int](f))
    end
    """, env={})

    @terra
    def cast_mix(x: int32, f: double) -> double:  # noqa: F821
        wide = int64(x) * 1000000
        d = double(wide) + f
        return d + double(int32(f))

    def run(fn):
        return [bits(fn(x, f)) for x, f in
                [(0, 0.5), (7, -3.75), (-4000, 1e6)]]
    return s, cast_mix, run


@pair
def make_rowsum():
    # nested loops over a flattened matrix
    s = terra("""
    terra rowsum(out : &int, m : &int, rows : int, cols : int) : {}
      for r = 0, rows do
        var acc = 0
        for c = 0, cols do
          acc = acc + m[r * cols + c]
        end
        out[r] = acc
      end
    end
    """, env={})

    @terra
    def rowsum(out: ptr(int32), m: ptr(int32), rows: int32,
               cols: int32) -> None:
        for r in range(rows):
            acc = 0
            for c in range(cols):
                acc = acc + m[r * cols + c]
            out[r] = acc

    def run(fn):
        m = np.arange(6 * 9, dtype=np.int32) % 13
        out = np.zeros(6, dtype=np.int32)
        fn(out, m, 6, 9)
        return [out.tobytes()]
    return s, rowsum, run


@pair
def make_strided():
    # range() with an explicit step — Terra's `for i = a, b, c`
    s = terra("""
    terra strided(p : &int, n : int) : int
      var acc = 0
      for i = 0, n, 3 do
        acc = acc + p[i]
      end
      return acc
    end
    """, env={})

    @terra
    def strided(p: ptr(int32), n: int32) -> int32:
        acc = 0
        for i in range(0, n, 3):
            acc = acc + p[i]
        return acc

    def run(fn):
        p = np.arange(40, dtype=np.int32) * 7
        return [bits(fn(p, 40)), bits(fn(p, 1))]
    return s, strided, run


@pair
def make_norm_calls():
    # calls to intrinsics (sqrt, fabs, fmin) and to another Terra
    # function — both twins link against the same helper
    square = terra("""
    terra square(x : double) : double
      return x * x
    end
    """, env={})

    s = terra("""
    terra norm_calls(a : double, b : double) : double
      var h = sqrt(square(a) + square(b))
      return fmin(fabs(h), 1000.0)
    end
    """)

    @terra
    def norm_calls(a: double, b: double) -> double:  # noqa: F821
        h = sqrt(square(a) + square(b))
        return fmin(fabs(h), 1000.0)

    def run(fn):
        return [bits(fn(a, b)) for a, b in
                [(3.0, 4.0), (-1.5, 2.25), (900.0, 800.0)]]
    return s, norm_calls, run


@pair
def make_escaped_scale():
    # expression escapes splicing closed-over Python constants
    factor = 7
    offset = 2.5
    s = terra("""
    terra escaped_scale(x : double) : double
      return x * [factor] + [offset]
    end
    """)

    @terra
    def escaped_scale(x: double) -> double:  # noqa: F821
        return x * {factor} + {offset}

    def run(fn):
        return [bits(fn(x)) for x in (0.0, 1.0, -12.5)]
    return s, escaped_scale, run
