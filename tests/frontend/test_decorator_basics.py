"""The ``@terra`` decorator frontend: surface behavior.

Parity with the string frontend is covered by test_parity; these tests
pin down the decorator's own contract — what lowers, what resolves,
what the definition object looks like.
"""

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro import (TerraFunction, addr, declare, deref, int32, int64, ptr,
                   sqrt, terra)
from repro.errors import TerraError

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


@terra
def add(a: int32, b: int32) -> int32:
    return a + b


def test_returns_a_terra_function():
    assert isinstance(add, TerraFunction)
    assert add.name == "add"
    assert add.frontend == "pyast"
    assert add(3, 4) == 7
    assert str(add.gettype()) == "{int32,int32} -> {int32}"


def test_inferred_return_type():
    @terra
    def double_it(x: int32):
        return x * 2

    assert double_it(21) == 42
    assert str(double_it.gettype()) == "{int32} -> {int32}"


def test_none_annotation_is_unit():
    @terra
    def bump(p: ptr(int32)) -> None:
        p[0] = p[0] + 1

    buf = np.array([41], dtype=np.int32)
    assert bump(buf) is None
    assert buf[0] == 42


def test_python_builtin_annotations_name_terra_types():
    # int -> int32, float -> float32, bool -> bool (paper spellings)
    @terra
    def f(n: int, x: float, b: bool) -> float:
        if b:
            return x * n
        return x

    ty = f.gettype()
    assert str(ty) == "{int32,float,bool} -> {float}"
    assert f(3, 2.0, True) == 6.0


def test_typed_and_zero_init_locals():
    @terra
    def locals_(n: int32) -> int64:
        wide: int64 = n
        zero: int64
        return wide + zero

    assert locals_(7) == 7


def test_first_assignment_declares_per_block():
    # a first assignment inside a branch declares a *block-local*, like
    # Terra's `var`; the outer variable needs an outer declaration
    @terra
    def blocky(n: int32) -> int32:
        acc = 0
        if n > 0:
            acc = acc + n     # assigns the outer acc
            extra = acc * 2   # declares a branch-local
            acc = extra
        return acc

    assert blocky(5) == 10
    assert blocky(-5) == 0


def test_addr_and_deref():
    @terra
    def via_ptr(x: int32) -> int32:
        p = addr(x)
        return deref(p) + 1

    assert via_ptr(41) == 42


def test_addr_deref_markers_refuse_python_calls():
    with pytest.raises(TerraError, match="staging syntax"):
        addr(1)
    with pytest.raises(TerraError, match="staging syntax"):
        deref(1)


def test_calls_into_terra_functions_and_intrinsics():
    @terra
    def hyp(a: float, b: float) -> float:
        return sqrt(add_f(a * a, b * b))

    assert hyp(3.0, 4.0) == 5.0


add_f = terra("""
terra add_f(a : float, b : float) : float
  return a + b
end
""", env={})


def test_forward_declaration_fill_in():
    is_odd = declare("is_odd")

    @terra
    def is_even(n: int32) -> int32:
        if n == 0:
            return 1
        return is_odd(n - 1)

    @terra
    def is_odd(n: int32) -> int32:  # noqa: F811 - fills the declaration
        if n == 0:
            return 0
        return is_even(n - 1)

    assert is_even(10) == 1
    assert is_odd(10) == 0


def test_closure_cells_resolve():
    def make_scaler(k):
        @terra
        def scale(x: int32) -> int32:
            return x * k
        return scale

    assert make_scaler(3)(10) == 30
    assert make_scaler(-2)(10) == -20


def test_multi_value_return():
    @terra
    def divmod_(a: int32, b: int32):
        return a / b, a % b

    assert divmod_(17, 5) == (3, 2)


def test_tuple_first_assignment_declares_both():
    @terra
    def sumdiff(a: int32, b: int32):
        s, d = a + b, a - b
        return s * d

    assert sumdiff(7, 3) == 40


def test_dispatches_through_shared_exec_layer():
    from repro.exec import policy_override

    @terra
    def sq(x: int32) -> int32:
        return x * x

    with policy_override("interp"):
        assert sq(9) == 81
    with policy_override("c"):
        assert sq(9) == 81


def test_frontend_debug_knob_dumps_lowered_form(tmp_path):
    # must run from a real file: the decorator reads the defining source
    # via inspect, so `python -c` scripts cannot use @terra
    script = tmp_path / "dbg_kernel.py"
    script.write_text(textwrap.dedent("""
        from repro import terra, int32

        @terra
        def dbg(x: int32) -> int32:
            return x + 1

        print(dbg(1))
    """))
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_TERRA_FRONTEND_DEBUG"] = "1"
    proc = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=120, env=env)
    assert proc.returncode == 0, proc.stderr
    assert "@terra lowered dbg" in proc.stderr
    assert "terra dbg" in proc.stderr  # the specialized prettyprint
