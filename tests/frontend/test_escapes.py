"""``{...}`` escapes in the decorator frontend: the §4.1 staging hooks
mapped onto Python's set-literal syntax, sharing core/quotes.py with the
string frontend's ``[...]``.
"""

import numpy as np
import pytest

from repro import expr, int32, ptr, quote_, symbol, terra
from repro.errors import SpecializeError, TerraSyntaxError


def test_expression_escape_splices_python_constants():
    scale = 6

    @terra
    def f(x: int32) -> int32:
        return x * {scale + 1}

    assert f(3) == 21
    # eager specialization: later rebinding cannot change the function
    scale = 100
    assert f(3) == 21


def test_escape_sees_terra_scope_as_quotes():
    # inside an escape, an in-scope Terra variable appears as a Quote of
    # its symbol (the SVAR rule); Quote operators stage new IR
    @terra
    def f(x: int32) -> int32:
        return {expr("7", env={}) } + x

    assert f(1) == 8


def test_statement_escape_splices_quote_lists():
    def repeat(q, n):
        return [q] * n

    step = quote_("[s] = [s] * 2", env={"s": (s := symbol(int32, "s"))})

    @terra
    def shifted(x: int32) -> int32:
        {quote_("var [s] = [x0]", env={"s": s, "x0": expr("1", env={})})}
        {repeat(step, 4)}
        return x + {s}

    assert shifted(100) == 116


def test_escape_resolves_decoration_site_bindings():
    offsets = {"left": -1, "right": 1}

    @terra
    def pick(p: ptr(int32), i: int32) -> int32:
        return p[i + {offsets["right"]}]

    buf = np.array([10, 20, 30], dtype=np.int32)
    assert pick(buf, 0) == 20


def test_quote_helper_idiom_for_terra_locals():
    # comprehensions inside an escape cannot see eval() locals (a Python
    # scoping rule, identical for the string frontend) — the documented
    # idiom is a helper function receiving the Terra variable
    def accumulate(target, values):
        return [quote_("[t] = [t] + [v]", env={"t": target, "v": v})
                for v in values]

    @terra
    def summed(x: int32) -> int32:
        acc: int32 = 0
        {accumulate(acc, [1, 2, 3, 4])}
        return acc + x

    assert summed(0) == 10


def test_malformed_escape_reports_python_location():
    with pytest.raises(SpecializeError) as err:
        @terra
        def bad(x: int32) -> int32:
            return {undefined_helper()}  # noqa: F821

    assert err.value.location is not None
    assert err.value.location.filename.endswith("test_escapes.py")


def test_multi_element_set_is_rejected():
    with pytest.raises(TerraSyntaxError, match="one-element set"):
        @terra
        def bad(x: int32) -> int32:
            return {1, 2}


def test_escape_value_must_be_a_terra_term():
    with pytest.raises(SpecializeError, match="not a Terra term"):
        @terra
        def bad(x: int32) -> int32:
            return x + {object()}
