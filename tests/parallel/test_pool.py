"""WorkerPool / split_range / default_nthreads — the dispatch plumbing."""

import threading

import pytest

from repro.parallel import (default_nthreads, get_pool, in_worker,
                            shutdown_pool, split_range, WorkerPool)


class TestSplitRange:
    def test_covers_range_exactly_once(self):
        for lo, hi, n in [(0, 100, 4), (0, 7, 3), (-5, 11, 2), (3, 4, 8)]:
            chunks = split_range(lo, hi, n)
            assert chunks[0][0] == lo and chunks[-1][1] == hi
            for (a0, a1), (b0, b1) in zip(chunks, chunks[1:]):
                assert a1 == b0  # contiguous, disjoint
            assert sum(c1 - c0 for c0, c1 in chunks) == hi - lo

    def test_empty_and_single(self):
        assert split_range(5, 5, 4) == []
        assert split_range(5, 3, 4) == []
        assert split_range(0, 10, 1) == [(0, 10)]

    def test_never_more_than_nparts(self):
        assert len(split_range(0, 3, 16)) <= 3

    def test_alignment(self):
        chunks = split_range(0, 100, 3, align=16)
        # every interior cut is a multiple of 16 above lo
        for c0, c1 in chunks[:-1]:
            assert c1 % 16 == 0
        assert chunks[-1][1] == 100
        # alignment coarser than the range degenerates to one chunk
        assert split_range(0, 10, 4, align=64) == [(0, 10)]

    def test_alignment_relative_to_lo(self):
        chunks = split_range(5, 105, 2, align=10)
        assert (chunks[0][1] - 5) % 10 == 0


class TestDefaultNthreads:
    def test_env_overrides_request(self, monkeypatch):
        monkeypatch.setenv("REPRO_TERRA_THREADS", "3")
        assert default_nthreads(8) == 3
        assert default_nthreads(0) == 3

    def test_env_one_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TERRA_THREADS", "1")
        assert default_nthreads(16) == 1

    def test_request_wins_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TERRA_THREADS", raising=False)
        assert default_nthreads(5) == 5

    def test_garbage_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_TERRA_THREADS", "lots")
        assert default_nthreads(2) == 2


class TestWorkerPool:
    def test_runs_every_thunk(self):
        pool = WorkerPool(3)
        try:
            hits = []
            lock = threading.Lock()

            def mk(i):
                def t():
                    with lock:
                        hits.append(i)
                return t

            errors = pool.run([mk(i) for i in range(20)])
            assert sorted(hits) == list(range(20))
            assert errors == [None] * 20
        finally:
            pool.shutdown()

    def test_errors_fill_their_slot_and_pool_survives(self):
        pool = WorkerPool(2)
        try:
            def boom():
                raise ValueError("boom")

            errors = pool.run([boom, lambda: None, boom])
            assert isinstance(errors[0], ValueError)
            assert errors[1] is None
            assert isinstance(errors[2], ValueError)
            # the same pool keeps working after failures
            assert pool.run([lambda: None]) == [None]
        finally:
            pool.shutdown()

    def test_workers_report_in_worker(self):
        pool = WorkerPool(1)
        try:
            seen = []
            pool.run([lambda: seen.append(in_worker())])
            assert seen == [True]
            assert not in_worker()
        finally:
            pool.shutdown()

    def test_shutdown_is_idempotent(self):
        pool = WorkerPool(2)
        pool.shutdown()
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.run([lambda: None])

    def test_worker_thread_names(self):
        pool = WorkerPool(2, name_prefix="repro-parallel")
        try:
            names = []
            lock = threading.Lock()

            def record():
                with lock:
                    names.append(threading.current_thread().name)

            pool.run([record] * 8)
            assert all(n.startswith("repro-parallel-") for n in names)
        finally:
            pool.shutdown()


class TestSharedPool:
    def test_grows_never_shrinks(self):
        shutdown_pool()
        try:
            p2 = get_pool(2)
            assert p2.nthreads == 2
            p4 = get_pool(4)
            assert p4.nthreads == 4
            assert get_pool(2) is p4  # smaller requests reuse it
        finally:
            shutdown_pool()
