"""Parallel dispatch through the library surface: blockedloop row
strips, DataTable row maps, and the packed GEMM panel driver."""

import numpy as np
import pytest

from repro import float_, includec, quote_, symbol, terra
from repro.lib.blockedloop import blockedloop, parallel_blockedloop
from repro.lib.datatable import DataTable, map_rows, parallel_map_rows


class TestParallelBlockedloop:
    def test_bit_identical_to_serial(self):
        N = 48
        out = symbol(None, "out")
        body = lambda i, j: quote_(  # noqa: E731
            "[out][[i] * [N] + [j]] = [float]([i] * 1000 + [j])",
            env=dict(out=out, N=N, i=i, j=j))
        loop = blockedloop(N, [16, 4, 1], body)
        fn = terra("""
        terra f([out] : &float) : {}
          [loop]
        end
        """).mark_chunked()
        serial = np.zeros(N * N, dtype=np.float32)
        par = np.zeros(N * N, dtype=np.float32)
        fn(serial)
        parallel_blockedloop(fn, N, par, blocksizes=[16, 4, 1], nthreads=3)
        assert serial.tobytes() == par.tobytes()


def _make_table(Table, n):
    std = includec("stdlib.h")
    mk = terra("""
    terra mk(n : int64) : &Tbl
      var t = [&Tbl](std.malloc(sizeof(Tbl)))
      t:init(n)
      for i = 0, n do
        var r = t:row(i)
        r:setx([float](i))
        r:sety(0.0f)
      end
      return t
    end
    """, env={"Tbl": Table, "std": std})
    return mk.compile("c")(n)


class TestDataTableMapRows:
    @pytest.mark.parametrize("layout", ["AoS", "SoA", "AoSoA"])
    def test_parallel_row_map(self, layout):
        Table = DataTable({"x": float_, "y": float_}, layout)
        get = terra("""
        terra get(t : &Tbl, i : int64) : float
          var r = t:row(i)
          return r:y()
        end
        """, env={"Tbl": Table})
        kernel = map_rows(Table, lambda row: quote_(
            "[row]:sety([row]:x() * 2.0f + 1.0f)", env={"row": row}))
        n = 500
        t = _make_table(Table, n)
        parallel_map_rows(kernel, t, n, nthreads=3,
                          grain=8 if layout == "AoSoA" else 1)
        g = get.compile("c")
        for i in (0, 1, 250, n - 1):
            assert g(t, i) == 2.0 * i + 1.0

    def test_serial_call_also_works(self):
        Table = DataTable({"x": float_, "y": float_}, "SoA")
        kernel = map_rows(Table, lambda row: quote_(
            "[row]:sety([row]:x())", env={"row": row}))
        n = 16
        t = _make_table(Table, n)
        kernel(t, n)  # plain entry, no dispatch


class TestParallelGemm:
    def test_panels_bit_identical_to_serial_packed(self):
        from repro.autotune.matmul import (make_gemm_packed,
                                           make_gemm_packed_parallel)
        for n in (64, 70):  # multiple of NB, and with edge tails
            rng = np.random.RandomState(3)
            A = rng.rand(n, n)
            B = rng.rand(n, n)
            Cs = np.zeros((n, n))
            Cp = np.zeros((n, n))
            make_gemm_packed(32, 4, 2, 2)(Cs, A, B, n)
            gemm = make_gemm_packed_parallel(32, 4, 2, 2, nthreads=3)
            gemm(Cp, A, B, n)
            assert Cs.tobytes() == Cp.tobytes()
            assert np.allclose(Cs, A @ B)
