"""Chunked kernel entries and parallel_for — the C-backend half."""

import numpy as np
import pytest

from repro import terra
from repro.errors import CompileError, SpecializeError, TrapError
from repro.parallel import parallel_for


def make_saxpy():
    return terra("""
    terra saxpy(n : int64, a : float, x : &float, y : &float) : {}
      for i = 0, n do
        y[i] = a * x[i] + y[i]
      end
    end
    """).mark_chunked()


class TestChunkEntry:
    def test_chunks_cover_exactly_the_serial_iterates(self):
        fn = make_saxpy()
        n = 100
        x = np.arange(n, dtype=np.float32)
        ref = np.ones(n, dtype=np.float32)
        fn(n, 2.0, x, ref)  # plain entry still works

        got = np.ones(n, dtype=np.float32)
        h = fn.compile("c")
        for lo, hi in [(0, 13), (13, 60), (60, 100)]:
            h.call_chunk(lo, hi, n, 2.0, x, got)
        assert got.tobytes() == ref.tobytes()

    def test_out_of_range_chunk_is_a_noop(self):
        fn = make_saxpy()
        n = 10
        x = np.ones(n, dtype=np.float32)
        y = np.zeros(n, dtype=np.float32)
        fn.compile("c").call_chunk(50, 90, n, 1.0, x, y)
        assert not y.any()

    def test_strided_loop_misaligned_cuts(self):
        # iterates are 0, 3, 6, ...; a cut not on a stride multiple must
        # not duplicate or skip any iterate
        fn = terra("""
        terra stamp(n : int64, out : &int) : {}
          for i = 0, n, 3 do
            out[i] = out[i] + 1
          end
        end
        """).mark_chunked()
        n = 30
        ref = np.zeros(n, dtype=np.int32)
        fn(n, ref)
        got = np.zeros(n, dtype=np.int32)
        h = fn.compile("c")
        for lo, hi in [(0, 4), (4, 11), (11, 30)]:
            h.call_chunk(lo, hi, n, got)
        assert np.array_equal(got, ref)

    def test_mark_chunked_requires_final_loop(self):
        fn = terra("""
        terra noloop(x : int) : int
          return x + 1
        end
        """).mark_chunked()
        with pytest.raises(CompileError, match="final statement|loop"):
            fn.compile("c")

    def test_mark_chunked_after_compile_rejected(self):
        fn = terra("""
        terra plain(n : int64, x : &float) : {}
          for i = 0, n do x[i] = 0.0f end
        end
        """)
        fn.compile("c")
        with pytest.raises(SpecializeError, match="already"):
            fn.mark_chunked()

    def test_interp_backend_ignores_chunk_marking(self):
        fn = make_saxpy()
        n = 8
        x = np.ones(n, dtype=np.float32)
        y = np.zeros(n, dtype=np.float32)
        fn.compile("interp")(n, 3.0, x, y)
        assert np.array_equal(y, np.full(n, 3.0, dtype=np.float32))


class TestParallelFor:
    def test_bit_identical_to_serial(self):
        fn = make_saxpy()
        n = 1000
        x = np.random.RandomState(0).rand(n).astype(np.float32)
        ref = np.ones(n, dtype=np.float32)
        par = np.ones(n, dtype=np.float32)
        fn(n, 1.5, x, ref)
        parallel_for(fn, 0, n, n, 1.5, x, par, nthreads=4)
        assert par.tobytes() == ref.tobytes()

    def test_grain_aligns_cuts(self):
        # with grain=n a single chunk runs inline — still correct
        fn = make_saxpy()
        n = 64
        x = np.ones(n, dtype=np.float32)
        y = np.zeros(n, dtype=np.float32)
        parallel_for(fn, 0, n, n, 2.0, x, y, nthreads=4, grain=n)
        assert np.array_equal(y, np.full(n, 2.0, dtype=np.float32))

    def test_empty_range_is_a_noop(self):
        fn = make_saxpy()
        x = np.ones(4, dtype=np.float32)
        y = np.zeros(4, dtype=np.float32)
        parallel_for(fn, 3, 3, 4, 2.0, x, y, nthreads=4)
        assert not y.any()

    def test_python_callable_fallback(self):
        hits = []

        def kernel(lo, hi, tag):
            hits.append((lo, hi, tag))

        parallel_for(kernel, 0, 100, "t", nthreads=2)
        assert sum(hi - lo for lo, hi, _ in hits) == 100
        assert all(tag == "t" for _, _, tag in hits)

    def test_env_one_forces_serial_dispatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_TERRA_THREADS", "1")
        calls = []
        parallel_for(lambda lo, hi: calls.append((lo, hi)), 0, 50,
                     nthreads=8)
        assert calls == [(0, 50)]  # one inline chunk, no pool


class TestWorkerTraps:
    def test_trap_surfaces_once_and_pool_survives(self):
        # i == 7 divides by zero: only the chunk containing it traps
        fn = terra("""
        terra poison(n : int64, out : &int64) : {}
          for i = 0, n do
            out[i] = 1000 / (i - 7)
          end
        end
        """).mark_chunked()
        n = 64
        out = np.zeros(n, dtype=np.int64)
        with pytest.raises(TrapError, match="division"):
            parallel_for(fn, 0, n, n, out, nthreads=4)
        # chunks that did not trap completed their writes (C division
        # truncates toward zero: 1000 / -7 == -142)
        assert out[0] == -142
        # the pool is not wedged: the next dispatch works
        ok = np.zeros(n, dtype=np.float32)
        x = np.ones(n, dtype=np.float32)
        parallel_for(make_saxpy(), 0, n, n, 2.0, x, ok, nthreads=4)
        assert np.array_equal(ok, np.full(n, 2.0, dtype=np.float32))

    def test_traps_counted_in_metrics(self):
        from repro.trace.metrics import registry
        fn = terra("""
        terra alltrap(n : int64, out : &int64) : {}
          for i = 0, n do
            out[i] = 1 / (0 * i)
          end
        end
        """).mark_chunked()
        out = np.zeros(32, dtype=np.int64)
        before = registry().get("parallel.traps")
        with pytest.raises(TrapError):
            parallel_for(fn, 0, 32, 32, out, nthreads=4)
        assert registry().get("parallel.traps") > before


class TestNestedDispatch:
    def test_nested_parallel_for_runs_inline(self):
        from repro.parallel import run_tasks

        inner_calls = []

        def inner(lo, hi):
            inner_calls.append((lo, hi))

        def outer():
            parallel_for(inner, 0, 10, nthreads=4)

        errors = run_tasks([outer], nthreads=2)
        assert errors == [None]
        assert inner_calls == [(0, 10)]  # one inline chunk, no deadlock
