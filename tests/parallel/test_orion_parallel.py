"""The Orion ``parallel(axis)`` schedule directive.

Contract: a parallel schedule is *pure speedup* — for every policy mix,
vector width, and worker count, the output is bit-identical to the
serial schedule, and with an effective thread count of 1 the generated
source is the serial source, byte for byte.
"""

import re

import numpy as np
import pytest

from repro.errors import TerraError
from repro.orion import (INLINE, LINEBUFFER, MATERIALIZE, compile_pipeline,
                         image, parallel, stage)

N = 64


@pytest.fixture(scope="module")
def img():
    return np.random.RandomState(7).rand(N, N).astype(np.float32)


def blur_pipeline():
    inp = image("inp")
    bx = stage(inp(-1, 0) + inp(0, 0) + inp(1, 0), "bx")
    by = stage(bx(0, -1) + bx(0, 0) + bx(0, 1), "by")
    out = stage(inp * 2.0 - by / 9.0, "sharp")
    return bx, by, out


SCHEDULES = [
    {"bx": MATERIALIZE, "by": MATERIALIZE},
    {"bx": LINEBUFFER, "by": LINEBUFFER},
    {"bx": INLINE, "by": LINEBUFFER},
    {"bx": LINEBUFFER, "by": MATERIALIZE},
]


class TestBitIdentity:
    @pytest.mark.parametrize("vec", [0, 4])
    @pytest.mark.parametrize("sched", SCHEDULES,
                             ids=lambda s: "-".join(s.values()))
    def test_parallel_equals_serial(self, img, sched, vec):
        bx, by, out = blur_pipeline()
        ref = compile_pipeline(out, N, vectorize=vec, schedule=sched).run(img)
        bx, by, out = blur_pipeline()
        cs = compile_pipeline(out, N, vectorize=vec, schedule=sched,
                              parallel=parallel("y", 3))
        assert cs.parallel_plan is not None
        got = cs.run(img)
        assert got.tobytes() == ref.tobytes()
        # repeated calls reuse the lazily-allocated buffers correctly
        assert cs.run(img).tobytes() == ref.tobytes()

    def test_multi_output(self, img):
        def build(par):
            inp = image("inp")
            s1 = stage(inp(-1, 0) + inp(1, 0), "s1")
            s2 = stage(s1(0, -1) * 0.5 + s1(0, 1) * 0.5, "s2")
            return compile_pipeline([s1, s2], N, schedule={s1: LINEBUFFER},
                                    parallel=par)
        r1, r2 = build(None).run(img)
        p1, p2 = build(2).run(img)
        assert r1.tobytes() == p1.tobytes()
        assert r2.tobytes() == p2.tobytes()

    def test_with_runtime_params(self, img):
        from repro.orion import param

        def build(par):
            inp = image("inp")
            k = param("k")
            sm = stage(inp(0, -1) + inp(0, 1), "sm", bounded=True)
            return compile_pipeline(sm * k, N, schedule={sm: LINEBUFFER},
                                    parallel=par)
        ref = build(None).run(img, k=0.3)
        got = build(4).run(img, k=0.3)
        assert got.tobytes() == ref.tobytes()


class TestSerialPathUnchanged:
    def _build(self, par):
        bx, by, out = blur_pipeline()
        return compile_pipeline(out, N, schedule={"bx": LINEBUFFER,
                                                  "by": LINEBUFFER},
                                parallel=par)

    @staticmethod
    def _norm(src):
        # strip the per-compile function/stage-id counters
        src = re.sub(r"orionfn\d+", "orionfn", src)
        return re.sub(r"(buf_[A-Za-z0-9_]*?)_\d+", r"\1", src)

    def test_env_one_neutralizes_directive(self, monkeypatch):
        plain = self._build(None)
        monkeypatch.setenv("REPRO_TERRA_THREADS", "1")
        neutered = self._build(parallel("y"))
        assert neutered.parallel_plan is None
        assert self._norm(neutered.source) == self._norm(plain.source)

    def test_no_directive_emits_no_strip_params(self):
        plain = self._build(None)
        assert "gsel" not in plain.source
        assert "ylo" not in plain.source

    def test_env_overrides_explicit_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_TERRA_THREADS", "2")
        cs = self._build(parallel("y", 16))
        assert cs.parallel_plan["nthreads"] == 2


class TestDirectiveValidation:
    def test_only_y_axis(self):
        with pytest.raises(TerraError, match="axis"):
            parallel("x")

    def test_unsupported_shape_rejected_at_compile_time(self):
        # a linebuffered stage reading a materialized producer fused into
        # the same group cannot be strip-parallelized (warm-up recomputes
        # only linebuffered stages); it must fail loudly, not corrupt.
        # Diamond A(lb) -> M(mat) -> B(lb) -> D, D also reads A: the
        # unions A-{M,D} and B-{D} fuse everything into one group, where
        # B reads the materialized M.
        def build(par):
            inp = image("inp")
            a = stage(inp(0, -1) + inp(0, 1), "a")
            m = stage(a(0, -1) + a(0, 1), "m")
            b = stage(m(0, -1) + m(0, 1), "b")
            d = stage(a(0, 0) + b(0, 0), "d")
            return compile_pipeline(
                d, N, schedule={a: LINEBUFFER, m: MATERIALIZE,
                                b: LINEBUFFER}, parallel=par)
        with pytest.raises(TerraError, match="strip-parallel"):
            build(2)
        build(None)  # the same schedule compiles fine serially
