"""Generator invariants: determinism, validity, and argument hygiene."""

import random

from repro import terra
from repro.errors import TrapError
from repro.fuzz import generate_argsets, generate_program
from repro.fuzz.gen import SCALAR_TYPES, fuzz_env


class TestDeterminism:
    def test_same_seed_index_same_program(self):
        a = generate_program(42, 7)
        b = generate_program(42, 7)
        assert a.source == b.source
        assert a.entry == b.entry
        assert a.argsets == b.argsets

    def test_different_index_different_program(self):
        a = generate_program(42, 7)
        b = generate_program(42, 8)
        assert a.source != b.source

    def test_different_seed_different_program(self):
        a = generate_program(1, 0)
        b = generate_program(2, 0)
        assert a.source != b.source

    def test_independent_of_global_random_state(self):
        random.seed(123)
        a = generate_program(9, 3)
        random.seed(456)
        b = generate_program(9, 3)
        assert a.source == b.source


class TestValidity:
    def test_programs_compile_and_run_on_interp(self):
        """Every generated program typechecks by construction and every
        run terminates (fuel-bounded loops) — trapping is allowed."""
        for i in range(8):
            p = generate_program(7, i)
            ns = terra(p.source, env=fuzz_env())
            try:
                fn = ns[p.entry]
            except TypeError:
                fn = ns
            handle = fn.compile("interp")
            for args in p.argsets:
                try:
                    handle(*args)
                except TrapError:
                    pass    # defined runtime traps are fine

    def test_entry_is_last_function(self):
        p = generate_program(0, 4)
        assert p.entry in p.source
        assert p.source.rindex("terra ") == p.source.index(f"terra {p.entry}")

    def test_argtypes_match_argsets(self):
        for i in range(5):
            p = generate_program(3, i)
            for args in p.argsets:
                assert len(args) == len(p.argtypes)
                for a, tyname in zip(args, p.argtypes):
                    ty = SCALAR_TYPES[tyname]
                    if ty.islogical():
                        assert isinstance(a, bool)
                    elif ty.isintegral():
                        assert isinstance(a, int) and not isinstance(a, bool)
                    else:
                        assert isinstance(a, float)


class TestArgsets:
    def test_int_args_in_range(self):
        rng = random.Random(0)
        for tyname, ty in SCALAR_TYPES.items():
            if not ty.isintegral():
                continue
            bits = ty.bytes * 8
            lo = -(1 << (bits - 1)) if ty.signed else 0
            hi = (1 << (bits - 1)) - 1 if ty.signed else (1 << bits) - 1
            for (v,) in generate_argsets(rng, [tyname], count=40):
                assert lo <= v <= hi, (tyname, v)

    def test_requested_count(self):
        rng = random.Random(1)
        assert len(generate_argsets(rng, ["int32", "double"], count=6)) == 6
