"""Regression tests for the backend divergences the differential fuzzer
found — one class per fixed bug, each run on BOTH backends.

These are the "defined semantics" of the dialect (docs/LANGUAGE.md):
where C leaves behaviour undefined, this implementation picks one
meaning and both backends (and the constant folder) implement exactly
it.  Every case here diverged between the backends — or killed the host
process outright — before the fix.
"""

import math

import pytest

from repro import terra
from repro.errors import TrapError


def both(src):
    """Compile one function on both backends; returns the two handles."""
    fc = terra(src).compile("c")
    fi = terra(src).compile("interp")
    return fc, fi


def agree(src, *args):
    fc, fi = both(src)
    rc, ri = fc(*args), fi(*args)
    if isinstance(rc, float):
        # the differential contract is bitwise, not approximate
        assert (math.isnan(rc) and math.isnan(ri)) or rc.hex() == ri.hex(), \
            (rc, ri)
    else:
        assert rc == ri, (rc, ri)
    return rc


class TestDivisionTraps:
    """Bug 1: ``x % 0`` compiled by gcc raised SIGFPE and killed the whole
    host process; now both backends raise TrapError with the same message."""

    def test_mod_zero_traps_both_backends(self):
        src = "terra f(a : int, b : int) : int return a % b end"
        for handle in both(src):
            with pytest.raises(TrapError, match="integer modulo by zero"):
                handle(5, 0)

    def test_div_zero_traps_both_backends(self):
        src = "terra f(a : int, b : int) : int return a / b end"
        for handle in both(src):
            with pytest.raises(TrapError, match="integer division by zero"):
                handle(5, 0)

    def test_unsigned_div_zero_traps(self):
        src = "terra f(a : uint64, b : uint64) : uint64 return a / b end"
        for handle in both(src):
            with pytest.raises(TrapError, match="division by zero"):
                handle(7, 0)

    def test_intmin_div_minus_one_wraps(self):
        # the other SIGFPE source: INT_MIN / -1 overflows; defined to wrap
        assert agree("terra f(a : int, b : int) : int return a / b end",
                     -2**31, -1) == -2**31

    def test_intmin_mod_minus_one_is_zero(self):
        assert agree("terra f(a : int, b : int) : int return a % b end",
                     -2**31, -1) == 0

    def test_int64min_div_minus_one_wraps(self):
        assert agree(
            "terra f(a : int64, b : int64) : int64 return a / b end",
            -2**63, -1) == -2**63

    def test_normal_division_still_works(self):
        assert agree("terra f(a : int, b : int) : int return a / b end",
                     -7, 2) == -3

    def test_trap_does_not_poison_later_calls(self):
        src = "terra f(a : int, b : int) : int return a % b end"
        for handle in both(src):
            with pytest.raises(TrapError):
                handle(1, 0)
            assert handle(7, 3) == 1


class TestShiftMasking:
    """Bug 2: shift counts >= bit width were C UB (gcc: whatever the CPU
    does; interp: Python's unbounded shift).  Defined as x86/LLVM
    masking: the count is taken mod the width."""

    def test_shift_by_width_plus_one(self):
        assert agree("terra f(x : int, s : int) : int return x << s end",
                     1, 33) == 2

    def test_shift_by_width_is_identity(self):
        assert agree("terra f(x : int, s : int) : int return x << s end",
                     5, 32) == 5

    def test_negative_count_masks(self):
        # -1 & 31 == 31
        assert agree("terra f(x : int, s : int) : int return x << s end",
                     1, -1) == -2**31

    def test_right_shift_masks(self):
        assert agree("terra f(x : int, s : int) : int return x >> s end",
                     256, 40) == 1

    def test_unsigned_right_shift_is_logical(self):
        assert agree(
            "terra f(x : uint32, s : uint32) : uint32 return x >> s end",
            0x80000000, 31) == 1

    def test_int64_masks_at_64(self):
        assert agree(
            "terra f(x : int64, s : int64) : int64 return x << s end",
            1, 65) == 2

    def test_constant_shift_folds_identically(self):
        # the constant folder must agree with the runtime semantics
        assert agree("terra f() : int return 1 << 33 end") == 2


CAST_CASES = [
    ("int8", 3e9, 127), ("int8", -3e9, -128),
    ("int16", 1e6, 32767), ("int16", -1e6, -32768),
    ("int32", 3e9, 2**31 - 1), ("int32", -3e9, -2**31),
    ("int64", 1e300, 2**63 - 1), ("int64", -1e300, -2**63),
    ("uint8", 300.0, 255), ("uint8", -1.5, 0),
    ("uint16", 1e6, 65535), ("uint16", -0.5, 0),
    ("uint32", 1e10, 2**32 - 1), ("uint32", -3.0, 0),
    ("uint64", 1e300, 2**64 - 1), ("uint64", -1e10, 0),
]


class TestFloatToIntSaturation:
    """Bug 3: out-of-range float->int casts diverged three ways (gcc
    constant fold vs cvttsd2si vs the interpreter).  Defined as LLVM
    ``fptosi.sat``: truncate, clamp to range, NaN -> 0."""

    @pytest.mark.parametrize("tyname,value,expected", CAST_CASES)
    def test_saturates(self, tyname, value, expected):
        src = (f"terra f(x : double) : {tyname} "
               f"return [{tyname}](x) end")
        assert agree(src, value) == expected

    def test_nan_converts_to_zero(self):
        assert agree("terra f(x : double) : int return [int](x) end",
                     math.nan) == 0

    def test_inf_saturates(self):
        src = "terra f(x : double) : int return [int](x) end"
        assert agree(src, math.inf) == 2**31 - 1
        assert agree(src, -math.inf) == -2**31

    def test_in_range_truncates_toward_zero(self):
        src = "terra f(x : double) : int return [int](x) end"
        assert agree(src, -2.9) == -2
        assert agree(src, 2.9) == 2

    def test_exact_boundary(self):
        src = "terra f(x : double) : int return [int](x) end"
        # 2^31-1 is not exactly representable in double; 2^31 is, and is
        # out of range, so it saturates
        assert agree(src, 2147483648.0) == 2**31 - 1
        assert agree(src, -2147483648.0) == -2**31

    def test_constant_cast_folds_identically(self):
        assert agree(
            "terra f() : int return [int](3e9) end") == 2**31 - 1

    def test_float32_source_saturates_too(self):
        assert agree(
            "terra f(x : float) : int16 return [int16](x) end",
            1e30) == 32767


class TestFloat32Overflow:
    """Bug 4: a double too large for float32 made the interpreter's
    struct.pack raise OverflowError; hardware (and now the interp)
    rounds to +-inf."""

    def test_multiply_overflows_to_inf(self):
        r = agree("terra f(a : float, b : float) : float return a * b end",
                  1.1e20, 3.3e18)
        assert r == math.inf

    def test_negative_overflow_to_minus_inf(self):
        r = agree("terra f(a : float, b : float) : float return a * b end",
                  -1.1e20, 3.3e18)
        assert r == -math.inf

    def test_double_argument_narrows_to_inf(self):
        r = agree("terra f(x : float) : float return x end", 1e300)
        assert r == math.inf


class TestNarrowIntPromotion:
    """Found by the fuzzer: C's integer promotions made ``int8``
    arithmetic 32-bit wide inside expressions; Terra types are exact, so
    sub-int arithmetic wraps at its own width on both backends."""

    def test_int8_add_wraps_before_compare(self):
        src = ("terra f(x : int8, y : int8) : bool "
               "return (x + x) < y end")
        # 100+100 wraps to -56 at int8; without truncation C sees 200
        assert agree(src, 100, 1) is True

    def test_uint8_mul_wraps(self):
        assert agree(
            "terra f(x : uint8) : uint8 return x * x end", 16) == 0

    def test_int16_shift_wraps(self):
        assert agree(
            "terra f(x : int16) : int16 return x << 12 end", 16) == 0

    def test_int8_neg_min_wraps(self):
        assert agree(
            "terra f(x : int8) : int8 return -x end", -128) == -128


class TestBoolCast:
    """Found by the fuzzer: casting a nonzero integer to bool and back
    must normalize to 0/1 (C's bool does; a raw byte copy does not)."""

    def test_int_to_bool_to_int_normalizes(self):
        assert agree(
            "terra f(x : int) : int return [int]([bool](x)) end", 4) == 1

    def test_zero_stays_zero(self):
        assert agree(
            "terra f(x : int) : int return [int]([bool](x)) end", 0) == 0

    def test_float_to_bool(self):
        assert agree(
            "terra f(x : double) : int return [int]([bool](x)) end",
            0.25) == 1


class TestFloatSpecialValues:
    """Found by the fuzzer: IEEE sign-of-zero and special-value edge
    cases where the interpreter's Python arithmetic disagreed with
    hardware."""

    def test_negate_zero_gives_minus_zero(self):
        r = agree("terra f(x : double) : double return -x end", 0.0)
        assert math.copysign(1.0, r) == -1.0

    def test_negate_minus_zero_gives_plus_zero(self):
        r = agree("terra f(x : double) : double return -x end", -0.0)
        assert math.copysign(1.0, r) == 1.0

    def test_divide_by_minus_zero(self):
        src = "terra f(a : double, b : double) : double return a / b end"
        assert agree(src, 1.0, -0.0) == -math.inf
        assert agree(src, -1.0, -0.0) == math.inf
        assert agree(src, -3.0, 0.0) == -math.inf

    def test_zero_over_zero_is_nan(self):
        src = "terra f(a : double, b : double) : double return a / b end"
        assert math.isnan(agree(src, 0.0, 0.0))

    def test_fmod_infinite_dividend_is_nan(self):
        src = "terra f(a : double, b : double) : double return a % b end"
        assert math.isnan(agree(src, math.inf, 2.0))

    def test_fmod_zero_divisor_is_nan(self):
        src = "terra f(a : double, b : double) : double return a % b end"
        assert math.isnan(agree(src, 5.0, 0.0))

    def test_constant_negate_zero_folds_identically(self):
        r = agree("terra f() : double return -(0.0) end")
        assert math.copysign(1.0, r) == -1.0
