"""Differential-runner tests: the harness survives everything the
programs do, and child outcomes compare the way the contract says."""

import math

from repro.fuzz import FuzzProgram, run_differential
from repro.fuzz.child import (decode_args, encode_args, encode_result,
                              _run_program)
from repro.fuzz.runner import Execution, executions_diverge, run_program

SMALL_CONFIGS = [("interp", 2), ("c", 1)]


class TestEncoding:
    def test_float_results_compare_bitwise(self):
        assert encode_result(0.0) != encode_result(-0.0)
        assert encode_result(1.5) == encode_result(1.5)

    def test_nan_payloads_canonicalize(self):
        assert encode_result(float("nan")) == ["float", "nan"]

    def test_bool_is_not_int(self):
        assert encode_result(True) != encode_result(1)

    def test_args_roundtrip_special_floats(self):
        args = (1, True, math.inf, -0.0, math.nan, -2**63)
        back = decode_args(encode_args(args))
        assert back[0] == 1 and back[1] is True
        assert back[2] == math.inf
        assert math.copysign(1.0, back[3]) == -1.0
        assert math.isnan(back[4])
        assert back[5] == -2**63


class TestChildExecutor:
    def test_runs_program_in_process(self):
        out = _run_program(
            "terra f(x : int) : int return x + 1 end", "f", [(1,), (2,)],
            "interp")
        assert out == {"outcomes": [{"ok": ["int", 2]}, {"ok": ["int", 3]}]}

    def test_trap_is_an_outcome_not_an_escape(self):
        out = _run_program(
            "terra f(x : int) : int return x % 0 end", "f", [(1,)],
            "interp")
        assert out["outcomes"] == [{"trap": "integer modulo by zero"}]

    def test_compile_failure_is_fatal_outcome(self):
        out = _run_program("terra f( : int", "f", [(1,)], "interp")
        assert "fatal" in out


class TestRunProgram:
    """Single-program isolated execution (the minimizer/corpus path)."""

    def test_agreeing_program(self):
        p = FuzzProgram(seed=0, index=0,
                        source="terra f(x : int) : int return x * 3 end",
                        entry="f", argtypes=["int32"], argsets=[(5,), (-2,)])
        execs = run_program(p, configs=SMALL_CONFIGS)
        assert len(execs) == 2
        assert not executions_diverge(execs)
        assert execs[0].outcome["outcomes"][0] == {"ok": ["int", 15]}

    def test_trapping_program_does_not_kill_harness(self):
        # the original bug 1 reproducer: SIGFPE from gcc-compiled % 0
        p = FuzzProgram(
            seed=0, index=0,
            source="terra f(a : int, b : int) : int return a % b end",
            entry="f", argtypes=["int32", "int32"], argsets=[(5, 0)])
        execs = run_program(p, configs=SMALL_CONFIGS)
        assert not executions_diverge(execs)
        for ex in execs:
            assert ex.outcome["outcomes"][0] == \
                {"trap": "integer modulo by zero"}


class TestDivergenceDetection:
    def test_different_outcomes_diverge(self):
        a = Execution("interp", 2, {"outcomes": [{"ok": ["int", 1]}]})
        b = Execution("c", 1, {"outcomes": [{"ok": ["int", 2]}]})
        assert executions_diverge([a, b])

    def test_same_outcomes_agree(self):
        a = Execution("interp", 2, {"outcomes": [{"trap": "x"}]})
        b = Execution("c", 1, {"outcomes": [{"trap": "x"}]})
        assert not executions_diverge([a, b])

    def test_crash_counts_as_divergence_vs_value(self):
        a = Execution("interp", 2, {"outcomes": [{"ok": ["int", 1]}]})
        b = Execution("c", 1, {"crash": -8})
        assert executions_diverge([a, b])


class TestRunDifferential:
    def test_smoke(self):
        """A small end-to-end run: subprocess children on both backends,
        zero divergences expected (the fixed-seed CI run does 300)."""
        report = run_differential(11, 4, configs=SMALL_CONFIGS,
                                  record_stats=False)
        assert report.ok, report.summary()
        assert report.count == 4
        assert "OK" in report.summary()

    def test_stats_wiring(self):
        from repro.buildd import get_service
        stats = get_service().stats
        before = stats.fuzz_programs
        stats.record_fuzz(programs=7, divergences=1, traps=2, crashes=0)
        snap = stats.snapshot()["fuzz"]
        assert stats.fuzz_programs == before + 7
        assert snap["programs"] >= 7
        assert snap["divergences"] >= 1
