"""Minimizer tests with a fake (in-process) predicate — ddmin logic only;
the subprocess predicate path is covered by test_runner/test_corpus."""

from repro.fuzz import FuzzProgram, minimize


def program_with(lines, argsets=None):
    return FuzzProgram(seed=0, index=0, source="\n".join(lines),
                       entry="f", argtypes=["int32"],
                       argsets=argsets or [(1,)])


class TestDdmin:
    def test_removes_irrelevant_lines(self):
        lines = [f"line {i}" for i in range(20)] + ["THE BUG"]

        def predicate(p):
            return "THE BUG" in p.source

        out = minimize(program_with(lines), predicate)
        assert out.source == "THE BUG"

    def test_keeps_dependent_pair(self):
        lines = ["setup", "noise a", "noise b", "trigger", "noise c"]

        def predicate(p):
            return "setup" in p.source and "trigger" in p.source

        out = minimize(program_with(lines), predicate)
        assert out.source.splitlines() == ["setup", "trigger"]

    def test_nondiverging_program_unchanged(self):
        p = program_with(["a", "b"])
        out = minimize(p, lambda _: False)
        assert out.source == p.source

    def test_argset_reduction(self):
        p = program_with(["THE BUG"], argsets=[(1,), (2,), (3,)])

        def predicate(cand):
            return "THE BUG" in cand.source and (2,) in cand.argsets

        out = minimize(p, predicate)
        assert out.argsets == [(2,)]

    def test_budget_bounds_predicate_calls(self):
        calls = {"n": 0}

        def predicate(p):
            calls["n"] += 1
            return "keep" in p.source

        lines = [f"l{i}" for i in range(100)] + ["keep"]
        minimize(program_with(lines), predicate, max_tests=30)
        assert calls["n"] <= 30
