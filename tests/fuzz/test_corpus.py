"""Corpus replay: every divergence the fuzzer ever found stays fixed.

Each ``tests/fuzz/corpus/*.json`` entry is a minimized reproducer for a
real backend divergence (see the ``note`` field in each file).  The
in-process replay runs every entry on both backends at all three
pipeline levels and asserts bit-identical outcomes; one subprocess-based
test also exercises the crash-isolated replay path the CLI uses.
"""

import json
import os

import pytest

from repro import get_backend, terra
from repro.errors import TrapError
from repro.fuzz import load_corpus
from repro.fuzz.child import encode_result
from repro.fuzz.corpus import load_entry, replay_entry, save_entry
from repro.fuzz.gen import FuzzProgram, fuzz_env
from repro.fuzz.runner import executions_diverge

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = load_corpus(CORPUS_DIR)


def _outcomes(program, backend_name):
    """Run one corpus program in-process; canonical outcome list."""
    ns = terra(program.source, env=fuzz_env())
    try:
        fn = ns[program.entry]
    except TypeError:
        fn = ns
    handle = fn.compile(get_backend(backend_name))
    out = []
    for args in program.argsets:
        try:
            out.append({"ok": encode_result(handle(*args))})
        except TrapError as exc:
            out.append({"trap": str(exc)})
    return out


def _tiered_outcomes(program):
    """Run one corpus program under the tiered policy, twice over its
    argsets: a threshold of 2 with synchronous tier-ups guarantees the
    interp→C transition (and any respecialization guard) happens in the
    middle of the first pass, and the second pass runs entirely on
    tier 1 against warm guards."""
    from repro.exec import TieredPolicy, policy_override
    ns = terra(program.source, env=fuzz_env())
    try:
        fn = ns[program.entry]
    except TypeError:
        fn = ns
    out = []
    with policy_override(TieredPolicy(threshold=2, sync=True)):
        for args in list(program.argsets) * 2:
            try:
                out.append({"ok": encode_result(fn(*args))})
            except TrapError as exc:
                out.append({"trap": str(exc)})
    return out


def test_corpus_is_not_empty():
    assert len(CORPUS) >= 10


@pytest.mark.parametrize("name,program", CORPUS,
                         ids=[name for name, _ in CORPUS])
@pytest.mark.parametrize("level", ["0", "1", "2"])
def test_replay_in_process(monkeypatch, name, program, level):
    """Both backends agree bitwise on every entry at every pipeline level."""
    monkeypatch.setenv("REPRO_TERRA_PIPELINE", level)
    assert _outcomes(program, "c") == _outcomes(program, "interp")


@pytest.mark.parametrize("name,program", CORPUS,
                         ids=[name for name, _ in CORPUS])
@pytest.mark.parametrize("level", ["0", "1", "2"])
def test_replay_tiered_in_process(monkeypatch, name, program, level):
    """Every corpus entry stays bit-identical when executed through the
    tiered policy (forced mid-run tier-up + respecialization guards) at
    every pipeline level."""
    monkeypatch.setenv("REPRO_TERRA_PIPELINE", level)
    assert _tiered_outcomes(program) == _outcomes(program, "interp") * 2


def test_replay_tiered_isolated_subprocess():
    """The crash-isolated child also supports --backend tiered: the
    entry that used to SIGFPE the host must trap identically across the
    tier transition."""
    program = load_entry(os.path.join(CORPUS_DIR, "div-zero-trap.json"))
    execs = replay_entry(program, configs=[("interp", 1), ("tiered", 1)])
    assert not executions_diverge(execs), \
        [(e.config, e.outcome) for e in execs]


def test_replay_isolated_subprocess():
    """The CLI's crash-isolated replay path, on the entry that used to
    SIGFPE the host."""
    program = load_entry(os.path.join(CORPUS_DIR, "mod-zero-trap.json"))
    execs = replay_entry(program, configs=[("interp", 2), ("c", 1)])
    assert not executions_diverge(execs), \
        [(e.config, e.outcome) for e in execs]
    assert execs[0].outcome["outcomes"][0] == \
        {"trap": "integer modulo by zero"}


def test_save_load_roundtrip(tmp_path):
    program = FuzzProgram(
        seed=3, index=9,
        source="terra f(x : double) : double return -x end",
        entry="f", argtypes=["double"],
        argsets=[(float("inf"),), (-0.0,), (float("nan"),)])
    path = save_entry(str(tmp_path), "round trip!", program, note="n")
    assert os.path.basename(path) == "round-trip.json"
    back = load_entry(path)
    assert back.source == program.source
    assert back.entry == "f"
    assert back.argsets[0][0] == float("inf")
    assert str(back.argsets[1][0]) == "-0.0"
    assert back.argsets[2][0] != back.argsets[2][0]   # nan
    # strict JSON on disk (no Infinity/NaN literals)
    with open(path) as fh:
        json.loads(fh.read())
