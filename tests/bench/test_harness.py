"""Benchmark-harness unit tests (timing helpers and table rendering)."""

import pytest

from repro.bench.harness import Row, Table, gbps, gflops, time_call


class TestTable:
    def test_render_alignment(self):
        t = Table("title", ["name", "value"])
        t.add("a", 1.0)
        t.add("longer-name", 12.345)
        text = t.render()
        lines = text.split("\n")
        assert lines[0] == "title"
        assert "longer-name" in text
        assert "12.35" in text  # floats format to 2 decimals
        # all rows padded to the same width
        assert len(lines[2]) == len(lines[3].rstrip()) or True
        assert lines[1].startswith("name")

    def test_show_prints(self, capsys):
        t = Table("t", ["c"])
        t.add(42)
        t.show()
        out = capsys.readouterr().out
        assert "42" in out and "t" in out


class TestTiming:
    def test_time_call_runs_warmup_plus_repeats(self):
        calls = []
        result = time_call(lambda: calls.append(1), repeats=3)
        assert len(calls) == 4  # 1 warm-up + 3 timed
        assert result >= 0

    def test_rates(self):
        assert gflops(2e9, 1.0) == 2.0
        assert gbps(5e9, 2.0) == 2.5

    def test_row_speedup(self):
        r = Row("x", 2.0, "s", baseline=4.0)
        assert r.speedup == 2.0
        assert Row("y", 2.0, "s").speedup is None
