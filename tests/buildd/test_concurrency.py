"""Concurrent compilation through the full Terra stack.

These tests drive the real pipeline — parse, specialize, typecheck, emit,
gcc, ctypes — from many threads at once against the shared "c" backend,
which is exactly what a server embedding the reproduction would do.
"""

import threading

import pytest

from repro.buildd import cc_available
from repro.buildd.cache import ArtifactCache
from repro.buildd.service import CompileService

pytestmark = pytest.mark.skipif(not cc_available(), reason="no C compiler")


@pytest.fixture
def svc(tmp_path, swap_service):
    """A fresh service (cold private cache) installed as the global one."""
    return swap_service(CompileService(
        jobs=4, cache=ArtifactCache(root=str(tmp_path / "cache"))))


def run_threads(n, target):
    errors = []

    def wrap(i):
        try:
            target(i)
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=wrap, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == [], errors


def test_identical_function_from_many_threads(svc):
    """N threads calling one just-defined function: every call succeeds and
    the artifact is built exactly once."""
    from repro import terra
    fn = terra("terra collatz(n : int) : int\n"
               "  var steps = 0\n"
               "  while n ~= 1 do\n"
               "    if n % 2 == 0 then n = n / 2 else n = 3 * n + 1 end\n"
               "    steps = steps + 1\n"
               "  end\n"
               "  return steps\n"
               "end")
    results = {}

    def call(i):
        results[i] = fn(27)

    run_threads(8, call)
    assert set(results.values()) == {111}
    snap = svc.stats.snapshot()
    assert snap["compiles"] == 1  # one gcc run for eight racing callers
    assert snap["failures"] == 0


def test_distinct_functions_from_many_threads(svc):
    """Each thread defines and calls its own function (distinct sources)."""
    from repro import terra
    results = {}

    def define_and_call(i):
        fn = terra(f"terra mul{i}(x : int) : int return x * {i + 1} end")
        results[i] = fn(10)

    run_threads(8, define_and_call)
    assert results == {i: 10 * (i + 1) for i in range(8)}
    snap = svc.stats.snapshot()
    assert snap["compiles"] == 8
    assert snap["failures"] == 0


def test_async_submission_overlaps_then_calls(svc):
    """Submit many units to the pool, then wait and call them all."""
    from repro import terra
    fns = [terra(f"terra sq{i}(x : int) : int return x * x + {i} end")
           for i in range(6)]
    tickets = [fn.compile_async() for fn in fns]
    handles = [t.result() for t in tickets]
    assert [h(4) for h in handles] == [16 + i for i in range(6)]
    # direct calls join the already-installed handles: no extra compiles
    before = svc.stats.snapshot()["compiles"]
    assert [fn(2) for fn in fns] == [4 + i for i in range(6)]
    assert svc.stats.snapshot()["compiles"] == before == 6


def test_sync_call_joins_pending_async_compile(svc):
    """fn.compile_async() then fn() must not compile twice — the call
    joins the in-flight build (same flags, same key)."""
    from repro import terra
    from repro.backend.c.runtime import extra_cflags
    fn = terra("terra tripled(x : int) : int return 3 * x end")
    with extra_cflags("-DSOME_MARKER"):
        ticket = fn.compile_async()
        assert fn(5) == 15   # joins; does not re-emit with different flags
    assert ticket.result()(7) == 21
    assert svc.stats.snapshot()["compiles"] == 1


def test_survives_corrupted_cache_dir(tmp_path, swap_service):
    """A pre-populated cache dir with a garbage index and stray files is
    adopted/ignored, never fatal."""
    root = tmp_path / "cache"
    root.mkdir()
    (root / "buildd-index.json").write_text("]]]] not json")
    (root / "unit_0000000000000000deadbeef.so").write_bytes(b"junk")
    (root / "random.txt").write_text("noise")
    svc = swap_service(CompileService(jobs=2,
                                      cache=ArtifactCache(root=str(root))))
    from repro import terra
    fn = terra("terra seven() : int return 7 end")
    assert fn() == 7
    assert svc.stats.snapshot()["failures"] == 0
    out = svc.cache.gc()
    assert out["artifacts"] >= 1


def test_tuner_sweep_warm_cache_hits(tmp_path, swap_service):
    """A tiny tuner sweep: candidates compile through the pool; a warm
    rerun of the same sweep recompiles nothing (all cache hits)."""
    from repro.autotune.tuner import Candidate, tune
    svc = swap_service(CompileService(
        jobs=2, cache=ArtifactCache(root=str(tmp_path / "cache"))))
    cands = [Candidate(16, 2, 1, 2), Candidate(16, 2, 2, 2)]
    tune(test_size=32, candidate_list=cands, repeats=1, verbose=False)
    cold = svc.stats.snapshot()
    assert cold["compiles"] >= 2  # every candidate kernel went through gcc
    # warm rerun: fresh TerraFunctions, identical generated C -> all hits
    tune(test_size=32, candidate_list=cands, repeats=1, verbose=False)
    warm = svc.stats.snapshot()
    assert warm["compiles"] == cold["compiles"]
    assert warm["cache_hits"] > cold["cache_hits"]
