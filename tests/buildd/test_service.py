"""The compile service: pooling, dedup, telemetry, failure propagation."""

import ctypes
import os
import threading

import pytest

from repro.buildd import cc_available
from repro.buildd.cache import ArtifactCache
from repro.buildd.service import CompileService
from repro.errors import CompileError


def make_service(tmp_path, fake_toolchain, jobs=4, **kw):
    cache = ArtifactCache(root=str(tmp_path / "cache"))
    return CompileService(jobs=jobs, cache=cache, tc=fake_toolchain, **kw)


class TestBasics:
    def test_compile_produces_artifact(self, tmp_path, fake_toolchain):
        svc = make_service(tmp_path, fake_toolchain)
        path = svc.compile("int x = 1;")
        data = open(path, "rb").read()
        assert data.startswith(b"FAKESO\0")
        assert b"int x = 1;" in data

    def test_warm_cache_hit(self, tmp_path, fake_toolchain):
        svc = make_service(tmp_path, fake_toolchain)
        p1 = svc.compile("int x;")
        p2 = svc.compile("int x;")
        assert p1 == p2
        snap = svc.stats.snapshot()
        assert snap["compiles"] == 1
        assert snap["cache_hits"] == 1
        assert snap["hit_rate"] == 0.5

    def test_distinct_flags_distinct_artifacts(self, tmp_path, fake_toolchain):
        svc = make_service(tmp_path, fake_toolchain)
        p1 = svc.compile("int x;", ("-DA",))
        p2 = svc.compile("int x;", ("-DB",))
        assert p1 != p2
        assert svc.stats.snapshot()["compiles"] == 2

    def test_async_returns_future(self, tmp_path, fake_toolchain):
        svc = make_service(tmp_path, fake_toolchain)
        futs = [svc.compile_async(f"int x{i};") for i in range(8)]
        paths = [f.result() for f in futs]
        assert len(set(paths)) == 8
        snap = svc.stats.snapshot()
        assert snap["compiles"] == 8
        assert snap["max_queue_depth"] >= 1
        assert snap["queue_depth"] == 0

    def test_cross_service_cache_share(self, tmp_path, fake_toolchain):
        """Two services over one cache root (≈ two processes) share
        artifacts."""
        a = make_service(tmp_path, fake_toolchain)
        b = make_service(tmp_path, fake_toolchain)
        pa = a.compile("int shared;")
        pb = b.compile("int shared;")
        assert pa == pb
        assert b.stats.snapshot()["compiles"] == 0
        assert b.stats.snapshot()["cache_hits"] == 1


class TestDedup:
    def test_inflight_requests_share_one_compile(self, tmp_path,
                                                 fake_toolchain, monkeypatch):
        monkeypatch.setenv("FAKECC_DELAY", "0.4")
        svc = make_service(tmp_path, fake_toolchain, jobs=4)
        results, errors = [], []

        def worker():
            try:
                results.append(svc.compile("int contended;"))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(set(results)) == 1
        snap = svc.stats.snapshot()
        # provably one compiler run for six requests: the rest were either
        # deduped against the in-flight build or (late arrivals) cache hits
        assert snap["compiles"] == 1
        assert snap["submitted"] == 6
        assert snap["inflight_dedup"] + snap["cache_hits"] == 5

    def test_failure_propagates_to_all_waiters(self, tmp_path,
                                               fake_toolchain, monkeypatch):
        monkeypatch.setenv("FAKECC_DELAY", "0.3")
        monkeypatch.setenv("FAKECC_FAIL", "1")
        svc = make_service(tmp_path, fake_toolchain)
        futs = [svc.compile_async("int broken;") for _ in range(3)]
        for fut in futs:
            with pytest.raises(CompileError, match="induced failure"):
                fut.result()
        snap = svc.stats.snapshot()
        assert snap["failures"] == 1
        assert snap["compiles"] == 0
        # a failed build is not cached: retry compiles again
        monkeypatch.delenv("FAKECC_FAIL")
        monkeypatch.delenv("FAKECC_DELAY")
        assert svc.compile("int broken;")
        assert svc.stats.snapshot()["compiles"] == 1


class TestTelemetry:
    def test_snapshot_shape(self, tmp_path, fake_toolchain):
        svc = make_service(tmp_path, fake_toolchain)
        svc.compile("int x;")
        snap = svc.snapshot()
        for key in ("jobs", "compiler", "root", "artifacts", "bytes_cached",
                    "max_bytes", "submitted", "cache_hits", "cache_misses",
                    "compiles", "failures", "compile_seconds", "queue_depth",
                    "max_queue_depth", "hit_rate", "recent_builds"):
            assert key in snap, key
        assert snap["artifacts"] == 1
        assert snap["bytes_cached"] > 0
        assert snap["recent_builds"][0]["seconds"] >= 0

    def test_per_unit_times_recorded(self, tmp_path, fake_toolchain):
        svc = make_service(tmp_path, fake_toolchain)
        svc.compile("int a;")
        svc.compile("int b;")
        recent = svc.stats.snapshot()["recent_builds"]
        assert len(recent) == 2
        assert all(r["bytes"] > 0 for r in recent)


class TestCompileTo:
    def test_compile_to_writes_output(self, tmp_path, fake_toolchain):
        svc = make_service(tmp_path, fake_toolchain)
        src = tmp_path / "in.c"
        src.write_text("int exported;")
        out = tmp_path / "out.o"
        svc.compile_to(str(out), "int exported;", ["-c", str(src)])
        assert out.exists()
        assert b"int exported;" in out.read_bytes()
        assert svc.stats.snapshot()["compiles"] == 1

    def test_compile_to_failure(self, tmp_path, fake_toolchain, monkeypatch):
        monkeypatch.setenv("FAKECC_FAIL", "1")
        svc = make_service(tmp_path, fake_toolchain)
        src = tmp_path / "in.c"
        src.write_text("int x;")
        with pytest.raises(CompileError):
            svc.compile_to(str(tmp_path / "out.o"), "int x;",
                           ["-c", str(src)])
        assert not (tmp_path / "out.o").exists()


@pytest.mark.skipif(not cc_available(), reason="no C compiler")
class TestRealCompiler:
    def test_real_so_is_loadable(self, tmp_path):
        svc = CompileService(jobs=2,
                             cache=ArtifactCache(root=str(tmp_path / "c")))
        path = svc.compile("int the_answer(void) { return 42; }")
        lib = ctypes.CDLL(path)
        assert lib.the_answer() == 42

    def test_module_level_api(self):
        import repro.buildd as buildd
        path = buildd.compile("double half(double x) { return x / 2; }")
        assert os.path.exists(path)
        lib = ctypes.CDLL(path)
        lib.half.restype = ctypes.c_double
        lib.half.argtypes = [ctypes.c_double]
        assert lib.half(3.0) == 1.5
        assert buildd.stats()["submitted"] >= 1
