"""Entry-count caps and per-namespace quotas on the artifact cache.

The byte cap predates multi-tenancy; these tests cover the two limits
added for :mod:`repro.serve` — a global ``max_entries`` LRU bound and a
per-namespace entry quota — plus the ``cache_namespace`` context that
threads tenant attribution from a submitting thread into ``publish``.
"""

import os
import threading
import time

import pytest

from repro.buildd.cache import ArtifactCache, default_max_entries
from repro.buildd.service import CompileService, cache_namespace


def put(cache, key, ns=None, size=16, bump_clock=True):
    """Publish a synthetic artifact under ``key``."""
    tmp = cache.make_temp()
    with open(tmp, "wb") as f:
        f.write(b"x" * size)
    path = cache.publish(key, tmp, namespace=ns)
    if bump_clock:
        time.sleep(0.002)  # distinct last_use for deterministic LRU order
    return path


def live_keys(cache):
    return set(cache._load_index_locked())


class TestMaxEntries:
    def test_lru_eviction_at_the_entry_cap(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "c"), max_entries=3)
        for i in range(5):
            put(cache, f"key{i}")
        assert live_keys(cache) == {"key2", "key3", "key4"}

    def test_lookup_refreshes_lru_position(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "c"), max_entries=2)
        put(cache, "old")
        put(cache, "mid")
        assert cache.lookup("old") is not None  # bump: now newest
        time.sleep(0.002)
        put(cache, "new")
        assert live_keys(cache) == {"old", "new"}

    def test_evicted_artifacts_leave_no_files(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "c"), max_entries=1)
        put(cache, "a" * 24)
        put(cache, "b" * 24)
        assert not os.path.exists(cache.artifact_path("a" * 24))
        assert os.path.exists(cache.artifact_path("b" * 24))

    def test_zero_means_unbounded(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "c"), max_entries=0)
        for i in range(8):
            put(cache, f"key{i}", bump_clock=False)
        assert len(live_keys(cache)) == 8

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BUILDD_CACHE_ENTRIES", "17")
        assert default_max_entries() == 17
        monkeypatch.setenv("REPRO_BUILDD_CACHE_ENTRIES", "junk")
        assert default_max_entries() == 0


class TestNamespaceQuota:
    def test_each_namespace_keeps_its_newest(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "c"), namespace_quota=2)
        for i in range(4):
            put(cache, f"a{i}", ns="alice")
        for i in range(3):
            put(cache, f"b{i}", ns="bob")
        assert live_keys(cache) == {"a2", "a3", "b1", "b2"}

    def test_churning_tenant_cannot_evict_another(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "c"), namespace_quota=2)
        put(cache, "bob0", ns="bob")
        put(cache, "bob1", ns="bob")
        for i in range(20):  # alice churns far past her quota
            put(cache, f"alice{i}", ns="alice", bump_clock=False)
        survivors = live_keys(cache)
        assert {"bob0", "bob1"} <= survivors
        assert sum(1 for k in survivors if k.startswith("alice")) <= 2

    def test_unattributed_publishes_share_the_default_namespace(
            self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "c"), namespace_quota=1)
        put(cache, "one")
        put(cache, "two")
        assert live_keys(cache) == {"two"}
        assert cache.summary()["namespaces"] == {"default": 1}

    def test_quota_composes_with_global_entry_cap(self, tmp_path):
        # quota admits 2 per namespace, but the global cap holds the total
        cache = ArtifactCache(str(tmp_path / "c"), namespace_quota=2,
                              max_entries=3)
        for ns in ("a", "b", "c"):
            put(cache, f"{ns}0", ns=ns)
            put(cache, f"{ns}1", ns=ns)
        entries = live_keys(cache)
        assert len(entries) == 3
        assert entries == {"b1", "c0", "c1"}  # global LRU across namespaces


class TestConcurrentMultiTenantChurn:
    def test_invariants_hold_under_concurrent_eviction(self, tmp_path):
        """Many tenants publishing and looking up at once: quotas hold,
        the index matches the files on disk, and nothing raises."""
        quota, max_entries, tenants, per_tenant = 3, 12, 6, 15
        cache = ArtifactCache(str(tmp_path / "c"), namespace_quota=quota,
                              max_entries=max_entries)
        errors = []
        start = threading.Barrier(tenants)

        def churn(tid):
            try:
                start.wait()
                for i in range(per_tenant):
                    put(cache, f"t{tid}k{i:02d}", ns=f"tenant-{tid}",
                        bump_clock=False)
                    cache.lookup(f"t{tid}k{i:02d}")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=churn, args=(t,))
                   for t in range(tenants)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

        with cache._lock:
            entries = dict(cache._load_index_locked())
        assert len(entries) <= max_entries
        by_ns = {}
        for key, entry in entries.items():
            by_ns.setdefault(entry["ns"], []).append(key)
        assert all(len(keys) <= quota for keys in by_ns.values())
        # index ↔ disk agreement: every live key has its artifact, and no
        # evicted artifact lingers
        on_disk = {name[len("unit_"):-len(".so")]
                   for name in os.listdir(cache.root)
                   if name.startswith("unit_") and name.endswith(".so")}
        assert on_disk == set(entries)


class TestServiceNamespaceThreading:
    def test_cache_namespace_attributes_builds(self, tmp_path,
                                               fake_toolchain):
        cache = ArtifactCache(str(tmp_path / "c"), namespace_quota=4)
        svc = CompileService(jobs=2, cache=cache, tc=fake_toolchain)
        try:
            with cache_namespace("alice"):
                svc.compile("int alice_fn(void) { return 1; }")
            with cache_namespace("bob"):
                svc.compile("int bob_fn(void) { return 2; }")
            svc.compile("int nobody(void) { return 3; }")
            assert cache.summary()["namespaces"] == {
                "alice": 1, "bob": 1, "default": 1}
        finally:
            svc.shutdown()

    def test_namespace_context_restores_previous_value(self):
        from repro.buildd.service import current_namespace
        assert current_namespace() is None
        with cache_namespace("outer"):
            with cache_namespace("inner"):
                assert current_namespace() == "inner"
            assert current_namespace() == "outer"
        assert current_namespace() is None

    def test_identical_source_across_namespaces_builds_once(
            self, tmp_path, fake_toolchain):
        cache = ArtifactCache(str(tmp_path / "c"), namespace_quota=4)
        svc = CompileService(jobs=2, cache=cache, tc=fake_toolchain)
        try:
            src = "int shared(void) { return 7; }"
            with cache_namespace("alice"):
                first = svc.compile(src)
            with cache_namespace("bob"):
                second = svc.compile(src)  # content-addressed: a cache hit
            assert first == second
            assert svc.stats.snapshot()["cache_hits"] >= 1
        finally:
            svc.shutdown()
