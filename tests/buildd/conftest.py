"""Fixtures for the buildd test suite.

``fake_toolchain`` provides a tiny Python "compiler" so cache/service/
dedup behaviour can be tested deterministically (and without gcc): it
copies the input source into the output artifact, optionally sleeping
(``FAKECC_DELAY``) or failing (``FAKECC_FAIL``).
"""

import os
import stat
import sys
import textwrap

import pytest

from repro.buildd.toolchain import Toolchain

FAKE_CC = textwrap.dedent("""\
    #!{python}
    import os, sys, time
    args = sys.argv[1:]
    if "--version" in args:
        print("fakecc 1.0")
        sys.exit(0)
    delay = float(os.environ.get("FAKECC_DELAY", "0"))
    if delay:
        time.sleep(delay)
    if os.environ.get("FAKECC_FAIL"):
        sys.stderr.write("fakecc: induced failure\\n")
        sys.exit(1)
    out = args[args.index("-o") + 1]
    sources = [a for a in args if a.endswith(".c")]
    data = b""
    for src in sources:
        with open(src, "rb") as f:
            data += f.read()
    with open(out, "wb") as f:
        f.write(b"FAKESO\\0" + data)
""")


@pytest.fixture
def fake_cc_path(tmp_path):
    path = tmp_path / "fakecc"
    path.write_text(FAKE_CC.format(python=sys.executable))
    path.chmod(path.stat().st_mode | stat.S_IXUSR | stat.S_IXGRP)
    return str(path)


@pytest.fixture
def fake_toolchain(fake_cc_path):
    return Toolchain(path=fake_cc_path, version="fakecc 1.0",
                     identity="fakecc-test")


@pytest.fixture
def swap_service():
    """Temporarily replace the process-wide compile service (without
    shutting down the real one, which later tests still need)."""
    import repro.buildd.service as service_mod

    saved = service_mod._service
    installed = []

    def install(svc):
        service_mod._service = svc
        installed.append(svc)
        return svc

    yield install
    service_mod._service = saved
    for svc in installed:
        svc.shutdown()
