"""The content-addressed artifact cache: keys, atomicity, LRU, recovery."""

import json
import os
import time

from repro.buildd.cache import ArtifactCache, INDEX_NAME


def make_cache(tmp_path, **kw):
    return ArtifactCache(root=str(tmp_path / "cache"), **kw)


def publish(cache, key, data=b"artifact", **meta):
    tmp = cache.make_temp()
    with open(tmp, "wb") as f:
        f.write(data)
    return cache.publish(key, tmp, **meta)


class TestKeys:
    def test_key_depends_on_source_flags_and_compiler(self):
        base = ArtifactCache.key_for("int f;", ("-O3",), "cc1")
        assert ArtifactCache.key_for("int f;", ("-O3",), "cc1") == base
        assert ArtifactCache.key_for("int g;", ("-O3",), "cc1") != base
        assert ArtifactCache.key_for("int f;", ("-O2",), "cc1") != base
        # a compiler upgrade must never reuse old artifacts
        assert ArtifactCache.key_for("int f;", ("-O3",), "cc2") != base

    def test_flag_concatenation_is_not_ambiguous(self):
        a = ArtifactCache.key_for("s", ("-a", "bc"), "cc")
        b = ArtifactCache.key_for("s", ("-ab", "c"), "cc")
        assert a != b


class TestPublishLookup:
    def test_roundtrip(self, tmp_path):
        cache = make_cache(tmp_path)
        assert cache.lookup("deadbeef") is None
        path = publish(cache, "deadbeef", b"hello", source="int x;")
        assert path == cache.artifact_path("deadbeef")
        assert open(path, "rb").read() == b"hello"
        assert cache.lookup("deadbeef") == path
        # the generated source is kept next to the artifact for debugging
        assert open(cache.source_path("deadbeef")).read() == "int x;"

    def test_publish_is_atomic_rename(self, tmp_path):
        cache = make_cache(tmp_path)
        publish(cache, "k1", b"data")
        # no half-written temp files remain
        leftovers = [n for n in os.listdir(cache.root)
                     if n.startswith(".build-")]
        assert leftovers == []

    def test_summary_counts_bytes(self, tmp_path):
        cache = make_cache(tmp_path)
        publish(cache, "k1", b"x" * 100)
        publish(cache, "k2", b"x" * 50)
        s = cache.summary()
        assert s["artifacts"] == 2
        assert s["bytes_cached"] == 150


class TestEviction:
    def test_lru_eviction_over_cap(self, tmp_path):
        cache = make_cache(tmp_path, max_bytes=250)
        publish(cache, "old", b"x" * 100)
        publish(cache, "mid", b"x" * 100)
        cache.lookup("old")               # old is now more recent than mid
        publish(cache, "new", b"x" * 100)  # 300 bytes > 250: evict LRU (mid)
        assert cache.lookup("mid") is None
        assert cache.lookup("old") is not None
        assert cache.lookup("new") is not None
        assert cache.summary()["bytes_cached"] <= 250

    def test_zero_cap_disables_eviction(self, tmp_path):
        cache = make_cache(tmp_path, max_bytes=0)
        publish(cache, "a", b"x" * 1000)
        publish(cache, "b", b"x" * 1000)
        assert cache.summary()["artifacts"] == 2


class TestHitPersistence:
    def _disk_last_use(self, cache, key):
        return json.load(open(cache._index_path()))["entries"][key]["last_use"]

    def test_warm_process_hits_reach_disk(self, tmp_path):
        """Regression: lookup() bumped last_use only in memory, so a
        warm-cache process (all hits, zero publishes) persisted nothing —
        a later gc() evicted the hottest artifacts as if they were cold."""
        writer = make_cache(tmp_path)
        publish(writer, "hot", b"x")
        stamped = self._disk_last_use(writer, "hot")
        time.sleep(0.05)
        warm = ArtifactCache(root=writer.root)  # a second, warm process
        assert warm.lookup("hot") is not None   # pure hit, never publishes
        assert self._disk_last_use(warm, "hot") > stamped

    def test_cross_process_lru_respects_warm_hits(self, tmp_path):
        writer = make_cache(tmp_path, max_bytes=250)
        publish(writer, "hot", b"x" * 100)
        time.sleep(0.02)
        publish(writer, "cold", b"x" * 100)
        time.sleep(0.02)
        warm = ArtifactCache(root=writer.root, max_bytes=250)
        assert warm.lookup("hot") is not None  # hot is now the most recent
        evictor = ArtifactCache(root=writer.root, max_bytes=250)
        publish(evictor, "new", b"x" * 100)    # over cap: evict the true LRU
        assert evictor.lookup("cold") is None
        assert evictor.lookup("hot") is not None

    def test_hit_saves_are_throttled_and_flushable(self, tmp_path):
        cache = make_cache(tmp_path)
        publish(cache, "k1", b"x")
        first = self._disk_last_use(cache, "k1")
        cache.lookup("k1")                     # publish just saved: throttled
        time.sleep(0.05)
        cache.lookup("k1")                     # still within the window
        assert self._disk_last_use(cache, "k1") == first
        cache.flush()
        assert self._disk_last_use(cache, "k1") > first


class TestRecovery:
    def test_corrupted_index_is_rebuilt(self, tmp_path):
        cache = make_cache(tmp_path)
        path = publish(cache, "k1", b"data")
        (tmp_path / "cache" / INDEX_NAME).write_text("{not json!!")
        fresh = ArtifactCache(root=cache.root)
        assert fresh.lookup("k1") == path

    def test_prepopulated_dir_is_adopted(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        (root / "unit_cafebabe.so").write_bytes(b"preexisting")
        (root / "unrelated.txt").write_text("junk")
        cache = ArtifactCache(root=str(root))
        assert cache.lookup("cafebabe") == cache.artifact_path("cafebabe")
        assert cache.summary()["artifacts"] == 1

    def test_stale_index_entry_dropped(self, tmp_path):
        cache = make_cache(tmp_path)
        publish(cache, "k1", b"data")
        os.unlink(cache.artifact_path("k1"))
        fresh = ArtifactCache(root=cache.root)
        assert fresh.lookup("k1") is None

    def test_gc_removes_orphan_temps(self, tmp_path):
        cache = make_cache(tmp_path)
        publish(cache, "k1", b"data")
        stray = cache.make_temp()  # an abandoned build temp ...
        old = time.time() - 2 * cache.temp_ttl_s
        os.utime(stray, (old, old))  # ... old enough to be an orphan
        assert os.path.exists(stray)
        out = cache.gc()
        assert not os.path.exists(stray)
        assert out["artifacts"] == 1
        assert cache.lookup("k1") is not None

    def test_gc_spares_fresh_inflight_temps(self, tmp_path):
        """Regression: gc() used to unlink *every* temp file, including one
        a concurrent in-flight build was still writing — its os.replace
        publish then failed with ENOENT.  Fresh temps must survive gc."""
        cache = make_cache(tmp_path)
        inflight = cache.make_temp()  # another builder is writing this now
        with open(inflight, "wb") as f:
            f.write(b"half-writ")
        out = cache.gc()
        assert os.path.exists(inflight)
        assert out["temp_files_removed"] == 0
        # ... and the in-flight build can still publish atomically
        cache.publish("k9", inflight)
        assert cache.lookup("k9") is not None

    def test_gc_temp_ttl_is_configurable(self, tmp_path):
        cache = make_cache(tmp_path, temp_ttl_s=0.0)
        stray = cache.make_temp()
        cache.gc()
        assert not os.path.exists(stray)

    def test_clear(self, tmp_path):
        cache = make_cache(tmp_path)
        publish(cache, "k1", b"data", source="int x;")
        publish(cache, "k2", b"data")
        assert cache.clear() > 0
        assert cache.lookup("k1") is None
        assert cache.summary() == {"root": cache.root, "artifacts": 0,
                                   "bytes_cached": 0,
                                   "max_bytes": cache.max_bytes,
                                   "max_entries": 0, "namespace_quota": 0,
                                   "namespaces": {}}

    def test_index_survives_reload(self, tmp_path):
        cache = make_cache(tmp_path)
        publish(cache, "k1", b"data", flags=("-O3",), compile_s=0.5)
        data = json.load(open(cache._index_path()))
        assert data["entries"]["k1"]["flags"] == ["-O3"]
        assert data["entries"]["k1"]["compile_s"] == 0.5
