"""Compiler discovery: single source of truth, identity hashing, overrides."""

import pytest

from repro.buildd import toolchain
from repro.errors import CompileError


@pytest.fixture(autouse=True)
def reprobe():
    """Each test starts from (and leaves behind) a fresh probe."""
    toolchain.reset()
    yield
    toolchain.reset()


class TestDiscovery:
    def test_probe_is_cached(self):
        assert toolchain.default_toolchain() is toolchain.default_toolchain()

    def test_env_override(self, fake_cc_path, monkeypatch):
        monkeypatch.setenv("REPRO_TERRA_CC", fake_cc_path)
        toolchain.reset()
        tc = toolchain.require_toolchain()
        assert tc.path == fake_cc_path
        assert tc.version.startswith("fakecc")
        assert len(tc.identity) == 12

    def test_no_compiler_raises_compile_error(self, monkeypatch):
        monkeypatch.setattr(toolchain.shutil, "which", lambda _name: None)
        toolchain.reset()
        assert not toolchain.cc_available()
        assert toolchain.cc_identity() == ""
        with pytest.raises(CompileError, match="no C compiler"):
            toolchain.find_cc()

    def test_identity_tracks_version(self, fake_cc_path, monkeypatch):
        monkeypatch.setenv("REPRO_TERRA_CC", fake_cc_path)
        toolchain.reset()
        first = toolchain.cc_identity()
        # "upgrade" the compiler: same path, new --version banner
        text = open(fake_cc_path).read().replace("fakecc 1.0", "fakecc 2.0")
        with open(fake_cc_path, "w") as f:
            f.write(text)
        toolchain.reset()
        assert toolchain.cc_identity() != first


class TestSingleSourceOfTruth:
    def test_backend_base_delegates(self):
        from repro.backend.base import _cc_available
        assert _cc_available() == toolchain.cc_available()

    def test_runtime_find_cc_delegates(self):
        from repro.backend.c import runtime
        if toolchain.cc_available():
            assert runtime.find_cc() == toolchain.find_cc()
        else:
            with pytest.raises(CompileError):
                runtime.find_cc()
