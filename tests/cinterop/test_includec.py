"""includec tests: known headers, the C declaration parser, both backends."""

import pytest

from repro import includec, terra
from repro.core import types as T
from repro.errors import TerraSyntaxError


class TestKnownHeaders:
    def test_stdlib(self):
        std = includec("stdlib.h")
        for name in ("malloc", "free", "calloc", "realloc", "rand", "srand"):
            assert name in std
        assert std.malloc.gettype().parameters == (T.uint64,)

    def test_string(self):
        s = includec("string.h")
        assert {"memset", "memcpy", "strlen", "strcmp"} <= set(s)

    def test_math(self):
        m = includec("math.h")
        assert m.sqrt.gettype().returns == (T.float64,)
        assert m.sqrtf.gettype().returns == (T.float32,)

    def test_stdio_varargs(self):
        stdio = includec("stdio.h")
        assert stdio.printf.gettype().varargs

    def test_externals_cached(self):
        a = includec("stdlib.h")
        b = includec("stdlib.h")
        assert a["malloc"] is b["malloc"]  # identity matters for linking


class TestDeclarationParser:
    def test_simple_function(self):
        ns = includec("double hypot(double x, double y);")
        assert ns.hypot.gettype().parameters == (T.float64, T.float64)

    def test_pointers_and_const(self):
        ns = includec("int puts2(const char *s);")
        assert ns.puts2.gettype().parameters == (T.pointer(T.int8),)

    def test_void_return(self):
        ns = includec("void do_nothing(int x);")
        assert ns.do_nothing.gettype().returns == ()

    def test_void_params(self):
        ns = includec("int get_value(void);")
        assert ns.get_value.gettype().parameters == ()

    def test_unsigned_long_long(self):
        ns = includec("unsigned long long mix(unsigned long long a);")
        assert ns.mix.gettype().parameters == (T.uint64,)

    def test_varargs(self):
        ns = includec("int log_it(const char *fmt, ...);")
        assert ns.log_it.gettype().varargs

    def test_opaque_struct(self):
        ns = includec("""
        struct ctx;
        struct ctx *ctx_new(void);
        void ctx_free(struct ctx *c);
        """)
        ptr = ns.ctx_new.gettype().returns[0]
        assert ptr.ispointer()
        assert isinstance(ptr.pointee, T.OpaqueType)
        # the same opaque identity across declarations
        assert ns.ctx_free.gettype().parameters[0] is ptr

    def test_include_line(self):
        ns = includec("""
        #include <stdlib.h>
        int extra(int x);
        """)
        assert "malloc" in ns and "extra" in ns

    def test_unknown_header(self):
        with pytest.raises(TerraSyntaxError, match="unknown header"):
            includec("#include <windows.h>")

    def test_stdint_types(self):
        ns = includec("uint64_t take(int32_t a, uint8_t b);")
        assert ns.take.gettype().parameters == (T.int32, T.uint8)
        assert ns.take.gettype().returns == (T.uint64,)

    def test_comments_stripped(self):
        ns = includec("""
        /* block comment */
        int f1(int a); // line comment
        """)
        assert "f1" in ns

    def test_garbage_rejected(self):
        with pytest.raises(TerraSyntaxError):
            includec("template <class T> T max(T a, T b);")


class TestUsingRealLibc:
    """Imported declarations bind to the real libc under the C backend."""

    def test_hypot(self):
        ns = includec("double hypot(double x, double y);")
        f = terra("terra f(a : double, b : double) : double "
                  "return ns.hypot(a, b) end", env={"ns": ns})
        assert f(3.0, 4.0) == 5.0

    def test_snprintf_roundtrip(self, backend):
        stdio = includec("stdio.h")
        std = includec("stdlib.h")
        strh = includec("string.h")
        f = terra("""
        terra f(x : int) : int64
          var buf = [&int8](std.malloc(64))
          stdio.snprintf(buf, 64, 'v=%d!', x)
          var n = [int64](strh.strlen(buf))
          std.free(buf)
          return n
        end
        """)
        assert f.compile(backend)(1234) == len("v=1234!")
