"""saveobj tests: ahead-of-time output (.c/.h/.o/.so) that runs without
the meta-language — the paper's §2/§6.1 deployment story."""

import ctypes
import os
import subprocess

import pytest

from repro import saveobj, terra
from repro.backend.c.runtime import find_cc
from repro.errors import CompileError


@pytest.fixture
def addmul():
    return terra("""
    terra helper(x : int) : int return x * 2 end
    terra addmul(a : int, b : int) : int
      return helper(a) + b
    end
    """)


class TestSaveObj:
    def test_save_c_source(self, addmul, tmp_path):
        path = str(tmp_path / "out.c")
        saveobj(path, {"addmul": addmul.addmul})
        text = open(path).read()
        assert "int32_t addmul(int32_t a0, int32_t a1)" in text
        # the helper is in the emitted unit too (connected component)
        assert "helper" in text

    def test_save_header(self, addmul, tmp_path):
        path = str(tmp_path / "out.h")
        saveobj(path, {"addmul": addmul.addmul})
        assert "int32_t addmul(int32_t, int32_t);" in open(path).read()

    def test_save_shared_and_load(self, addmul, tmp_path):
        path = str(tmp_path / "libout.so")
        saveobj(path, {"addmul": addmul.addmul})
        lib = ctypes.CDLL(path)
        lib.addmul.restype = ctypes.c_int32
        assert lib.addmul(10, 1) == 21

    def test_save_object_links_against_c(self, addmul, tmp_path):
        """The paper: 'we can save the Terra function to a .o file which
        can be linked to a normal C executable'."""
        obj = str(tmp_path / "out.o")
        saveobj(obj, {"addmul": addmul.addmul})
        main_c = tmp_path / "main.c"
        main_c.write_text("""
        #include <stdio.h>
        #include <stdint.h>
        int32_t addmul(int32_t, int32_t);
        int main(void) { printf("%d\\n", addmul(20, 2)); return 0; }
        """)
        exe = str(tmp_path / "main")
        subprocess.run([find_cc(), str(main_c), obj, "-o", exe], check=True)
        out = subprocess.run([exe], capture_output=True, text=True)
        assert out.stdout.strip() == "42"

    def test_bad_extension(self, addmul, tmp_path):
        with pytest.raises(CompileError, match="extension"):
            saveobj(str(tmp_path / "out.wasm"), {"f": addmul.addmul})

    def test_non_function_rejected(self, tmp_path):
        with pytest.raises(CompileError):
            saveobj(str(tmp_path / "out.c"), {"f": 42})

    def test_multiple_exports(self, tmp_path):
        fns = terra("""
        terra inc(x : int) : int return x + 1 end
        terra dec(x : int) : int return x - 1 end
        """)
        path = str(tmp_path / "multi.so")
        saveobj(path, {"inc": fns.inc, "dec": fns.dec})
        lib = ctypes.CDLL(path)
        assert lib.inc(1) == 2 and lib.dec(1) == 0


class TestFreestanding:
    def test_globals_become_c_globals(self, tmp_path):
        """Saved objects must not reference the Python process: Terra
        globals are emitted as real C globals with their initializers."""
        import ctypes
        from repro import global_, terra
        from repro.core import types as T
        g = global_(T.int32, 100, "persistent")
        fn = terra("""
        terra bump() : int
          g = g + 1
          return g
        end
        """, env={"g": g})
        path = str(tmp_path / "withglobal.so")
        saveobj(path, {"bump": fn})
        lib = ctypes.CDLL(path)
        lib.bump.restype = ctypes.c_int32
        assert lib.bump() == 101
        assert lib.bump() == 102  # state lives in the .so, not in Python
        # and no absolute process addresses leak into the source
        src_path = str(tmp_path / "withglobal.c")
        saveobj(src_path, {"bump": fn})
        assert "0x7f" not in open(src_path).read().lower()

    def test_aggregate_global_initializer(self, tmp_path):
        import ctypes
        from repro import global_, terra
        from repro.core import types as T
        g = global_(T.array(T.int32, 4), [10, 20, 30, 40], "table4")
        fn = terra("""
        terra total() : int
          var s = 0
          for i = 0, 4 do s = s + g[i] end
          return s
        end
        """, env={"g": g})
        path = str(tmp_path / "agg.so")
        saveobj(path, {"total": fn})
        lib = ctypes.CDLL(path)
        lib.total.restype = ctypes.c_int32
        assert lib.total() == 100

    def test_callbacks_rejected(self, tmp_path):
        from repro import functype, int_, pycallback, terra
        cb = pycallback(functype([int_], int_), lambda x: x)
        fn = terra("terra f(x : int) : int return cb(x) end", env={"cb": cb})
        with pytest.raises(CompileError, match="callback"):
            saveobj(str(tmp_path / "cb.c"), {"f": fn})
