"""Serving under the tiered execution policy: warm kernels start
interpreted, tier up in place, and the ``stats`` op reports per-tenant
tier counts plus the ``serve.tier_up`` counter."""

import pytest

from repro.exec import TieredPolicy, policy_override
from repro.serve import ServeConfig, ServerThread
from repro.trace.metrics import registry

SQ = """
terra sq(x : double) : double
  return x * x
end
"""

AXPY = """
terra axpy(n : int64, a : double, x : &double) : double
  var acc : double = 0.0
  for i = 0, n do
    x[i] = a * x[i]
    acc = acc + x[i]
  end
  return acc
end
"""


@pytest.fixture()
def tiered_server(tmp_path):
    sock = str(tmp_path / "serve-tiered.sock")
    with policy_override(TieredPolicy(threshold=2, sync=True)):
        with ServerThread(ServeConfig(socket_path=sock, workers=2)) as srv:
            yield srv


class TestTieredServing:
    def test_kernel_climbs_tiers_in_place(self, tiered_server):
        with tiered_server.client(tenant="t-hot") as c:
            # identical results on every call, whatever tier executes
            assert [c.call(SQ, "sq", [3.0]) for _ in range(4)] == [9.0] * 4
            tiers = c.stats()["tenants"]["t-hot"]["tiers"]
        assert tiers["tier0"] == 0      # crossed the threshold long ago
        assert tiers["tier1"] == 1
        # sq's only parameter is a double — never spliced (float guards
        # are unsound), so the kernel tiers up without a variant
        assert tiers["respecialized"] == 0

    def test_tier_counts_and_counter(self, tiered_server):
        before = registry().get("serve.tier_up")
        with tiered_server.client(tenant="t-a") as c:
            buf = c.alloc("float64", 8)
            c.write(buf, [1.0] * 8)
            for _ in range(3):
                c.call(AXPY, "axpy", [8, 1.0, {"buf": buf}])
            summary = c.stats()["tenants"]["t-a"]
        assert summary["tiers"]["tier1"] == 1
        assert registry().get("serve.tier_up") >= before + 1

    def test_cold_kernel_reports_tier0(self, tiered_server):
        with tiered_server.client(tenant="t-cold") as c:
            assert c.call(SQ, "sq", [2.0]) == 4.0    # one call: below threshold
            tiers = c.stats()["tenants"]["t-cold"]["tiers"]
        assert tiers == {"tier0": 1, "tier1": 0, "respecialized": 0}


def test_aot_serving_reports_no_tiers(tmp_path):
    """Without the tiered policy the summary's tier counts stay zero —
    warm kernels are plain ahead-of-time handles."""
    sock = str(tmp_path / "serve-aot.sock")
    with ServerThread(ServeConfig(socket_path=sock, workers=2)) as srv:
        with srv.client(tenant="t-plain") as c:
            for _ in range(4):
                assert c.call(SQ, "sq", [5.0]) == 25.0
            summary = c.stats()["tenants"]["t-plain"]
    assert summary["tiers"] == {"tier0": 0, "tier1": 0, "respecialized": 0}
