"""Fixtures for the serve test suite.

``server`` is one module-scoped live server (socket → asyncio →
executor → ctypes, the real thing); tests that need special knobs
(tiny admission caps, batch windows, one-kernel pools) start their own
:class:`~repro.serve.testing.ServerThread` with a custom config.
"""

import pytest

from repro.serve import ServeConfig, ServerThread

SQ = """
terra sq(x : double) : double
  return x * x
end
"""

SAXPY = """
terra saxpy(n : int64, a : double, x : &double, y : &double) : {}
  for i = 0, n do
    y[i] = a * x[i] + y[i]
  end
end
"""

#: traps only where a chunk covers i == 7 (1000 / 0)
POISON = """
terra poison(n : int64, out : &int64) : {}
  for i = 0, n do
    out[i] = 1000 / (i - 7)
  end
end
"""


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    sock = str(tmp_path_factory.mktemp("serve") / "serve.sock")
    with ServerThread(ServeConfig(socket_path=sock, workers=4)) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with server.client(tenant="t-main") as c:
        yield c
