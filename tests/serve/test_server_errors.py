"""Protocol error paths: every failure is one well-formed error response
with a code from the closed set — never a hang, never a dead connection
(except framing errors, where closing is the specified behaviour)."""

import json
import threading

import pytest

from repro.serve import ServeConfig, ServeError, ServerThread

from .conftest import SQ


def call_code(client, *args, **kwargs):
    """The error code a call produces (fails the test if it succeeds)."""
    with pytest.raises(ServeError) as ei:
        client.call(*args, **kwargs)
    return ei.value.code


class TestFraming:
    def test_malformed_json_line(self, server):
        with server.client() as c:
            resp = c.send_raw(b"this is not json\n")
        assert resp["ok"] is False
        assert resp["error"]["code"] == "bad-json"

    def test_non_object_json_line(self, server):
        with server.client() as c:
            resp = c.send_raw(b"[1,2,3]\n")
        assert resp["error"]["code"] == "bad-json"

    def test_connection_survives_a_bad_request(self, server):
        # semantic errors don't kill the stream: the same connection works
        with server.client() as c:
            resp = c.send_raw(json.dumps({"op": "nope"}).encode() + b"\n")
            assert resp["error"]["code"] == "unknown-op"
            assert c.ping()

    def test_oversized_request_line(self, tmp_path):
        cfg = ServeConfig(socket_path=str(tmp_path / "o.sock"), workers=2,
                          max_request_bytes=4096)
        with ServerThread(cfg) as srv:
            with srv.client() as c:
                big = json.dumps({"op": "ping", "pad": "x" * 8192})
                resp = c.send_raw(big.encode() + b"\n")
                assert resp["error"]["code"] == "oversized"
                # the stream position is untrustworthy: server closed it
                with pytest.raises((ConnectionError, OSError)):
                    c.send_raw(b'{"op":"ping"}\n')
            # new connections are unaffected
            with srv.client() as c2:
                assert c2.ping()


class TestRequestValidation:
    def test_unknown_op(self, server):
        with server.client() as c:
            with pytest.raises(ServeError) as ei:
                c.request({"op": "teleport"})
            assert ei.value.code == "unknown-op"

    def test_missing_required_fields(self, server):
        with server.client() as c:
            with pytest.raises(ServeError) as ei:
                c.request({"op": "call", "entry": "f"})  # no source
            assert ei.value.code == "bad-request"

    def test_ill_typed_fields(self, server):
        with server.client() as c:
            with pytest.raises(ServeError) as ei:
                c.request({"op": "call", "source": 42, "entry": "f"})
            assert ei.value.code == "bad-request"

    def test_bad_chunk_shape(self, server):
        with server.client() as c:
            with pytest.raises(ServeError) as ei:
                c.request({"op": "call", "source": SQ, "entry": "sq",
                           "args": [1.0], "chunk": [0]})
            assert ei.value.code == "bad-request"


class TestCompileAndEntryErrors:
    def test_syntax_error_is_compile_error(self, client):
        assert call_code(client, "terra broken(", "broken") == \
            "compile-error"

    def test_type_error_is_compile_error(self, client):
        src = """
        terra bad(x : int) : int
          return x + "a string"
        end
        """
        assert call_code(client, src, "bad", [1]) == "compile-error"

    def test_unknown_entry_lists_what_was_defined(self, client):
        with pytest.raises(ServeError) as ei:
            client.call(SQ, "missing", [1.0])
        assert ei.value.code == "unknown-entry"
        assert "sq" in str(ei.value)

    def test_sandboxed_environment_hides_server_names(self, client):
        # tenant source cannot capture the server's modules by name
        src = """
        terra leak() : int
          return [os.getpid()]
        end
        """
        assert call_code(client, src, "leak") == "compile-error"

    def test_wrong_arity_is_bad_request(self, client):
        assert call_code(client, SQ, "sq", [1.0, 2.0]) == "bad-request"

    def test_unsupported_return_type(self, client):
        src = """
        terra identity(p : &double) : &double
          return p
        end
        """
        buf = client.alloc("double", 2)
        assert call_code(client, src, "identity", [{"buf": buf}]) == \
            "unsupported"
        client.free(buf)


class TestRuntimeTraps:
    def test_trap_maps_to_the_trap_code(self, client):
        src = """
        terra div(a : int, b : int) : int
          return a / b
        end
        """
        assert client.call(src, "div", [10, 2]) == 5
        assert call_code(client, src, "div", [1, 0]) == "trap"

    def test_trap_mid_batch_fails_only_the_affected_request(self, tmp_path):
        """Two coalesced chunked requests: the range covering the poison
        iterate gets ``trap``; the other completes with its writes."""
        from .conftest import POISON
        cfg = ServeConfig(socket_path=str(tmp_path / "p.sock"), workers=4,
                          batch_window_s=0.1)
        n = 16
        with ServerThread(cfg) as srv:
            with srv.client(tenant="traps") as c:
                out = c.alloc("int64", n)
                c.write(out, [0] * n)
                args = [n, {"buf": out}]
                barrier = threading.Barrier(2)
                outcomes = {}

                def chunk_req(lo, hi):
                    with srv.client(tenant="traps") as cc:
                        barrier.wait()
                        try:
                            cc.call(POISON, "poison", args, chunk=(lo, hi))
                            outcomes[(lo, hi)] = "ok"
                        except ServeError as exc:
                            outcomes[(lo, hi)] = exc.code

                threads = [threading.Thread(target=chunk_req, args=rng)
                           for rng in [(0, 8), (8, 16)]]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                assert outcomes[(0, 8)] == "trap"      # covers i == 7
                assert outcomes[(8, 16)] == "ok"
                # the healthy chunk's writes landed (1000 // (i-7) in C
                # truncates toward zero)
                got = c.read(out, n)
                assert got[8:] == [1000 // (i - 7) for i in range(8, 16)]
                # the pool is not wedged: another call still works
                assert c.call(SQ, "sq", [5.0]) == 25.0


class TestAdmissionOverTheWire:
    SPIN = """
    terra spin(n : int64) : double
      var s : double = 0.0
      for i = 0, n do
        s = s + 1.0 / (1.0 + s)
      end
      return s
    end
    """
    N = 150_000_000  # ~0.5 s of serial dependent FP work

    def test_tenant_over_quota(self, tmp_path):
        cfg = ServeConfig(socket_path=str(tmp_path / "q.sock"), workers=4,
                          tenant_concurrency=1, queue_limit=64)
        with ServerThread(cfg) as srv:
            with srv.client(tenant="greedy") as warm:
                warm.call(self.SPIN, "spin", [1])  # compile outside timing
            started = threading.Event()
            done = []

            def long_call():
                with srv.client(tenant="greedy") as c:
                    started.set()
                    done.append(c.call(self.SPIN, "spin", [self.N]))

            t = threading.Thread(target=long_call)
            t.start()
            started.wait()
            import time
            time.sleep(0.1)  # let the long call be admitted
            with srv.client(tenant="greedy") as c:
                with pytest.raises(ServeError) as ei:
                    c.call(self.SPIN, "spin", [1])
                assert ei.value.code == "tenant-over-quota"
            # a different tenant is still served while greedy spins
            with srv.client(tenant="patient") as c:
                assert c.call(SQ, "sq", [2.0]) == 4.0
            t.join()
            assert done and done[0] > 0

    def test_global_overload(self, tmp_path):
        cfg = ServeConfig(socket_path=str(tmp_path / "g.sock"), workers=4,
                          tenant_concurrency=8, queue_limit=1)
        with ServerThread(cfg) as srv:
            with srv.client(tenant="a") as warm:
                warm.call(self.SPIN, "spin", [1])
            started = threading.Event()

            def long_call():
                with srv.client(tenant="a") as c:
                    started.set()
                    c.call(self.SPIN, "spin", [self.N])

            t = threading.Thread(target=long_call)
            t.start()
            started.wait()
            import time
            time.sleep(0.1)
            with srv.client(tenant="b") as c:
                with pytest.raises(ServeError) as ei:
                    c.call(SQ, "sq", [1.0])
                assert ei.value.code == "overloaded"
            t.join()
