"""Unit tests of per-tenant state: kernel LRU pools and resident buffers."""

import pytest

from repro.serve.protocol import ServeError
from repro.serve.state import (KernelPool, TenantState, WarmKernel,
                               kernel_key)


def fake_kernel(key):
    return WarmKernel(key, "f", fn=None, handle=None, chunked=False,
                      compile_s=0.0)


class TestKernelKey:
    def test_identity_covers_every_staging_input(self):
        base = kernel_key("src", "f", False, "c")
        assert kernel_key("src", "f", False, "c") == base
        assert kernel_key("src2", "f", False, "c") != base
        assert kernel_key("src", "g", False, "c") != base
        assert kernel_key("src", "f", True, "c") != base
        assert kernel_key("src", "f", False, "interp") != base


class TestKernelPool:
    def test_lru_eviction_beyond_quota(self):
        pool = KernelPool(2)
        for k in ("a", "b", "c"):
            evicted = pool.put(fake_kernel(k))
        assert [e.key for e in evicted] == ["a"]
        assert pool.keys() == ["b", "c"]
        assert pool.evictions == 1

    def test_get_refreshes_recency(self):
        pool = KernelPool(2)
        pool.put(fake_kernel("a"))
        pool.put(fake_kernel("b"))
        assert pool.get("a").key == "a"
        evicted = pool.put(fake_kernel("c"))
        assert [e.key for e in evicted] == ["b"]

    def test_get_counts_hits(self):
        pool = KernelPool(2)
        pool.put(fake_kernel("a"))
        pool.get("a")
        pool.get("a")
        assert pool.get("missing") is None
        assert pool.get("a").hits == 3


class TestBuffers:
    def make(self):
        return TenantState("t", kernel_quota=4)

    def test_alloc_write_read_round_trip(self):
        t = self.make()
        buf = t.alloc("double", 4)
        assert t.write(buf.id, 0, [1.5, 2.5]) == 2
        assert t.read(buf.id, 0, 4) == [1.5, 2.5, 0.0, 0.0]

    def test_integral_buffers_coerce_to_int(self):
        t = self.make()
        buf = t.alloc("int32", 2)
        t.write(buf.id, 0, [7, 2.0])
        assert t.read(buf.id, 0, 2) == [7, 2]

    def test_unknown_dtype(self):
        with pytest.raises(ServeError) as ei:
            self.make().alloc("complex128", 4)
        assert ei.value.code == "bad-request"

    def test_nonpositive_count(self):
        with pytest.raises(ServeError):
            self.make().alloc("double", 0)

    def test_per_buffer_byte_cap(self):
        with pytest.raises(ServeError) as ei:
            self.make().alloc("double", 1 << 40)
        assert "cap" in str(ei.value)

    def test_out_of_bounds_write_and_read(self):
        t = self.make()
        buf = t.alloc("double", 4)
        with pytest.raises(ServeError):
            t.write(buf.id, 3, [1.0, 2.0])
        with pytest.raises(ServeError):
            t.read(buf.id, 2, 3)
        with pytest.raises(ServeError):
            t.read(buf.id, -1, 2)

    def test_non_numeric_values_rejected(self):
        t = self.make()
        buf = t.alloc("double", 4)
        for bad in ("x", None, True, [1.0]):
            with pytest.raises(ServeError):
                t.write(buf.id, 0, [bad])

    def test_unknown_buffer(self):
        t = self.make()
        with pytest.raises(ServeError) as ei:
            t.read(99, 0, 1)
        assert ei.value.code == "unknown-buffer"

    def test_free_then_use_is_unknown(self):
        t = self.make()
        buf = t.alloc("double", 2)
        t.free(buf.id)
        with pytest.raises(ServeError) as ei:
            t.write(buf.id, 0, [1.0])
        assert ei.value.code == "unknown-buffer"

    def test_nan_reads_use_the_wire_encoding(self):
        t = self.make()
        buf = t.alloc("double", 2)
        t.write(buf.id, 0, [float("nan"), float("-inf")])
        assert t.read(buf.id, 0, 2) == [{"float": "nan"}, {"float": "-inf"}]


class TestResolveArgs:
    def test_numbers_strings_none_pass_through(self):
        t = TenantState("t", 4)
        assert t.resolve_args([1, 2.5, "s", None]) == [1, 2.5, "s", None]

    def test_buf_reference_resolves_to_ctypes_array(self):
        t = TenantState("t", 4)
        buf = t.alloc("double", 4)
        (resolved,) = t.resolve_args([{"buf": buf.id}])
        assert resolved is buf.cdata

    def test_float_wire_encoding_resolves(self):
        t = TenantState("t", 4)
        (v,) = t.resolve_args([{"float": "inf"}])
        assert v == float("inf")

    def test_foreign_buffer_id_is_unknown(self):
        a, b = TenantState("a", 4), TenantState("b", 4)
        buf = a.alloc("double", 4)
        with pytest.raises(ServeError) as ei:
            b.resolve_args([{"buf": buf.id}])
        assert ei.value.code == "unknown-buffer"

    def test_unresolvable_argument_shapes(self):
        t = TenantState("t", 4)
        for bad in ([1, 2], {"buf": 1, "extra": 2}, {"ptr": 3}):
            with pytest.raises(ServeError) as ei:
                t.resolve_args([bad])
            assert ei.value.code in ("bad-request", "unknown-buffer")
