"""Unit tests of admission control: the two fast-reject limits."""

from repro.serve.admission import Admission
from repro.serve.state import TenantState
from repro.trace.metrics import registry


def tenants(n):
    return [TenantState(f"t{i}", 4) for i in range(n)]


class TestGlobalBound:
    def test_admits_up_to_the_queue_limit(self):
        adm = Admission(queue_limit=2, tenant_limit=10)
        a, b, c = tenants(3)
        assert adm.try_admit(a) is None
        assert adm.try_admit(b) is None
        code, msg = adm.try_admit(c)
        assert code == "overloaded" and "retry" in msg

    def test_release_reopens_capacity(self):
        adm = Admission(queue_limit=1, tenant_limit=10)
        a, b = tenants(2)
        assert adm.try_admit(a) is None
        assert adm.try_admit(b) is not None
        adm.release(a)
        assert adm.try_admit(b) is None

    def test_rejection_does_not_mutate_counts(self):
        adm = Admission(queue_limit=1, tenant_limit=10)
        a, b = tenants(2)
        adm.try_admit(a)
        adm.try_admit(b)  # rejected
        assert adm.inflight == 1 and b.inflight == 0

    def test_rejections_are_counted(self):
        before = registry().get("serve.rejected.overloaded")
        adm = Admission(queue_limit=1, tenant_limit=10)
        a, b = tenants(2)
        adm.try_admit(a)
        adm.try_admit(b)
        assert registry().get("serve.rejected.overloaded") == before + 1


class TestTenantCap:
    def test_one_tenant_cannot_starve_another(self):
        adm = Admission(queue_limit=100, tenant_limit=2)
        noisy, quiet = tenants(2)
        assert adm.try_admit(noisy) is None
        assert adm.try_admit(noisy) is None
        code, _ = adm.try_admit(noisy)
        assert code == "tenant-over-quota"
        assert adm.try_admit(quiet) is None  # the quiet tenant still admits

    def test_tenant_release_is_per_tenant(self):
        adm = Admission(queue_limit=100, tenant_limit=1)
        a, b = tenants(2)
        adm.try_admit(a)
        adm.try_admit(b)
        adm.release(a)
        assert adm.try_admit(a) is None
        assert adm.try_admit(b) is not None  # b still at its cap

    def test_peak_tracks_high_water_mark(self):
        adm = Admission(queue_limit=100, tenant_limit=100)
        a, b = tenants(2)
        adm.try_admit(a)
        adm.try_admit(b)
        adm.release(a)
        adm.release(b)
        assert adm.peak == 2 and adm.inflight == 0
