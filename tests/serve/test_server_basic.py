"""End-to-end happy paths over a live server (socket → loop → executor)."""

import threading

from repro.serve import ServeConfig, ServerThread
from repro.trace.metrics import registry

from .conftest import SAXPY, SQ


class TestCalls:
    def test_ping_and_stats(self, client):
        assert client.ping()
        stats = client.stats()
        assert stats["workers"] >= 1
        assert "counters" in stats and "tenants" in stats

    def test_cold_then_warm_scalar_call(self, client):
        before = registry().get("serve.cache_hit")
        assert client.call(SQ, "sq", [3.0], tenant="warmth") == 9.0
        assert client.call(SQ, "sq", [4.0], tenant="warmth") == 16.0
        assert registry().get("serve.cache_hit") == before + 1

    def test_multi_definition_source_selects_the_entry(self, client):
        src = """
        terra first(x : int) : int
          return x + 1
        end
        terra second(x : int) : int
          return x * 10
        end
        """
        assert client.call(src, "second", [4]) == 40
        assert client.call(src, "first", [4]) == 5

    def test_buffer_round_trip_through_a_kernel(self, client):
        n = 16
        xs = client.alloc("double", n)
        ys = client.alloc("double", n)
        client.write(xs, [float(i) for i in range(n)])
        client.write(ys, [1.0] * n)
        client.call(SAXPY, "saxpy", [n, 3.0, {"buf": xs}, {"buf": ys}])
        assert client.read(ys, n) == [3.0 * i + 1.0 for i in range(n)]
        client.free(xs)
        client.free(ys)

    def test_chunked_call_covers_exactly_the_range(self, client):
        n = 32
        xs = client.alloc("double", n)
        ys = client.alloc("double", n)
        client.write(xs, [1.0] * n)
        client.write(ys, [0.0] * n)
        args = [n, 2.0, {"buf": xs}, {"buf": ys}]
        client.call(SAXPY, "saxpy", args, chunk=(0, 10))
        got = client.read(ys, n)
        assert got[:10] == [2.0] * 10 and got[10:] == [0.0] * 22
        client.free(xs)
        client.free(ys)


class TestTenancy:
    def test_tenants_do_not_share_buffers(self, server):
        with server.client(tenant="alice") as alice, \
                server.client(tenant="bob") as bob:
            buf = alice.alloc("double", 8)
            alice.write(buf, [5.0] * 8)
            from repro.serve import ServeError
            try:
                bob.read(buf, 8)
                raise AssertionError("bob read alice's buffer")
            except ServeError as exc:
                assert exc.code == "unknown-buffer"

    def test_tenants_have_independent_warm_pools(self, server):
        src = """
        terra twice(x : int) : int
          return x + x
        end
        """
        before = registry().get("serve.compile")
        with server.client(tenant="pool-a") as a:
            assert a.call(src, "twice", [21]) == 42
        with server.client(tenant="pool-b") as b:
            assert b.call(src, "twice", [21]) == 42
        # both tenants staged their own kernel (buildd dedups the gcc run
        # one layer down, but the warm pools are private by design)
        assert registry().get("serve.compile") == before + 2

    def test_stats_reports_per_tenant_summaries(self, server):
        stats = server.stats()
        pools = stats["tenants"]
        assert "pool-a" in pools and "pool-b" in pools
        assert pools["pool-a"]["kernels"] >= 1


class TestWarmPoolEviction:
    def test_quota_one_evicts_and_recompiles(self, tmp_path):
        cfg = ServeConfig(socket_path=str(tmp_path / "e.sock"), workers=2,
                          tenant_kernels=1)
        k1 = "terra one(x : int) : int return x + 1 end"
        k2 = "terra two(x : int) : int return x + 2 end"
        with ServerThread(cfg) as srv:
            with srv.client(tenant="evictee") as c:
                before = registry().get("serve.compile")
                assert c.call(k1, "one", [0]) == 1
                assert c.call(k2, "two", [0]) == 2   # evicts one
                assert c.call(k1, "one", [0]) == 1   # recompile (staging)
                assert registry().get("serve.compile") == before + 3
                summary = c.stats()["tenants"]["evictee"]
                assert summary["kernels"] == 1
                assert summary["kernel_evictions"] == 2


class TestConcurrentClients:
    def test_many_connections_interleave(self, server):
        errors = []

        def worker(i):
            try:
                with server.client(tenant=f"conc-{i % 3}") as c:
                    for x in range(4):
                        assert c.call(SQ, "sq", [float(x)]) == float(x * x)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_identical_cold_kernels_dedup_server_side(self, tmp_path):
        cfg = ServeConfig(socket_path=str(tmp_path / "d.sock"), workers=4)
        src = """
        terra dedup_me(x : double) : double
          return x + 0.5
        end
        """
        with ServerThread(cfg) as srv:
            before = registry().get("serve.compile_dedup")
            barrier = threading.Barrier(4)
            results = []

            def racer():
                with srv.client(tenant="race") as c:
                    barrier.wait()
                    results.append(c.call(src, "dedup_me", [1.0]))

            threads = [threading.Thread(target=racer) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert results == [1.5] * 4
            # at least one of the four racers joined an in-flight staging
            assert registry().get("serve.compile_dedup") > before
