"""Unit tests of the wire protocol: framing, validation, marshalling."""

import math

import pytest

from repro.serve import protocol
from repro.serve.protocol import ERROR_CODES, ServeError


class TestFraming:
    def test_encode_round_trips_through_decode(self):
        obj = {"op": "call", "args": [1, 2.5, None, "s"], "id": 9}
        line = protocol.encode(obj)
        assert line.endswith(b"\n") and b"\n" not in line[:-1]
        assert protocol.decode(line) == obj

    def test_non_json_is_bad_json(self):
        with pytest.raises(ServeError) as ei:
            protocol.decode(b"{nope\n")
        assert ei.value.code == "bad-json"

    def test_non_object_is_bad_json(self):
        with pytest.raises(ServeError) as ei:
            protocol.decode(b"[1, 2]\n")
        assert ei.value.code == "bad-json"

    def test_error_codes_are_a_closed_set(self):
        with pytest.raises(AssertionError):
            protocol.error_response(1, "not-a-code", "whatever")
        assert "trap" in ERROR_CODES and "overloaded" in ERROR_CODES

    def test_responses_echo_the_request_id(self):
        assert protocol.ok_response(7, 42) == {"id": 7, "ok": True,
                                               "result": 42}
        err = protocol.error_response(None, "trap", "boom")
        assert "id" not in err and err["ok"] is False
        assert err["error"]["code"] == "trap"


class TestFieldValidation:
    def test_missing_required_field(self):
        with pytest.raises(ServeError) as ei:
            protocol.field({}, "source", str, required=True)
        assert ei.value.code == "bad-request"

    def test_default_applies_when_absent(self):
        assert protocol.field({}, "args", list, default=[]) == []

    def test_wrong_type_rejected(self):
        with pytest.raises(ServeError) as ei:
            protocol.field({"count": "five"}, "count", int)
        assert ei.value.code == "bad-request"

    def test_bool_is_not_an_int(self):
        # JSON true must not satisfy an integer field despite bool <: int
        with pytest.raises(ServeError):
            protocol.field({"count": True}, "count", int)

    def test_chunk_range_validation(self):
        assert protocol.chunk_range({}) is None
        assert protocol.chunk_range({"chunk": [0, 8]}) == (0, 8)
        for bad in ([0], [0, 1, 2], [0, "x"], [0, True], "0..8", [8, 0]):
            with pytest.raises(ServeError):
                protocol.chunk_range({"chunk": bad})


class TestResultMarshalling:
    def test_scalars_pass_through(self):
        assert protocol.jsonable_result(None, "f") is None
        assert protocol.jsonable_result(42, "f") == 42
        assert protocol.jsonable_result(2.5, "f") == 2.5
        assert protocol.jsonable_result(True, "f") is True

    def test_nan_and_inf_are_encoded_as_objects(self):
        assert protocol.jsonable_result(float("nan"), "f") == {"float": "nan"}
        assert protocol.jsonable_result(float("inf"), "f") == {"float": "inf"}
        assert protocol.jsonable_result(float("-inf"), "f") == \
            {"float": "-inf"}

    def test_client_side_inverse(self):
        assert math.isnan(protocol.from_wire_result({"float": "nan"}))
        assert protocol.from_wire_result({"float": "-inf"}) == float("-inf")
        assert protocol.from_wire_result([1, 2.5]) == (1, 2.5)
        assert protocol.from_wire_result(7) == 7

    def test_tuples_become_lists(self):
        assert protocol.jsonable_result((1, 2.0), "f") == [1, 2.0]

    def test_unsupported_return_type(self):
        with pytest.raises(ServeError) as ei:
            protocol.jsonable_result(object(), "f")
        assert ei.value.code == "unsupported"
