"""Request coalescing: same-kernel chunked requests share one dispatch."""

import threading

from repro.serve import ServeConfig, ServerThread
from repro.trace.metrics import registry

from .conftest import SAXPY


def run_concurrent(n_threads, fn):
    barrier = threading.Barrier(n_threads)
    errors = []

    def wrapped(i):
        try:
            barrier.wait()
            fn(i)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,))
               for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors


class TestCoalescing:
    def test_concurrent_same_kernel_chunks_batch_up(self, tmp_path):
        cfg = ServeConfig(socket_path=str(tmp_path / "b.sock"), workers=4,
                          batch_window_s=0.1)
        n, parts = 64, 4
        with ServerThread(cfg) as srv:
            with srv.client(tenant="batcher") as c:
                xs = c.alloc("double", n)
                ys = c.alloc("double", n)
                c.write(xs, [float(i) for i in range(n)])
                c.write(ys, [0.0] * n)
                c.call(SAXPY, "saxpy",
                       [1, 0.0, {"buf": xs}, {"buf": ys}],
                       chunk=(0, 1))  # compile before the timed window
                c.write(ys, [0.0] * n)
                args = [n, 2.0, {"buf": xs}, {"buf": ys}]
                step = n // parts
                before_b = registry().get("serve.batches")
                before_r = registry().get("serve.batched_requests")

                def send(i):
                    with srv.client(tenant="batcher") as cc:
                        cc.call(SAXPY, "saxpy", args,
                                chunk=(i * step, (i + 1) * step))

                run_concurrent(parts, send)
                # all requests ran, in fewer dispatches than requests
                ran = registry().get("serve.batched_requests") - before_r
                batches = registry().get("serve.batches") - before_b
                assert ran == parts
                assert batches < parts
                assert registry().get("serve.batch_max") >= 2
                # and the math is exactly a full-range saxpy
                assert c.read(ys, n) == [2.0 * i for i in range(n)]

    def test_different_args_never_share_a_batch(self, tmp_path):
        cfg = ServeConfig(socket_path=str(tmp_path / "b2.sock"), workers=4,
                          batch_window_s=0.05)
        n = 16
        with ServerThread(cfg) as srv:
            with srv.client(tenant="apart") as c:
                xs = c.alloc("double", n)
                ys = c.alloc("double", n)
                zs = c.alloc("double", n)
                c.write(xs, [1.0] * n)
                c.write(ys, [0.0] * n)
                c.write(zs, [0.0] * n)
                c.call(SAXPY, "saxpy", [1, 0.0, {"buf": xs}, {"buf": ys}],
                       chunk=(0, 1))
                c.write(ys, [0.0] * n)
                before = registry().get("serve.batches")

                def send(i):
                    out = ys if i == 0 else zs  # distinct args: no sharing
                    with srv.client(tenant="apart") as cc:
                        cc.call(SAXPY, "saxpy",
                                [n, float(i + 1), {"buf": xs},
                                 {"buf": out}], chunk=(0, n))

                run_concurrent(2, send)
                assert registry().get("serve.batches") - before == 2
                assert c.read(ys, n) == [1.0] * n
                assert c.read(zs, n) == [2.0] * n

    def test_batches_are_tenant_private(self, tmp_path):
        # same kernel, same ranges, two tenants: two dispatches
        cfg = ServeConfig(socket_path=str(tmp_path / "b3.sock"), workers=4,
                          batch_window_s=0.05)
        n = 8
        with ServerThread(cfg) as srv:
            bufs = {}
            for tenant in ("red", "blue"):
                with srv.client(tenant=tenant) as c:
                    xs = c.alloc("double", n)
                    ys = c.alloc("double", n)
                    c.write(xs, [1.0] * n)
                    c.write(ys, [0.0] * n)
                    c.call(SAXPY, "saxpy",
                           [1, 0.0, {"buf": xs}, {"buf": ys}], chunk=(0, 1))
                    c.write(ys, [0.0] * n)
                    bufs[tenant] = (xs, ys)
            before = registry().get("serve.batches")

            def send(i):
                tenant = ("red", "blue")[i]
                xs, ys = bufs[tenant]
                with srv.client(tenant=tenant) as cc:
                    cc.call(SAXPY, "saxpy",
                            [n, 1.0, {"buf": xs}, {"buf": ys}], chunk=(0, n))

            run_concurrent(2, send)
            assert registry().get("serve.batches") - before == 2
