"""Terra Core semantics tests — every inline example of paper §3–4.1."""

import pytest

from repro.corecalc import machine as M
from repro.corecalc import terms as t
from repro.errors import LinkError, SpecializeError, TypeCheckError

B = t.B
ARR = t.Arrow(B, B)


def lint(v):
    return t.LBase(v)


def ter(target, param, body, ptype=B, rtype=B):
    return t.LTDefn(target, param, t.LType(ptype), t.LType(rtype), body)


class TestBasicEvaluation:
    def test_let_and_var(self):
        v, _ = M.run(t.LLet("x", lint(5), t.LVar("x")))
        assert v == 5

    def test_assignment(self):
        prog = t.LLet("x", lint(1),
                      t.seq(t.LAssign("x", lint(2)), t.LVar("x")))
        v, _ = M.run(prog)
        assert v == 2

    def test_closure_application(self):
        prog = t.LLet("f", t.LFun("x", t.LVar("x")),
                      t.LApp(t.LVar("f"), lint(9)))
        v, _ = M.run(prog)
        assert v == 9

    def test_lexical_scoping_of_closures(self):
        # fun captures its defining environment
        prog = t.LLet(
            "x", lint(10),
            t.LLet("f", t.LFun("y", t.LVar("x")),
                   t.LLet("x", lint(99), t.LApp(t.LVar("f"), lint(0)))))
        v, _ = M.run(prog)
        assert v == 10


class TestTerraFunctions:
    def test_identity_function(self):
        """let x = ter tdecl(x2 : int) : int { x2 } in x(7)"""
        prog = t.LLet("x", ter(t.LTDecl(), "x2", t.TVar("x2")),
                      t.LApp(t.LVar("x"), lint(7)))
        v, _ = M.run(prog)
        assert v == 7

    def test_declare_then_define(self):
        """let x = tdecl in (ter x(x2:int):int { x2 }; x(3))"""
        prog = t.LLet(
            "x", t.LTDecl(),
            t.seq(ter(t.LVar("x"), "x2", t.TVar("x2")),
                  t.LApp(t.LVar("x"), lint(3))))
        v, _ = M.run(prog)
        assert v == 3

    def test_redefinition_rejected(self):
        prog = t.LLet(
            "x", ter(t.LTDecl(), "a", t.TVar("a")),
            ter(t.LVar("x"), "a", t.TVar("a")))
        with pytest.raises(M.CoreError, match="already defined"):
            M.run(prog)

    def test_call_undefined_is_link_error(self):
        prog = t.LLet("x", t.LTDecl(), t.LApp(t.LVar("x"), lint(1)))
        with pytest.raises(LinkError):
            M.run(prog)


class TestEagerSpecialization:
    def test_paper_mutation_example(self):
        """Paper §4.1: 'let x1 = 0 in let y = ter tdecl(x2:int):int { x1 }
        in x1 := 1; y(0)' evaluates to 0 because specialization is eager."""
        prog = t.LLet(
            "x1", lint(0),
            t.LLet("y", ter(t.LTDecl(), "x2", t.TEscape(t.LVar("x1"))),
                   t.seq(t.LAssign("x1", lint(1)),
                         t.LApp(t.LVar("y"), lint(0)))))
        v, _ = M.run(prog)
        assert v == 0

    def test_paper_separate_evaluation_example(self):
        """Paper §4.1: 'let x1 = 1 in let y = ter tdecl(x2:int):int { x1 }
        in x1 := 2; y(0)' evaluates to 1 — Terra runs independently of S."""
        prog = t.LLet(
            "x1", lint(1),
            t.LLet("y", ter(t.LTDecl(), "x2", t.TEscape(t.LVar("x1"))),
                   t.seq(t.LAssign("x1", lint(2)),
                         t.LApp(t.LVar("y"), lint(0)))))
        v, _ = M.run(prog)
        assert v == 1

    def test_bare_variable_in_terra_behaves_as_escaped(self):
        """SVAR: a Lua-bound name inside Terra code resolves through the
        shared environment, exactly like an escape."""
        prog = t.LLet(
            "c", lint(5),
            t.LLet("f", ter(t.LTDecl(), "x", t.TVar("c")),
                   t.LApp(t.LVar("f"), lint(0))))
        v, _ = M.run(prog)
        assert v == 5


class TestSharedEnvironmentAndQuotes:
    def test_paper_quote_shared_env(self):
        """Paper §4.1: 'let x1 = 0 in 'tlet y1 : int = 1 in x1' specializes
        the quote in the surrounding environment, giving tlet ȳ = 1 in 0."""
        prog = t.LLet("x1", lint(0),
                      t.LQuote(t.TLet("y1", t.LType(B), t.TBase(1),
                                      t.TVar("x1"))))
        v, _ = M.run(prog)
        assert isinstance(v, t.SLet)
        assert v.body == t.SBase(0)   # x1 became the constant 0

    def test_spliced_quote_in_function(self):
        """The quote from the previous test spliced into a function body
        (the paper's x2/x3 example): calling it yields 0."""
        quote = t.LQuote(t.TLet("y1", t.LType(B), t.TBase(1), t.TVar("x1")))
        prog = t.LLet(
            "x1", lint(0),
            t.LLet("x2", quote,
                   t.LLet("x3", ter(t.LTDecl(), "y2",
                                    t.TEscape(t.LVar("x2"))),
                          t.LApp(t.LVar("x3"), lint(42)))))
        v, _ = M.run(prog)
        assert v == 0


class TestHygiene:
    def test_paper_capture_avoidance_example(self):
        """Paper §4.1's hygiene example:

            let x1 = fun(x2){ 'tlet y : int = 0 in [x2] } in
            let x3 = ter tdecl(y : int) : int { [x1(y)] } in x3

        Without renaming, the tlet's y would capture the parameter y and
        x3(42) would return 0; with hygiene it returns 42.
        """
        make_quote = t.LFun(
            "x2", t.LQuote(t.TLet("y", t.LType(B), t.TBase(0),
                                  t.TEscape(t.LVar("x2")))))
        prog = t.LLet(
            "x1", make_quote,
            t.LLet("x3", ter(t.LTDecl(), "y",
                             t.TEscape(t.LApp(t.LVar("x1"), t.LVar("y")))),
                   t.LApp(t.LVar("x3"), lint(42))))
        v, _ = M.run(prog)
        assert v == 42

    def test_nested_tlets_fresh(self):
        prog = t.LLet(
            "f", ter(t.LTDecl(), "x",
                     t.TLet("x", t.LType(B), t.TBase(1),
                            t.TVar("x"))),
            t.LApp(t.LVar("f"), lint(9)))
        v, state = M.run(prog)
        assert v == 1  # the inner tlet shadows the parameter
        # and the two variables have distinct symbols
        fdef = next(d for d in state.functions.values() if d)
        assert isinstance(fdef.body, t.SLet)
        assert fdef.body.symbol != fdef.symbol


class TestTypeReflection:
    def test_paper_polymorphic_identity(self):
        """Paper §4.1: 'let x3 = fun(x1){ ter tdecl(x2 : x1) : x1 { x2 } }
        in x3(int)(1)' — a Lua function generating a Terra identity
        function for any given type."""
        prog = t.LLet(
            "x3", t.LFun("x1", t.LTDefn(t.LTDecl(), "x2", t.LVar("x1"),
                                        t.LVar("x1"), t.TVar("x2"))),
            t.LApp(t.LApp(t.LVar("x3"), t.LType(B)), lint(1)))
        v, _ = M.run(prog)
        assert v == 1

    def test_annotation_must_be_type(self):
        prog = t.LTDefn(t.LTDecl(), "x", lint(42), t.LType(B), t.TVar("x"))
        with pytest.raises(SpecializeError):
            M.run(prog)


class TestLazyTypechecking:
    def test_mutual_recursion_connected_component(self):
        """The paper's mutual-recursion pattern: declare x2, define x1
        referencing it, define x2 referencing x1, call x1."""
        prog = t.LLet(
            "x2", t.LTDecl(),
            t.LLet(
                "x1", ter(t.LTDecl(), "y",
                          t.TApp(t.TVar("x2"), t.TVar("y"))),
                t.seq(ter(t.LVar("x2"), "y",
                          t.TApp(t.TVar("x1"), t.TVar("y"))),
                      lint(1))))
        # typechecking the component must succeed (no infinite loop)
        v, state = M.run(prog)
        assert v == 1
        for addr in state.functions:
            M.typecheck_function(addr, state)

    def test_type_error_surfaces_at_call(self):
        """An ill-typed body only errors when the function is called."""
        bad = ter(t.LTDecl(), "x",
                  t.TApp(t.TVar("x"), t.TBase(1)))  # applying a base value
        prog = t.LLet("f", bad, lint(0))
        v, _ = M.run(prog)
        assert v == 0  # defining it is fine
        prog2 = t.LLet("f", bad, t.LApp(t.LVar("f"), lint(1)))
        with pytest.raises(TypeCheckError):
            M.run(prog2)

    def test_monotonic_after_definition(self):
        state = M.State()
        # declare g, define f calling g; typecheck f -> link error
        g = state.fresh_function()
        v = M.eval_lua(
            ter(t.LTDecl(), "x", t.TApp(t.TEscape(t.LVar("g")),
                                        t.TVar("x"))),
            M.bind(M.EMPTY_ENV, "g", _store(state, t.SFunc(g))), state)
        with pytest.raises(LinkError):
            M.typecheck_function(v.address, state)
        # define g; the same typecheck now succeeds (monotonicity)
        state.functions[g] = t.FuncDef(state.fresh_symbol(), B, B,
                                       t.SBase(0))
        ftype = M.typecheck_function(v.address, state)
        assert ftype == ARR

    def test_only_base_values_cross_boundary(self):
        prog = t.LLet(
            "f", ter(t.LTDecl(), "x", t.TVar("x")),
            t.LApp(t.LVar("f"), t.LFun("y", t.LVar("y"))))
        with pytest.raises(M.CoreError, match="base values"):
            M.run(prog)


def _store(state, value):
    addr = state.fresh_addr()
    state.store[addr] = value
    return addr
