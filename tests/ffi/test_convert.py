"""FFI conversion tests — Python↔Terra value translation (paper §4.2)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import struct, terra
from repro.core import types as T
from repro.errors import FFIError
from repro.ffi import convert
from repro.ffi.cdata import CPointer, CStruct


class TestPrimitives:
    def test_int_conversion(self):
        assert convert.python_to_primitive(5, T.int32) == 5

    def test_int_wraps(self):
        assert convert.python_to_primitive(300, T.int8) == 44

    def test_whole_float_to_int(self):
        assert convert.python_to_primitive(4.0, T.int32) == 4

    def test_fractional_float_to_int_rejected(self):
        with pytest.raises(FFIError):
            convert.python_to_primitive(4.5, T.int32)

    def test_float_rounds_to_f32(self):
        v = convert.python_to_primitive(0.1, T.float32)
        assert v == np.float32(0.1)

    def test_bool(self):
        assert convert.python_to_primitive(1, T.bool_) is True

    @given(st.integers())
    def test_int_in_range(self, v):
        r = convert.python_to_primitive(v, T.int16)
        assert T.int16.min_value() <= r <= T.int16.max_value()


class TestStructs:
    def setup_method(self):
        self.S = T.struct("FfiS", [("a", T.int32), ("b", T.float64),
                                   ("p", T.pointer(T.int8))])

    def test_dict_to_blob(self):
        blob = convert.python_to_blob({"a": 1, "b": 2.5, "p": None}, self.S)
        assert len(blob) == self.S.sizeof()
        back = convert.blob_to_python(blob, self.S)
        assert back.a == 1 and back.b == 2.5 and back.p.isnull()

    def test_tuple_to_blob(self):
        blob = convert.python_to_blob((7, 1.5, 0), self.S)
        assert convert.blob_to_python(blob, self.S).a == 7

    def test_missing_field_rejected(self):
        with pytest.raises(FFIError, match="missing"):
            convert.python_to_blob({"a": 1}, self.S)

    def test_wrong_count_rejected(self):
        with pytest.raises(FFIError):
            convert.python_to_blob((1, 2), self.S)

    def test_nested_struct(self):
        inner = T.struct("FfiI", [("x", T.int16)])
        outer = T.struct("FfiO", [("i", inner), ("y", T.int64)])
        blob = convert.python_to_blob({"i": {"x": 3}, "y": 9}, outer)
        back = convert.blob_to_python(blob, outer)
        assert back.i.x == 3 and back.y == 9

    def test_array_blob(self):
        arr = T.array(T.int32, 3)
        blob = convert.python_to_blob([1, 2, 3], arr)
        back = convert.blob_to_python(blob, arr)
        assert back.totuple() == (1, 2, 3)


class TestPointers:
    def test_none_is_null(self):
        assert convert.pointer_address(None, T.rawstring) == (0, None)

    def test_int_address(self):
        addr, _ = convert.pointer_address(0x1234, T.rawstring)
        assert addr == 0x1234

    def test_numpy_checked(self):
        arr = np.zeros(4, dtype=np.float32)
        addr, keep = convert.pointer_address(arr, T.pointer(T.float32))
        assert addr == arr.ctypes.data and keep is arr

    def test_numpy_wrong_dtype(self):
        with pytest.raises(FFIError, match="dtype"):
            convert.pointer_address(np.zeros(4, dtype=np.int32),
                                    T.pointer(T.float32))

    def test_non_contiguous_rejected(self):
        arr = np.zeros((4, 4), dtype=np.float64)[:, ::2]
        with pytest.raises(FFIError, match="contiguous"):
            convert.pointer_address(arr, T.pointer(T.float64))

    def test_str_nul_terminated(self):
        addr, keep = convert.pointer_address("hi", T.rawstring)
        import ctypes
        assert ctypes.string_at(addr) == b"hi"
        del keep


class TestStructArgsEndToEnd:
    def test_struct_by_value_arg(self, backend):
        S = struct("struct ArgS { a : int, b : double }")
        f = terra("terra f(s : ArgS) : double return s.a + s.b end",
                  env={"ArgS": S})
        assert f.compile(backend)({"a": 2, "b": 0.5}) == 2.5
        assert f.compile(backend)((3, 1.5)) == 4.5

    def test_struct_return_to_python(self, backend):
        S = struct("struct RetS { a : int, b : double }")
        f = terra("terra f() : RetS return RetS { 7, 1.25 } end",
                  env={"RetS": S})
        out = f.compile(backend)()
        assert isinstance(out, CStruct)
        assert out.a == 7 and out.b == 1.25

    def test_cstruct_roundtrip_through_call(self, backend):
        S = struct("struct RtS { a : int }")
        fns = terra("""
        terra make(v : int) : RtS return RtS { v } end
        terra read(s : RtS) : int return s.a end
        """, env={"RtS": S})
        s = fns.make.compile(backend)(11)
        assert fns.read.compile(backend)(s) == 11

    def test_pointer_return_wrapped(self, backend):
        std = __import__("repro").includec("stdlib.h")
        f = terra("""
        terra f() : &int
          var p = [&int](std.malloc(4))
          @p = 5
          return p
        end
        terra g(p : &int) : int
          var v = @p
          std.free(p)
          return v
        end
        """, env={"std": std})
        p = f.f.compile(backend)()
        assert isinstance(p, CPointer)
        assert f.g.compile(backend)(p) == 5


class TestAggregateEdges:
    def test_struct_containing_array_roundtrip(self, backend):
        S = struct("struct ArrInS { tag : int, values : double[3] }")
        fns = terra("""
        terra make(a : double, b : double, c : double) : ArrInS
          var s : ArrInS
          s.tag = 7
          s.values[0] = a
          s.values[1] = b
          s.values[2] = c
          return s
        end
        terra total(s : ArrInS) : double
          return s.values[0] + s.values[1] + s.values[2]
        end
        """, env={"ArrInS": S})
        s = fns.make.compile(backend)(1.0, 2.0, 3.5)
        assert s.tag == 7
        assert s.field("values").totuple() == (1.0, 2.0, 3.5)
        assert fns.total.compile(backend)(s) == 6.5

    def test_struct_arg_from_dict_with_array(self, backend):
        S = struct("struct ArrInS2 { values : int[4] }")
        f = terra("""
        terra f(s : ArrInS2) : int
          var t = 0
          for i = 0, 4 do t = t + s.values[i] end
          return t
        end
        """, env={"ArrInS2": S})
        assert f.compile(backend)({"values": [1, 2, 3, 4]}) == 10

    def test_nested_struct_byval(self, backend):
        inner = struct("struct NIn { x : int8, y : int64 }")
        outer = struct("struct NOut { a : NIn, b : int16 }",
                       env={"NIn": inner})
        f = terra("""
        terra f(o : NOut) : int64
          return o.a.x + o.a.y + o.b
        end
        """, env={"NOut": outer})
        assert f.compile(backend)({"a": {"x": 1, "y": 10}, "b": 100}) == 111
