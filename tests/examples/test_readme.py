"""The README's code blocks must actually run."""

import os
import re

import pytest

README = os.path.join(os.path.dirname(__file__), "..", "..", "README.md")


def python_blocks():
    text = open(README).read()
    return re.findall(r"```python\n(.*?)```", text, re.S)


def test_readme_has_python_blocks():
    assert len(python_blocks()) >= 2


@pytest.mark.parametrize("index", range(len(python_blocks())))
def test_readme_block_runs(index):
    block = python_blocks()[index]
    namespace: dict = {"__name__": "__readme__"}
    exec(compile(block, f"<README block {index}>", "exec"), namespace)
