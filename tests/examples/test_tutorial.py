"""The tutorial's code blocks must actually run (same policy as README)."""

import os
import re

import pytest

TUTORIAL = os.path.join(os.path.dirname(__file__), "..", "..", "docs",
                        "TUTORIAL.md")


def python_blocks():
    text = open(TUTORIAL).read()
    return re.findall(r"```python\n(.*?)```", text, re.S)


def test_tutorial_has_blocks():
    assert len(python_blocks()) >= 5


@pytest.mark.parametrize("index", range(len(python_blocks())))
def test_tutorial_block_runs(index):
    block = python_blocks()[index]
    namespace: dict = {"__name__": "__tutorial__"}
    exec(compile(block, f"<TUTORIAL block {index}>", "exec"), namespace)
