"""Documentation code blocks must actually run.

One runner for every doc that promises executable snippets: it extracts
fenced ```python blocks from the README, the tutorial, and the
observability guide and executes each in a fresh namespace.  A block
whose info string contains ``no-run`` (e.g. ```` ```python no-run ````)
is displayed-only and skipped.
"""

import os
import re

import pytest

_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")

#: (document, minimum number of runnable blocks it must keep)
DOCS = [
    ("README.md", 2),
    (os.path.join("docs", "TUTORIAL.md"), 8),
    (os.path.join("docs", "OBSERVABILITY.md"), 3),
    (os.path.join("docs", "FRONTENDS.md"), 2),
    (os.path.join("docs", "SCHEDULES.md"), 1),
]

_FENCE = re.compile(r"```python([^\n]*)\n(.*?)```", re.S)


def blocks_of(relpath):
    """Runnable (index, source) pairs for one document."""
    text = open(os.path.join(_ROOT, relpath)).read()
    out = []
    for i, match in enumerate(_FENCE.finditer(text)):
        info, body = match.group(1).strip(), match.group(2)
        if "no-run" in info:
            continue
        out.append((i, body))
    return out


def _cases():
    for relpath, _ in DOCS:
        for index, source in blocks_of(relpath):
            yield pytest.param(relpath, index, source,
                               id=f"{os.path.basename(relpath)}-{index}")


@pytest.mark.parametrize("relpath,index,source", list(_cases()))
def test_block_runs(relpath, index, source, tmp_path):
    # materialize the block as a real file so snippets that use the
    # @terra decorator (which reads its function's source via inspect)
    # work exactly like user code in a module
    path = tmp_path / f"snippet_{index}.py"
    path.write_text(source)
    namespace = {"__name__": f"__doc_snippet_{index}__"}
    exec(compile(source, str(path), "exec"), namespace)


@pytest.mark.parametrize("relpath,minimum",
                         DOCS, ids=[d[0].replace(os.sep, "-") for d in DOCS])
def test_docs_keep_their_snippets(relpath, minimum):
    """Refactors must not silently drop the executable examples."""
    assert len(blocks_of(relpath)) >= minimum


def test_snippets_leave_observability_off():
    """Doc snippets that enable tracing/profiling must clean up."""
    from repro import trace
    from repro.trace import profile
    assert not trace.enabled()
    assert not profile.enabled()
