"""Differential testing of the pass pipeline (satellite of the refactor).

Each program below is compiled three ways:

* interpreter with the full pipeline (the default),
* interpreter with the pipeline forced off (``pipeline_override(0)``),
* the C backend (full pipeline).

All three must agree on every input.  A fresh TerraFunction is built per
configuration because the passes mutate the typed tree in place — reusing
one function would silently hand the "no passes" run an already-optimized
tree.

Trap behaviour is compared interp-with vs interp-without only: the C
build of a dividing kernel would SIGFPE the test process rather than
raise a catchable error.
"""

import pytest

from repro import terra
from repro.errors import TrapError
from repro.passes import PIPELINE_NONE, pipeline_override

# (name, source, argument tuples)
PROGRAMS = [
    ("arith_mix", """
     terra f(x : int, y : int) : int
       var a = (x + 0) * 1 + y * 2
       var b = (a + 3) + 4
       return b - (y << 1)
     end
     """,
     [(0, 0), (5, -3), (-7, 9), (2147483640, 1)]),

    ("loops_and_branches", """
     terra f(n : int) : int
       var acc = 0
       for i = 0, n do
         if i % 2 == 0 then acc = acc + i * 3
         elseif i % 3 == 0 then acc = acc - i
         else acc = acc + 1 end
       end
       while acc > 50 do acc = acc - 17 end
       return acc
     end
     """,
     [(0,), (1,), (7,), (25,)]),

    ("dead_code_rich", """
     terra f(x : int) : int
       var dead1 = x * 7
       var keep = x + 1
       var dead2 = keep - 2
       dead1 = dead1 + dead2
       if false then keep = dead1 end
       return keep * (1 + 1)
     end
     """,
     [(-4,), (0,), (11,)]),

    ("invariant_heavy", """
     terra f(a : int, b : int, n : int) : int
       var acc = 0
       for i = 0, n do
         for j = 0, n do
           acc = acc + a * b + (a + b) * 2 + i - j
         end
       end
       return acc
     end
     """,
     [(2, 3, 0), (2, 3, 4), (-5, 7, 3)]),

    ("float_kernel", """
     terra f(x : double, n : int) : double
       var s = 0.0
       for i = 0, n do
         s = s + x * 0.5 + [double](i)
       end
       return s
     end
     """,
     [(1.5, 4), (-2.25, 7), (0.0, 0)]),

    ("short_circuit", """
     terra f(x : int, y : int) : int
       if x > 0 and y / x > 1 then return 1 end
       if x == 0 or y % (x + 1) == 0 then return 2 end
       return 3
     end
     """,
     [(2, 6), (0, 99), (3, 1), (-2, 5)]),

    ("pointer_walk", """
     terra f(p : &int, n : int) : int
       var s = 0
       for i = 0, n do
         s = s + p[i] * 2 + 1
       end
       return s
     end
     """,
     None),  # arguments built below (needs numpy buffers)
]


def compile_config(source, backend, passes_on):
    """Fresh function per configuration: passes mutate the tree in place."""
    fn = terra(source, env={})
    if passes_on:
        return fn.compile(backend)
    with pipeline_override(PIPELINE_NONE):
        return fn.compile(backend)


@pytest.mark.parametrize(
    "name,source,argsets",
    [p for p in PROGRAMS if p[2] is not None],
    ids=[p[0] for p in PROGRAMS if p[2] is not None])
def test_three_way_agreement(name, source, argsets):
    with_passes = compile_config(source, "interp", True)
    without_passes = compile_config(source, "interp", False)
    c_backend = compile_config(source, "c", True)
    for args in argsets:
        expected = without_passes(*args)
        assert with_passes(*args) == expected, (name, args)
        assert c_backend(*args) == expected, (name, args)


def test_pointer_program_three_ways():
    import numpy as np
    _, source, _ = next(p for p in PROGRAMS if p[0] == "pointer_walk")
    with_passes = compile_config(source, "interp", True)
    without_passes = compile_config(source, "interp", False)
    c_backend = compile_config(source, "c", True)
    buf = np.array([3, -1, 4, 1, 5, -9], dtype=np.int32)
    for n in (0, 1, 6):
        expected = without_passes(buf, n)
        assert with_passes(buf, n) == expected
        assert c_backend(buf, n) == expected


TRAP_PROGRAMS = [
    ("div_by_zero", "terra f(x : int, y : int) : int return x / y end",
     (10, 0)),
    ("mod_by_zero", "terra f(x : int, y : int) : int return x %% y end"
     % (), (10, 0)),
    ("dead_var_still_traps", """
     terra f(x : int) : int
       var unused = x / (x - x)
       return x
     end
     """, (5,)),
    ("trap_behind_short_circuit", """
     terra f(b : bool, x : int) : bool
       return b and (10 / x > 0)
     end
     """, (True, 0)),
]


@pytest.mark.parametrize("name,source,args", TRAP_PROGRAMS,
                         ids=[t[0] for t in TRAP_PROGRAMS])
def test_traps_preserved_by_pipeline(name, source, args):
    """Optimized and unoptimized interpretation trap on the same inputs."""
    with_passes = compile_config(source, "interp", True)
    without_passes = compile_config(source, "interp", False)
    with pytest.raises(TrapError):
        without_passes(*args)
    with pytest.raises(TrapError):
        with_passes(*args)


def test_short_circuit_non_trap_inputs_agree():
    _, source, _ = next(t for t in TRAP_PROGRAMS
                        if t[0] == "trap_behind_short_circuit")
    with_passes = compile_config(source, "interp", True)
    without_passes = compile_config(source, "interp", False)
    for args in [(False, 0), (True, 5), (False, 3)]:
        assert with_passes(*args) == without_passes(*args)
