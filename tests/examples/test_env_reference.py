"""docs/ENVIRONMENT.md is the single authoritative REPRO_* reference.

Two drift directions, both fatal:

* a variable read somewhere in ``src/`` or ``benchmarks/`` but missing
  from the table;
* a variable listed in the table that no code reads anymore.
"""

import os
import re

_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")
_DOC = os.path.join(_ROOT, "docs", "ENVIRONMENT.md")
_VAR = re.compile(r"REPRO_[A-Z0-9_]+")


def _vars_in_tree():
    found = set()
    for top in ("src", "benchmarks"):
        for dirpath, _dirnames, filenames in os.walk(os.path.join(_ROOT, top)):
            if "__pycache__" in dirpath:
                continue
            for name in filenames:
                if not name.endswith(".py"):
                    continue
                text = open(os.path.join(dirpath, name),
                            encoding="utf-8").read()
                found.update(_VAR.findall(text))
    return found


def _vars_in_table():
    table = set()
    for line in open(_DOC, encoding="utf-8"):
        if line.startswith("| `REPRO_"):
            table.update(_VAR.findall(line.split("|")[1]))
    return table


def test_every_variable_in_code_is_documented():
    undocumented = _vars_in_tree() - _vars_in_table()
    assert not undocumented, (
        f"environment variables used in src/ or benchmarks/ but missing "
        f"from docs/ENVIRONMENT.md: {sorted(undocumented)}")


def test_every_documented_variable_exists_in_code():
    stale = _vars_in_table() - _vars_in_tree()
    assert not stale, (
        f"docs/ENVIRONMENT.md lists variables no code reads: "
        f"{sorted(stale)}")


def test_the_table_is_nonempty_and_covers_the_core_switches():
    table = _vars_in_table()
    assert len(table) >= 10
    for core in ("REPRO_TERRA_BACKEND", "REPRO_TERRA_TRACE",
                 "REPRO_TERRA_PROFILE", "REPRO_BUILDD_JOBS"):
        assert core in table
