"""Every example script must run to completion (small sizes)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                            "examples")

#: example -> small-size argv (keep the suite fast)
CASES = {
    "quickstart.py": [],
    "pyast_frontend.py": [],
    "terra_core_semantics.py": [],
    "class_system.py": [],
    "mandelbrot.py": ["96"],
    "data_layout.py": ["20000"],
    "orion_pipeline.py": ["128"],
    "orion_fluid.py": ["96"],
    "autotune_gemm.py": ["128"],
}


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    assert os.path.exists(path), f"example {script} is missing"
    result = subprocess.run(
        [sys.executable, path, *CASES[script]],
        capture_output=True, text=True, timeout=420,
        cwd=os.path.join(EXAMPLES_DIR, ".."))
    assert result.returncode == 0, (
        f"{script} failed:\n--- stdout ---\n{result.stdout[-2000:]}\n"
        f"--- stderr ---\n{result.stderr[-2000:]}")
    assert result.stdout.strip(), f"{script} produced no output"


def test_every_example_has_a_case():
    scripts = {f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")}
    assert scripts == set(CASES), (
        "examples and CASES out of sync — add new examples here so they "
        "stay runnable")
